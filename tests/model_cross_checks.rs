//! Cross-checks between the analytical energy/area model and the executable
//! directory implementations: where both exist at the same size, their
//! storage accounting must agree, and the model's qualitative claims must be
//! visible in the simulator.

use ccd_energy::orgs::{storage_profile, SliceEnvironment};
use ccd_energy::{DirOrg, EnergyModel};
use cuckoo_directory::prelude::*;

/// The slice environment of the paper's 16-core Shared-L2 system.
fn shared_16core_env() -> SliceEnvironment {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    SliceEnvironment {
        num_caches: system.num_private_caches(),
        tracked_frames: system.tracked_frames_per_slice(),
        tracked_sets: system.tracked_sets_per_slice() * 2,
        cache_ways: system.tracked_cache().ways,
        l2_frames_per_slice: system.private_l2.frames(),
        l2_ways: system.private_l2.ways,
    }
}

#[test]
fn analytical_and_executable_sparse_profiles_agree() {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let env = shared_16core_env();
    // Sparse 8-way 2x: executable (full-vector) slice vs analytical formula.
    let dir = DirectorySpec::sparse(8, 2.0)
        .build_slice(&system)
        .expect("valid spec");
    let executable = dir.storage_profile();
    let analytical = storage_profile(
        &DirOrg::SparseFullVector {
            ways: 8,
            provisioning: 2.0,
        },
        &env,
    );
    assert_eq!(executable.total_bits, analytical.total_bits);
    assert_eq!(
        executable.bits_read_per_lookup,
        analytical.bits_read_per_lookup
    );
    assert_eq!(
        executable.comparators_per_lookup,
        analytical.comparators_per_lookup
    );
}

#[test]
fn analytical_and_executable_cuckoo_profiles_agree() {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let env = shared_16core_env();
    let dir = DirectorySpec::cuckoo(4, 1.0)
        .build_slice(&system)
        .expect("valid spec");
    let executable = dir.storage_profile();
    // The executable simulator uses full-vector entries; the matching
    // analytical organization is the 4-way 1x structure with full vectors.
    let analytical = storage_profile(
        &DirOrg::SparseFullVector {
            ways: 4,
            provisioning: 1.0,
        },
        &env,
    );
    assert_eq!(executable.total_bits, analytical.total_bits);
    assert_eq!(
        executable.bits_written_per_update,
        analytical.bits_written_per_update
    );
}

#[test]
fn analytical_and_executable_duplicate_tag_profiles_agree() {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let env = SliceEnvironment {
        tracked_sets: system.tracked_sets_per_slice(),
        ..shared_16core_env()
    };
    let dir = DirectorySpec::DuplicateTag
        .build_slice(&system)
        .expect("valid spec");
    let executable = dir.storage_profile();
    let analytical = storage_profile(&DirOrg::DuplicateTag, &env);
    assert_eq!(executable.total_bits, analytical.total_bits);
    assert_eq!(
        executable.comparators_per_lookup,
        analytical.comparators_per_lookup
    );
}

#[test]
fn duplicate_tag_lookup_width_matches_the_paper_arithmetic() {
    // Section 3.1: the Duplicate-Tag associativity equals cache associativity
    // x cache count; for the Shared-L2 16-core system that is 2 x 32 = 64.
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let dir = DirectorySpec::DuplicateTag.build_slice(&system).unwrap();
    assert_eq!(dir.storage_profile().comparators_per_lookup, 64);
    // And for the Private-L2 configuration, 16 x 16 = 256.
    let system = SystemConfig::table1(Hierarchy::PrivateL2);
    let dir = DirectorySpec::DuplicateTag.build_slice(&system).unwrap();
    assert_eq!(dir.storage_profile().comparators_per_lookup, 256);
}

#[test]
fn model_scaling_claims_match_the_paper_shape() {
    let shared = EnergyModel::shared_l2();
    let cores = EnergyModel::paper_core_counts();
    // Cuckoo stays flat; Duplicate-Tag grows roughly linearly per core.
    let cuckoo: Vec<f64> = shared
        .sweep(&DirOrg::cuckoo_coarse_shared(), &cores)
        .iter()
        .map(|p| p.energy_relative)
        .collect();
    let dup: Vec<f64> = shared
        .sweep(&DirOrg::DuplicateTag, &cores)
        .iter()
        .map(|p| p.energy_relative)
        .collect();
    assert!(cuckoo.last().unwrap() / cuckoo.first().unwrap() < 1.5);
    assert!(dup.last().unwrap() / dup.first().unwrap() > 30.0);
    // The crossover the paper highlights: at 16 cores Tagless is competitive
    // with (or better than) the compressed Sparse organizations on energy,
    // but by 1024 cores it is far worse.
    let tagless_16 = shared.evaluate(&DirOrg::Tagless, 16).energy_relative;
    let tagless_1024 = shared.evaluate(&DirOrg::Tagless, 1024).energy_relative;
    let sparse = DirOrg::SparseCoarse {
        ways: 8,
        provisioning: 8.0,
    };
    let sparse_16 = shared.evaluate(&sparse, 16).energy_relative;
    let sparse_1024 = shared.evaluate(&sparse, 1024).energy_relative;
    assert!(tagless_16 < 4.0 * sparse_16);
    assert!(tagless_1024 > 4.0 * sparse_1024);
}

#[test]
fn measured_event_mix_can_drive_the_energy_model() {
    // Feed a simulator-measured event mix into the analytical model — the
    // intended workflow for Figure 13 — and check it produces finite,
    // positive energies that respond to the mix.
    let system = SystemConfig {
        num_cores: 4,
        l1: CacheConfig::new(128, 2, 64),
        ..SystemConfig::shared_l2(4)
    };
    let mut trace = TraceGenerator::new(WorkloadProfile::db2(), 4, 21);
    let report = CmpSimulator::run_workload(
        system,
        &DirectorySpec::cuckoo(4, 1.0),
        &mut trace,
        50_000,
        50_000,
    )
    .unwrap();
    let mix = report.directory.event_mix();
    let attempts = report.avg_insertion_attempts();
    let model = EnergyModel::shared_l2()
        .with_event_mix(mix)
        .with_cuckoo_attempts(attempts);
    let point = model.evaluate(&DirOrg::cuckoo_coarse_shared(), 16);
    assert!(point.energy_relative > 0.0 && point.energy_relative.is_finite());
    assert!(point.area_relative > 0.0 && point.area_relative < 1.0);
}
