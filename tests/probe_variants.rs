//! Probe-variant equivalence suite (ARCHITECTURE.md Contract #9).
//!
//! Every [`ProbeVariant`] kernel — `scalar`, `swar`, `simd`, `localized` —
//! must be observationally identical to the seed's array-of-structs table:
//! same hit/miss answers, same Section 5.2 insertion accounting (attempt
//! counts, discard choices), same final contents, on the same operation
//! stream.  These tests drive randomized saturating streams (occupancies up
//! to ~0.95) and the displacement edge cases (attempt budget of 1, a 2-way
//! table at 100% load, chains that circle back to the incoming key) through
//! every variant legal for a hash kind, in lockstep against
//! [`AosReferenceTable`].

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::LineAddr;
use ccd_cuckoo::seed_reference::AosReferenceTable;
use ccd_cuckoo::{CuckooConfig, CuckooDirectory, CuckooTable};
use ccd_directory::{Directory, InsertPolicy, ProbeVariant};
use ccd_hash::{fingerprint, HashFamily, HashKind, IndexHashFamily};
use ccd_sharers::FullBitVector;
use std::collections::BTreeMap;

/// Every variant legal for `kind` (`localized` needs the tagalt family).
fn variants_for(kind: HashKind) -> Vec<ProbeVariant> {
    let mut variants = vec![ProbeVariant::Scalar, ProbeVariant::Swar, ProbeVariant::Simd];
    if kind == HashKind::TagAlt {
        variants.push(ProbeVariant::Localized);
    }
    variants
}

/// Drives `ops` random operations (inserts from a narrow keyspace so the
/// table saturates, plus removes and lookups) through a variant table and
/// the seed reference in lockstep, asserting identical accounting at every
/// step and identical contents at the end.  Returns the peak occupancy the
/// stream reached.
fn lockstep_stream(
    kind: HashKind,
    variant: ProbeVariant,
    ways: usize,
    sets: usize,
    budget: u32,
    ops: usize,
    seed: u64,
) -> f64 {
    let mut table: CuckooTable<u64> =
        CuckooTable::with_variant(ways, sets, kind, seed, Some(variant)).unwrap();
    table.set_max_attempts(budget);
    let mut reference = AosReferenceTable::new(ways, sets, kind, seed, budget).unwrap();
    let mut rng = SplitMix64::new(seed ^ 0x9E3779B9);
    // A keyspace of ~1.5x capacity saturates the structure: insertions keep
    // landing in full candidate sets, exercising displacement and discard.
    let keyspace = (ways * sets * 3 / 2) as u64;
    let mut peak = 0.0f64;
    for step in 0..ops {
        let key = rng.next_below(keyspace) << 4 | 0x3;
        match rng.next_below(8) {
            0 => {
                let got = table.remove(key);
                let want = reference.remove(key);
                assert_eq!(got, want, "{kind}/{variant} remove diverged at {step}");
            }
            1 => {
                assert_eq!(
                    table.contains(key),
                    reference.contains(key),
                    "{kind}/{variant} contains diverged at {step}"
                );
            }
            _ => {
                let got = table.insert(key, key ^ step as u64);
                let (want_attempts, want_discard) = reference.insert(key, key ^ step as u64);
                assert_eq!(
                    (got.attempts, &got.discarded),
                    (want_attempts, &want_discard),
                    "{kind}/{variant} insert accounting diverged at {step}"
                );
            }
        }
        assert_eq!(table.len(), reference.len(), "{kind}/{variant} at {step}");
        peak = peak.max(table.occupancy());
    }
    let got: BTreeMap<u64, u64> = table.iter().map(|(k, &v)| (k, v)).collect();
    let want: BTreeMap<u64, u64> = reference.iter().map(|(k, &v)| (k, v)).collect();
    assert_eq!(got, want, "{kind}/{variant} final contents diverged");
    peak
}

#[test]
fn all_variants_match_the_seed_reference_at_saturating_occupancy() {
    for kind in [HashKind::Skewing, HashKind::Strong, HashKind::TagAlt] {
        for variant in variants_for(kind) {
            let peak = lockstep_stream(kind, variant, 4, 64, 32, 4000, 0xA5);
            assert!(
                peak >= 0.85,
                "{kind}/{variant} stream must saturate the table (peak {peak:.3})"
            );
        }
    }
}

#[test]
fn strong_4ary_reaches_ninety_five_percent_in_lockstep() {
    // The 4-ary threshold sits near 0.97 (Figure 7): a saturating stream
    // must carry the lockstep comparison through 0.95 occupancy.
    let peak = lockstep_stream(
        HashKind::Strong,
        ProbeVariant::Simd,
        4,
        128,
        32,
        12_000,
        0x51,
    );
    assert!(peak >= 0.95, "peak occupancy only {peak:.3}");
}

#[test]
fn displacement_edge_cases_stay_in_lockstep() {
    for kind in [HashKind::Strong, HashKind::TagAlt] {
        for variant in variants_for(kind) {
            // Attempt budget of 1: exhaustion on the very first round, the
            // chain "circles back" immediately and the probed slot's victim
            // is discarded.
            lockstep_stream(kind, variant, 2, 16, 1, 1500, 0xB1);
            // 2-way at 100% load: every insert displaces; short budget.
            lockstep_stream(kind, variant, 2, 16, 4, 1500, 0xB2);
            // Wider table, budget 2: chains that wrap past the last way.
            lockstep_stream(kind, variant, 4, 16, 2, 1500, 0xB3);
        }
    }
}

#[test]
fn wide_tagalt_tables_probe_identically_without_localized() {
    // 8 ways x 16-set blocks exceed the 64-byte span, so localized is
    // unavailable — but the other variants must still agree on tagalt.
    for variant in [ProbeVariant::Scalar, ProbeVariant::Swar, ProbeVariant::Simd] {
        lockstep_stream(HashKind::TagAlt, variant, 8, 32, 8, 2000, 0xC4);
    }
}

#[test]
fn tag_derived_alternate_buckets_commute_and_involute() {
    // Integration form of the tagalt identities the displacement loop leans
    // on: deriving a victim's candidate set from (way, index, tag) matches
    // re-hashing its key exactly, and the pairwise alternate-index mapping
    // is an involution.
    let family = HashFamily::with_seed(HashKind::TagAlt, 4, 256, 0xD0).unwrap();
    let tagalt = family.tag_alt().expect("tagalt family");
    let mut rng = SplitMix64::new(0xD1);
    for _ in 0..2000 {
        let key = rng.next_u64() >> 6;
        let line = LineAddr::from_block_number(key);
        let hashed: Vec<usize> = (0..4).map(|w| family.index(w, line)).collect();
        let tag = fingerprint(key);
        for from_way in 0..4 {
            let mut derived = [0usize; 4];
            tagalt.derive_all_into(from_way, hashed[from_way], tag, &mut derived);
            assert_eq!(&derived[..], &hashed[..], "derivation from way {from_way}");
            for to_way in 0..4 {
                let alt = tagalt.alt_index(from_way, hashed[from_way], tag, to_way);
                assert_eq!(alt, hashed[to_way]);
                assert_eq!(
                    tagalt.alt_index(to_way, alt, tag, from_way),
                    hashed[from_way],
                    "alt∘alt must be the identity"
                );
            }
        }
    }
}

/// Builds a table with the given insertion policy, feeds it fresh random
/// keys (SplitMix64 outputs are distinct, so every insert is a new key)
/// until the attempt budget first expires, and returns the occupancy the
/// table had reached *before* the discarding insertion.
fn occupancy_at_first_discard(
    policy: InsertPolicy,
    ways: usize,
    sets: usize,
    kind: HashKind,
    budget: u32,
    seed: u64,
) -> f64 {
    let mut table: CuckooTable<u64> =
        CuckooTable::with_variant(ways, sets, kind, seed, None).unwrap();
    table.set_max_attempts(budget);
    table.set_insert_policy(policy);
    let mut rng = SplitMix64::new(seed ^ 0x5EED);
    loop {
        let occupancy = table.occupancy();
        if table.len() == table.capacity() {
            return occupancy;
        }
        let key = rng.next_u64() >> 4;
        if table.insert(key, key).discarded.is_some() {
            return occupancy;
        }
    }
}

#[test]
fn bfs_sustains_higher_occupancy_than_greedy_before_the_first_discard() {
    // Under a tight attempt budget the greedy chain is a single random
    // walk, while BFS searches every displacement path of the same attempt
    // cost — so BFS must carry the table at least as far on every stream.
    for (kind, budget) in [
        (HashKind::Strong, 4),
        (HashKind::Strong, 6),
        (HashKind::TagAlt, 6),
        (HashKind::Skewing, 8),
    ] {
        for seed in [0x7E, 0xA1, 0xC3] {
            let greedy =
                occupancy_at_first_discard(InsertPolicy::Greedy, 4, 64, kind, budget, seed);
            let bfs = occupancy_at_first_discard(InsertPolicy::Bfs, 4, 64, kind, budget, seed);
            assert!(
                bfs >= greedy,
                "{kind} budget {budget} seed {seed:#x}: bfs {bfs:.3} < greedy {greedy:.3}"
            );
        }
    }
    // The headline acceptance point: a 4-way table under a budget where
    // greedy gives up early still reaches >= 0.95 occupancy under BFS.
    let greedy = occupancy_at_first_discard(InsertPolicy::Greedy, 4, 64, HashKind::Strong, 6, 0x7E);
    let bfs = occupancy_at_first_discard(InsertPolicy::Bfs, 4, 64, HashKind::Strong, 6, 0x7E);
    assert!(bfs >= 0.95, "bfs only reached {bfs:.3}");
    assert!(
        greedy < bfs,
        "greedy ({greedy:.3}) must stop earlier than bfs ({bfs:.3}) here"
    );
}

#[test]
fn bfs_and_greedy_lookups_agree_for_every_inserted_key() {
    // Until a budget actually expires, the two policies must store the
    // same key set: lookups are bit-identical for every inserted key (and
    // for absent keys).  Drive both tables in lockstep and stop at the
    // first discard on either side.
    for kind in [HashKind::Strong, HashKind::TagAlt] {
        let (ways, sets, budget, seed) = (4, 64, 8, 0xBF5u64);
        let mut greedy: CuckooTable<u64> =
            CuckooTable::with_variant(ways, sets, kind, seed, None).unwrap();
        greedy.set_max_attempts(budget);
        let mut bfs = greedy.clone();
        bfs.set_insert_policy(InsertPolicy::Bfs);
        let mut rng = SplitMix64::new(seed ^ 0x1D);
        let mut keys = Vec::new();
        loop {
            let key = rng.next_u64() >> 4;
            // A discarding insert evicts one of the earlier keys, so keep a
            // snapshot and roll back to the last discard-free state.
            let snapshot = (greedy.clone(), bfs.clone());
            let from_greedy = greedy.insert(key, key ^ 1);
            let from_bfs = bfs.insert(key, key ^ 1);
            if from_greedy.discarded.is_some() || from_bfs.discarded.is_some() {
                (greedy, bfs) = snapshot;
                break;
            }
            keys.push(key);
        }
        assert!(
            keys.len() > sets,
            "{kind}: the stream must exercise real displacement (got {})",
            keys.len()
        );
        for &key in &keys {
            assert!(
                greedy.contains(key) && bfs.contains(key),
                "{kind}: {key:#x}"
            );
            assert_eq!(greedy.get(key), bfs.get(key), "{kind}: {key:#x}");
        }
        for _ in 0..1000 {
            let absent = rng.next_u64() >> 4;
            assert_eq!(greedy.contains(absent), bfs.contains(absent), "{kind}");
        }
    }
}

#[test]
fn ccd_probe_env_override_selects_the_kernel_but_not_the_label() {
    // The only test in this binary touching CCD_PROBE, so the env mutation
    // cannot race with a concurrent reader (the lockstep tests construct
    // tables with explicit variants, which never consult the environment).
    let restore = std::env::var("CCD_PROBE").ok();

    std::env::remove_var("CCD_PROBE");
    let auto = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 64, 8)).unwrap();
    assert_eq!(auto.probe_variant(), ProbeVariant::Swar);

    std::env::set_var("CCD_PROBE", "scalar");
    let dir = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 64, 8)).unwrap();
    assert_eq!(dir.probe_variant(), ProbeVariant::Scalar);
    // The env override never relabels the directory: golden result files
    // diff byte-identically under CCD_PROBE.
    assert_eq!(dir.organization(), auto.organization());

    // An explicit config pin beats the environment and names itself.
    let pinned = CuckooDirectory::<FullBitVector>::new(
        CuckooConfig::new(4, 64, 8).with_probe(ProbeVariant::Simd),
    )
    .unwrap();
    assert_eq!(pinned.probe_variant(), ProbeVariant::Simd);
    assert!(pinned.organization().ends_with("-simd"));

    // A malformed override fails construction with the token quoted.
    std::env::set_var("CCD_PROBE", "avx512");
    let Err(err) = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 64, 8)) else {
        panic!("bad CCD_PROBE must fail");
    };
    let err = err.to_string();
    assert!(
        err.contains("CCD_PROBE") && err.contains("`avx512`"),
        "{err}"
    );

    match restore {
        Some(value) => std::env::set_var("CCD_PROBE", value),
        None => std::env::remove_var("CCD_PROBE"),
    }
}
