//! Cross-organization contract tests: every `Directory` implementation in
//! the workspace must expose the same observable semantics to the coherence
//! protocol, differing only in conflict behaviour and conservativeness.

use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_common::rng::{Rng64, SplitMix64};
use cuckoo_directory::prelude::*;

fn all_specs() -> Vec<DirectorySpec> {
    vec![
        DirectorySpec::cuckoo(4, 1.0),
        DirectorySpec::cuckoo(3, 1.5),
        DirectorySpec::sparse(8, 2.0),
        DirectorySpec::skewed(4, 2.0),
        DirectorySpec::DuplicateTag,
        DirectorySpec::InCache,
        DirectorySpec::tagless(),
    ]
}

fn build(spec: &DirectorySpec) -> Box<dyn Directory> {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    spec.build_slice(&system).expect("paper configurations build")
}

#[test]
fn sharers_are_always_a_superset_of_what_was_added() {
    for spec in all_specs() {
        let mut dir = build(&spec);
        let caches = dir.num_caches();
        let mut rng = SplitMix64::new(1);
        // Track a modest number of lines so even small organizations hold
        // them without conflicts, and verify the superset property.
        let mut expected: Vec<(LineAddr, Vec<CacheId>)> = Vec::new();
        for i in 0..64u64 {
            let line = LineAddr::from_block_number(i * 131);
            let holders: Vec<CacheId> = (0..3)
                .map(|_| CacheId::new(rng.next_below(caches as u64) as u32))
                .collect();
            for &c in &holders {
                dir.add_sharer(line, c);
            }
            expected.push((line, holders));
        }
        for (line, holders) in &expected {
            if !dir.contains(*line) {
                // Conflict-prone organizations may have evicted the entry;
                // that is legal, but then it must not claim to track it.
                assert!(dir.sharers(*line).is_none(), "{}", spec.label());
                continue;
            }
            let reported = dir.sharers(*line).expect("tracked line has sharers");
            for holder in holders {
                assert!(
                    reported.contains(holder),
                    "{}: reported sharers {:?} missing true holder {holder}",
                    spec.label(),
                    reported
                );
            }
        }
    }
}

#[test]
fn exclusive_requests_always_cover_previous_sharers() {
    for spec in all_specs() {
        let mut dir = build(&spec);
        let line = LineAddr::from_block_number(0xBEEF);
        for c in [1u32, 3, 9, 20] {
            dir.add_sharer(line, CacheId::new(c));
        }
        let result = dir.set_exclusive(line, CacheId::new(5));
        for c in [1u32, 3, 9, 20] {
            assert!(
                result.invalidate.contains(&CacheId::new(c)),
                "{}: write must invalidate cache{c}",
                spec.label()
            );
        }
        assert!(
            !result.invalidate.contains(&CacheId::new(5)),
            "{}: the writer itself is never invalidated",
            spec.label()
        );
        // After the write the writer is (at least) among the sharers.
        assert!(dir
            .sharers(line)
            .expect("line is tracked after a write")
            .contains(&CacheId::new(5)));
    }
}

#[test]
fn removing_all_sharers_eventually_frees_every_entry() {
    for spec in all_specs() {
        let mut dir = build(&spec);
        let lines: Vec<LineAddr> = (0..256u64).map(|i| LineAddr::from_block_number(i * 7)).collect();
        for (i, &line) in lines.iter().enumerate() {
            dir.add_sharer(line, CacheId::new((i % dir.num_caches()) as u32));
        }
        for (i, &line) in lines.iter().enumerate() {
            dir.remove_sharer(line, CacheId::new((i % dir.num_caches()) as u32));
        }
        assert!(
            dir.is_empty(),
            "{}: directory still holds {} entries after all sharers left",
            spec.label(),
            dir.len()
        );
        assert_eq!(dir.occupancy(), 0.0, "{}", spec.label());
    }
}

#[test]
fn capacity_and_storage_profiles_are_positive_and_consistent() {
    for spec in all_specs() {
        let dir = build(&spec);
        assert!(dir.capacity() > 0, "{}", spec.label());
        let profile = dir.storage_profile();
        assert!(profile.total_bits > 0, "{}", spec.label());
        assert!(profile.bits_read_per_lookup > 0, "{}", spec.label());
        assert!(profile.bits_written_per_update > 0, "{}", spec.label());
        assert!(
            profile.total_bits >= profile.bits_written_per_update,
            "{}",
            spec.label()
        );
    }
}

#[test]
fn stats_reflect_the_operations_performed() {
    for spec in all_specs() {
        let mut dir = build(&spec);
        let line = LineAddr::from_block_number(42);
        dir.add_sharer(line, CacheId::new(0));
        dir.add_sharer(line, CacheId::new(1));
        dir.remove_sharer(line, CacheId::new(0));
        let stats = dir.stats();
        assert_eq!(stats.insertions.get(), 1, "{}", spec.label());
        assert!(stats.sharer_adds.get() >= 1, "{}", spec.label());
        assert!(stats.sharer_removes.get() >= 1, "{}", spec.label());
        dir.reset_stats();
        assert_eq!(dir.stats().insertions.get(), 0, "{}", spec.label());
    }
}
