//! Cross-organization contract tests: every `Directory` implementation in
//! the workspace must expose the same observable semantics to the coherence
//! protocol, differing only in conflict behaviour and conservativeness.
//!
//! The suite is driven two ways:
//!
//! * through the runtime builder registry (`ccd_cuckoo::standard_registry`)
//!   from spec strings — covering all six organizations, compressed sharer
//!   formats and sharded composition, and
//! * through the paper-style provisioning specs of `ccd-coherence`.

use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_common::rng::{Rng64, SplitMix64};
use ccd_cuckoo::standard_registry;
use ccd_directory::{DirectoryOp, Outcome};
use cuckoo_directory::prelude::*;

/// Every organization (and modifier axis) constructible from the registry.
const REGISTRY_SPECS: &[&str] = &[
    "cuckoo-4x512-skew",
    "cuckoo-3x1024-ms",
    "cuckoo-4x512@coarse",
    "cuckoo-4x512@limited",
    "cuckoo-4x512@hier",
    "sparse-8x512",
    "sparse-8x512@coarse",
    "skewed-4x1024",
    "skewed-4x1024-strong",
    "duplicate-tag-2x32",
    "in-cache-16x64",
    "tagless-2x32",
    "sharded4:cuckoo-4x512-skew",
    "sharded2:sparse-8x512",
];

fn paper_specs() -> Vec<DirectorySpec> {
    vec![
        DirectorySpec::cuckoo(4, 1.0),
        DirectorySpec::cuckoo(3, 1.5),
        DirectorySpec::sparse(8, 2.0),
        DirectorySpec::skewed(4, 2.0),
        DirectorySpec::DuplicateTag,
        DirectorySpec::InCache,
        DirectorySpec::tagless(),
    ]
}

/// Builds every directory under test, labelled for assertion messages.
fn all_dirs() -> Vec<(String, Box<dyn Directory>)> {
    let registry = standard_registry();
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let mut dirs: Vec<(String, Box<dyn Directory>)> = REGISTRY_SPECS
        .iter()
        .map(|spec| {
            (
                (*spec).to_string(),
                registry.build_str(spec).expect("registry spec builds"),
            )
        })
        .collect();
    dirs.extend(paper_specs().into_iter().map(|spec| {
        (
            spec.label(),
            spec.build_slice(&system)
                .expect("paper configurations build"),
        )
    }));
    dirs
}

#[test]
fn every_registry_spec_constructs_at_runtime() {
    let registry = standard_registry();
    for spec in REGISTRY_SPECS {
        let dir = registry.build_str(spec).expect(spec);
        assert!(dir.capacity() > 0, "{spec}");
        assert!(dir.is_empty(), "{spec}");
        assert!(!dir.organization().is_empty(), "{spec}");
    }
    // All six organization names are registered.
    let names: Vec<&str> = registry.names().collect();
    for name in [
        "cuckoo",
        "sparse",
        "skewed",
        "duplicate-tag",
        "in-cache",
        "tagless",
    ] {
        assert!(names.contains(&name), "missing builder for {name}");
    }
}

#[test]
fn sharers_are_always_a_superset_of_what_was_added() {
    for (label, mut dir) in all_dirs() {
        let caches = dir.num_caches();
        let mut rng = SplitMix64::new(1);
        // Track a modest number of lines so even small organizations hold
        // them without conflicts, and verify the superset property.
        let mut expected: Vec<(LineAddr, Vec<CacheId>)> = Vec::new();
        for i in 0..64u64 {
            let line = LineAddr::from_block_number(i * 131);
            let holders: Vec<CacheId> = (0..3)
                .map(|_| CacheId::new(rng.next_below(caches as u64) as u32))
                .collect();
            for &c in &holders {
                dir.add_sharer(line, c);
            }
            expected.push((line, holders));
        }
        for (line, holders) in &expected {
            if !dir.contains(*line) {
                // Conflict-prone organizations may have evicted the entry;
                // that is legal, but then it must not claim to track it.
                assert!(dir.sharers(*line).is_none(), "{label}");
                continue;
            }
            let reported = dir.sharers(*line).expect("tracked line has sharers");
            for holder in holders {
                assert!(
                    reported.contains(holder),
                    "{label}: reported sharers {reported:?} missing true holder {holder}",
                );
                assert!(
                    dir.may_hold(*line, *holder),
                    "{label}: may_hold denies true holder {holder}",
                );
            }
            // The borrowed view agrees with the allocating query.
            let viewed: Vec<CacheId> = ccd_directory::sharer_view(dir.as_ref(), *line)
                .expect("tracked")
                .collect();
            assert_eq!(viewed, reported, "{label}: sharer_view diverged");
        }
    }
}

#[test]
fn probe_reports_the_same_sharers_as_the_allocating_query() {
    for (label, mut dir) in all_dirs() {
        let mut out = Outcome::new();
        let line = LineAddr::from_block_number(0x1CE);
        dir.apply(DirectoryOp::Probe { line }, &mut out);
        assert!(!out.hit(), "{label}: probe of untracked line must miss");
        assert!(out.sharers().is_empty(), "{label}");

        for c in [0u32, 2, 7] {
            dir.add_sharer(line, CacheId::new(c));
        }
        dir.apply(DirectoryOp::Probe { line }, &mut out);
        assert!(out.hit(), "{label}");
        let mut probed: Vec<CacheId> = out.sharers().to_vec();
        probed.sort_unstable();
        let mut queried = dir.sharers(line).expect("tracked");
        queried.sort_unstable();
        assert_eq!(probed, queried, "{label}: probe and sharers() disagree");
    }
}

#[test]
fn exclusive_requests_always_cover_previous_sharers() {
    for (label, mut dir) in all_dirs() {
        let line = LineAddr::from_block_number(0xBEEF);
        for c in [1u32, 3, 9, 20] {
            dir.add_sharer(line, CacheId::new(c));
        }
        let result = dir.set_exclusive(line, CacheId::new(5));
        for c in [1u32, 3, 9, 20] {
            assert!(
                result.invalidate.contains(&CacheId::new(c)),
                "{label}: write must invalidate cache{c}",
            );
        }
        assert!(
            !result.invalidate.contains(&CacheId::new(5)),
            "{label}: the writer itself is never invalidated",
        );
        // After the write the writer is (at least) among the sharers.
        assert!(dir
            .sharers(line)
            .expect("line is tracked after a write")
            .contains(&CacheId::new(5)));
    }
}

#[test]
fn removing_all_sharers_eventually_frees_every_entry() {
    for (label, mut dir) in all_dirs() {
        let lines: Vec<LineAddr> = (0..256u64)
            .map(|i| LineAddr::from_block_number(i * 7))
            .collect();
        for (i, &line) in lines.iter().enumerate() {
            dir.add_sharer(line, CacheId::new((i % dir.num_caches()) as u32));
        }
        for (i, &line) in lines.iter().enumerate() {
            dir.remove_sharer(line, CacheId::new((i % dir.num_caches()) as u32));
        }
        assert!(
            dir.is_empty(),
            "{label}: directory still holds {} entries after all sharers left",
            dir.len()
        );
        assert_eq!(dir.occupancy(), 0.0, "{label}");
    }
}

#[test]
fn capacity_and_storage_profiles_are_positive_and_consistent() {
    for (label, dir) in all_dirs() {
        assert!(dir.capacity() > 0, "{label}");
        let profile = dir.storage_profile();
        assert!(profile.total_bits > 0, "{label}");
        assert!(profile.bits_read_per_lookup > 0, "{label}");
        assert!(profile.bits_written_per_update > 0, "{label}");
        assert!(
            profile.total_bits >= profile.bits_written_per_update,
            "{label}",
        );
    }
}

#[test]
fn stats_reflect_the_operations_performed() {
    for (label, mut dir) in all_dirs() {
        let line = LineAddr::from_block_number(42);
        dir.add_sharer(line, CacheId::new(0));
        dir.add_sharer(line, CacheId::new(1));
        dir.remove_sharer(line, CacheId::new(0));
        let stats = dir.stats();
        assert_eq!(stats.insertions.get(), 1, "{label}");
        assert!(stats.sharer_adds.get() >= 1, "{label}");
        assert!(stats.sharer_removes.get() >= 1, "{label}");
        dir.reset_stats();
        assert_eq!(dir.stats().insertions.get(), 0, "{label}");
    }
}

/// Property test: a 4-way sharded directory is observably equivalent to a
/// single slice of the same total capacity on random op streams, as long as
/// no organization-specific conflicts occur (guaranteed here by keeping
/// occupancy low).
#[test]
fn sharded_directory_is_observably_equivalent_to_a_single_slice() {
    let registry = standard_registry();
    for (single_spec, sharded_spec) in [
        ("cuckoo-4x1024-skew", "sharded4:cuckoo-4x1024-skew"),
        ("sparse-8x512", "sharded4:sparse-8x512"),
    ] {
        let mut single = registry.build_str(single_spec).unwrap();
        let mut sharded = registry.build_str(sharded_spec).unwrap();
        assert_eq!(single.capacity(), sharded.capacity());

        let mut rng = SplitMix64::new(0x5EED5);
        let mut out_a = Outcome::new();
        let mut out_b = Outcome::new();
        let caches = single.num_caches() as u64;
        // ~12% occupancy: far below any conflict threshold, so behaviour
        // must match exactly.
        let blocks = single.capacity() as u64 / 2;
        for step in 0..2000u64 {
            let line = LineAddr::from_block_number(rng.next_below(blocks));
            let cache = CacheId::new(rng.next_below(caches) as u32);
            let op = match rng.next_below(10) {
                0..=4 => DirectoryOp::AddSharer { line, cache },
                5 | 6 => DirectoryOp::RemoveSharer { line, cache },
                7 => DirectoryOp::SetExclusive { line, cache },
                8 => DirectoryOp::Probe { line },
                _ => DirectoryOp::RemoveEntry { line },
            };
            single.apply(op, &mut out_a);
            sharded.apply(op, &mut out_b);

            assert_eq!(out_a.hit(), out_b.hit(), "step {step}: hit diverged");
            assert_eq!(
                out_a.allocated_new_entry(),
                out_b.allocated_new_entry(),
                "step {step}: allocation diverged"
            );
            assert_eq!(
                out_a.removed_entry(),
                out_b.removed_entry(),
                "step {step}: removal diverged"
            );
            let mut inv_a: Vec<CacheId> = out_a.invalidate().to_vec();
            let mut inv_b: Vec<CacheId> = out_b.invalidate().to_vec();
            inv_a.sort_unstable();
            inv_b.sort_unstable();
            assert_eq!(inv_a, inv_b, "step {step}: invalidations diverged");
            assert_eq!(
                out_a.forced_eviction_count(),
                0,
                "step {step}: the single slice must not conflict at this occupancy"
            );
            assert_eq!(out_b.forced_eviction_count(), 0, "step {step}");

            assert_eq!(single.len(), sharded.len(), "step {step}: len diverged");
            assert_eq!(
                single.contains(line),
                sharded.contains(line),
                "step {step}: contains diverged"
            );
            assert_eq!(
                single.sharers(line),
                sharded.sharers(line),
                "step {step}: sharers diverged"
            );
        }
        // Aggregate statistics agree on the observable counters.
        assert_eq!(
            single.stats().insertions.get(),
            sharded.stats().insertions.get(),
            "{single_spec} vs {sharded_spec}: insertions",
        );
        assert_eq!(
            single.stats().entry_removes.get(),
            sharded.stats().entry_removes.get(),
            "{single_spec} vs {sharded_spec}: entry removes",
        );
        assert_eq!(
            single.stats().sharer_adds.get(),
            sharded.stats().sharer_adds.get(),
            "{single_spec} vs {sharded_spec}: sharer adds",
        );
    }
}

#[test]
fn apply_batch_is_observably_identical_to_sequential_apply() {
    // The windowed, prefetching batch entry point must be a pure latency
    // optimization: for every organization, driving the same op stream
    // through `apply_batch` and through an `apply` loop yields the same
    // per-op outcomes, the same statistics and the same final contents.
    let registry = standard_registry();
    for (label, mut sequential) in all_dirs() {
        let mut batched = match registry.build_str(&label) {
            Ok(dir) => dir,
            // Paper-spec labels are not registry specs; rebuild those via
            // the same path as `all_dirs` by skipping them here (the
            // registry-built organizations already cover every type).
            Err(_) => continue,
        };

        let caches = sequential.num_caches() as u64;
        let mut rng = SplitMix64::new(0xBA7C4);
        let ops: Vec<DirectoryOp> = (0..512)
            .map(|_| {
                let line = LineAddr::from_block_number(rng.next_below(96) * 13);
                let cache = CacheId::new(rng.next_below(caches) as u32);
                match rng.next_below(5) {
                    0 => DirectoryOp::Probe { line },
                    1 => DirectoryOp::SetExclusive { line, cache },
                    2 => DirectoryOp::RemoveSharer { line, cache },
                    3 => DirectoryOp::RemoveEntry { line },
                    _ => DirectoryOp::AddSharer { line, cache },
                }
            })
            .collect();

        // Sequential reference: record a digest of every outcome.
        let mut out = Outcome::new();
        let mut expected: Vec<(bool, bool, u32, usize, usize)> = Vec::new();
        for op in &ops {
            sequential.apply(*op, &mut out);
            expected.push((
                out.hit(),
                out.allocated_new_entry(),
                out.insertion_attempts(),
                out.invalidate().len(),
                out.forced_eviction_count(),
            ));
        }

        // Batched run through the windowed prefetching path.
        let mut observed = Vec::with_capacity(ops.len());
        let mut batch_out = Outcome::new();
        batched.apply_batch(&ops, &mut batch_out, &mut |_, o| {
            observed.push((
                o.hit(),
                o.allocated_new_entry(),
                o.insertion_attempts(),
                o.invalidate().len(),
                o.forced_eviction_count(),
            ));
        });

        assert_eq!(observed, expected, "{label}: per-op outcomes diverged");
        assert_eq!(batched.len(), sequential.len(), "{label}: len diverged");
        assert_eq!(
            batched.stats().insertions.get(),
            sequential.stats().insertions.get(),
            "{label}: insertion stats diverged"
        );
        assert_eq!(
            batched.stats().forced_evictions.get(),
            sequential.stats().forced_evictions.get(),
            "{label}: eviction stats diverged"
        );
        for block in 0..96u64 {
            let line = LineAddr::from_block_number(block * 13);
            assert_eq!(
                batched.sharers(line),
                sequential.sharers(line),
                "{label}: contents diverged at block {block}"
            );
        }
    }
}
