//! Differential fuzz harness (ARCHITECTURE.md Contract #10).
//!
//! Each fuzz case draws a random directory spec (geometry × hash family ×
//! probe kernel × insertion policy), a random workload, and optionally a
//! live-resize policy and a crash schedule — then checks the service's
//! determinism contract differentially:
//!
//! * serial reference ≡ every legal worker count
//!   ([`ServiceReport::semantics`]), with the resize policy armed or not;
//! * a crashed-and-replayed run ≡ the fault-free serial reference
//!   ([`ServiceReport::recovery_semantics`]), resizes re-fired mid-replay.
//!
//! `fuzz_at_a_fixed_seed` pins one reproducible sweep; `fuzz_burst` draws
//! a fresh seed per run (override with `CCD_FUZZ_SEED`, printed on entry so
//! any failure is replayable).
//!
//! [`ServiceReport::semantics`]: ccd_service::ServiceReport::semantics
//! [`ServiceReport::recovery_semantics`]: ccd_service::ServiceReport::recovery_semantics

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig};

/// Builds one service; `resize` and `faults` arm the respective schedules.
fn build(
    spec: &str,
    shards: usize,
    workers: usize,
    resize: Option<&str>,
    faults: Option<&str>,
) -> DirectoryService {
    let mut config = ServiceConfig::new(spec, shards, workers).with_batch(64);
    if let Some(policy) = resize {
        config = config.with_resize_spec(policy).unwrap();
    }
    if let Some(plan) = faults {
        config = config.with_fault_spec(plan).unwrap();
    }
    DirectoryService::build_standard(config).unwrap_or_else(|err| panic!("{spec}: {err}"))
}

/// Draws one random configuration and checks it differentially.  Panics
/// with the full case description on any divergence.
fn run_case(seed: u64, index: usize) {
    let mut rng = SplitMix64::new(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    // --- the spec: geometry x hash x probe x policy -----------------------
    let shards = [2usize, 4][rng.next_below(2) as usize];
    let sets = [32usize, 64][rng.next_below(2) as usize] * shards;
    let spec = if rng.next_below(5) == 0 {
        // Occasionally a baseline: exercises the non-resizable no-op path
        // (baselines also reject `-bfs`, so no policy modifier here).
        format!("sparse-4x{sets}-c8")
    } else {
        let ways = [2usize, 3, 4, 8][rng.next_below(4) as usize];
        let kind = ["skew", "strong", "tagalt"][rng.next_below(3) as usize];
        let probe = if kind == "tagalt" && ways <= 4 && rng.next_below(4) == 0 {
            "-localized"
        } else {
            ["-scalar", "-swar", "-simd", ""][rng.next_below(4) as usize]
        };
        let policy = ["", "-bfs"][rng.next_below(2) as usize];
        format!("cuckoo-{ways}x{sets}-{kind}{probe}{policy}-c8")
    };

    // --- the traffic ------------------------------------------------------
    let workload = ["oracle", "migratory-zipf0.9", "falseshare"][rng.next_below(3) as usize];
    let requests = 2_000 + rng.next_below(2_000);
    let load = LoadSpec::parse(workload, 8, rng.next_u64(), requests).unwrap();

    // --- the schedules ----------------------------------------------------
    let resize = (rng.next_below(2) == 0).then(|| {
        let pct = [50, 60, 75][rng.next_below(3) as usize];
        let every = [64, 128][rng.next_below(2) as usize];
        let max = 1 + rng.next_below(2);
        format!("resize-grow2@{pct}-every{every}-max{max}")
    });
    let ctx = format!(
        "seed={seed:#x} case={index} spec={spec} workload={workload} \
         requests={requests} shards={shards} resize={resize:?}"
    );

    // --- serial vs every legal worker count -------------------------------
    let serial = build(&spec, shards, 1, resize.as_deref(), None)
        .run_load_serial(&load)
        .unwrap_or_else(|err| panic!("{ctx}: {err}"));
    assert_eq!(serial.requests, requests, "{ctx}");
    for workers in [1, 2, 4] {
        if workers > shards {
            continue;
        }
        let report = build(&spec, shards, workers, resize.as_deref(), None)
            .run_load(&load)
            .unwrap_or_else(|err| panic!("{ctx} workers={workers}: {err}"));
        assert_eq!(
            report.semantics(),
            serial.semantics(),
            "{ctx} workers={workers}"
        );
    }

    // --- crash, replay, compare to the fault-free reference ---------------
    if rng.next_below(2) == 0 {
        let workers = shards.min(4);
        let victim = rng.next_below(workers as u64);
        let at = requests / 2;
        let plan = format!("faults-crash@w{victim}:{at}");
        let report = build(&spec, shards, workers, resize.as_deref(), Some(&plan))
            .run_load(&load)
            .unwrap_or_else(|err| panic!("{ctx} plan={plan}: {err}"));
        assert!(report.stats.recoveries.get() >= 1, "{ctx} plan={plan}");
        assert_eq!(
            report.recovery_semantics(),
            serial.recovery_semantics(),
            "{ctx} plan={plan}"
        );
    }
}

#[test]
fn fuzz_at_a_fixed_seed() {
    // The CI anchor: one pinned sweep that must stay green forever.
    for index in 0..8 {
        run_case(0xD1FF_F552, index);
    }
}

#[test]
fn fuzz_burst() {
    // A fresh seed per run, printed so any failure is replayable with
    // `CCD_FUZZ_SEED=<seed> cargo test --test differential_fuzz`.
    let seed = match std::env::var("CCD_FUZZ_SEED") {
        Ok(text) => {
            let text = text.trim().to_string();
            match text.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).expect("hex CCD_FUZZ_SEED"),
                None => text.parse().expect("numeric CCD_FUZZ_SEED"),
            }
        }
        Err(_) => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock before 1970")
            .as_nanos() as u64,
    };
    eprintln!("differential_fuzz: CCD_FUZZ_SEED={seed:#x}");
    for index in 0..4 {
        run_case(seed, index);
    }
}
