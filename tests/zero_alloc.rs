//! Allocation accounting for the directory hot path.
//!
//! The acceptance criterion of the op/outcome redesign: with a warmed-up,
//! reused [`Outcome`] buffer, the lookup-hit (`Probe`) path and the
//! `AddSharer`-on-existing-entry path perform **zero heap allocations** per
//! operation, for every organization the registry can build.  The same
//! proof covers the prefetch hints and the batched entry points — the
//! directory-level `apply_batch` window and the raw cuckoo table's
//! `probe_batch` / `apply_batch`, which probe through the SoA tag arrays
//! with caller-owned buffers.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this file
//! contains a single `#[test]` so no concurrent test can perturb the
//! counters.

use ccd_common::{CacheId, LineAddr};
use ccd_cuckoo::{standard_registry, CuckooTable, InsertOutcome};
use ccd_directory::{DirectoryOp, Outcome};
use ccd_hash::HashKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `rounds` iterations of `f` and returns how many allocations they
/// performed in total.
fn count_allocs(rounds: u64, f: &mut impl FnMut()) -> u64 {
    let before = allocations();
    for _ in 0..rounds {
        f();
    }
    allocations() - before
}

/// Measures `f` up to `attempts` times and returns the smallest
/// allocation count observed.
///
/// The counting allocator is process-wide, and the libtest harness's
/// main thread allocates sporadically (event channel, output
/// buffering) while the test thread runs, so a single measurement can
/// report a couple of phantom allocations.  A true per-operation
/// allocation reproduces in every attempt and keeps the minimum
/// nonzero; harness noise is transient and washes out.
fn min_allocs(attempts: u32, rounds: u64, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts {
        best = best.min(count_allocs(rounds, &mut f));
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    const SPECS: &[&str] = &[
        "cuckoo-4x512-skew",
        "cuckoo-4x512-tagalt-bfs",
        "cuckoo-4x512@coarse",
        "cuckoo-4x512@hier",
        "cuckoo-4x512@limited",
        "sparse-8x512",
        "skewed-4x1024",
        "duplicate-tag-2x32",
        "in-cache-16x64",
        "tagless-2x32",
        "sharded4:cuckoo-4x512-skew",
    ];
    let registry = standard_registry();
    for spec in SPECS {
        let mut dir = registry.build_str(spec).expect(spec);
        let mut out = Outcome::new();
        let lines: Vec<LineAddr> = (0..64u64)
            .map(|i| LineAddr::from_block_number(i * 97))
            .collect();

        // Warm up: allocate the entries and let every buffer reach its
        // steady-state capacity (two passes so the Outcome buffers and any
        // per-entry sharer storage have grown to their working size).
        for _pass in 0..2 {
            for (i, &line) in lines.iter().enumerate() {
                for c in 0..3u32 {
                    dir.apply(
                        DirectoryOp::AddSharer {
                            line,
                            cache: CacheId::new((i as u32 + c * 7) % 32),
                        },
                        &mut out,
                    );
                }
                dir.apply(DirectoryOp::Probe { line }, &mut out);
            }
        }

        // Control: the counter itself works — the legacy allocating query
        // must register allocations.
        let control = count_allocs(1, &mut || {
            for &line in &lines {
                std::hint::black_box(dir.sharers(line));
            }
        });
        assert!(control > 0, "{spec}: counting-allocator control failed");

        // 1. Lookup-hit path: Probe of tracked lines.
        let probes = min_allocs(3, 4, || {
            for &line in &lines {
                dir.apply(DirectoryOp::Probe { line }, &mut out);
                assert!(out.hit());
            }
        });
        assert_eq!(probes, 0, "{spec}: Probe hit path allocated {probes} times");

        // 2. AddSharer on an existing entry (sharer already present).
        let adds = min_allocs(3, 4, || {
            for (i, &line) in lines.iter().enumerate() {
                dir.apply(
                    DirectoryOp::AddSharer {
                        line,
                        cache: CacheId::new(i as u32 % 32),
                    },
                    &mut out,
                );
                assert!(out.hit());
            }
        });
        assert_eq!(
            adds, 0,
            "{spec}: AddSharer-on-existing allocated {adds} times"
        );

        // 3. Pure queries: contains / may_hold / borrowed sharer view.
        let queries = min_allocs(3, 4, || {
            for &line in &lines {
                assert!(dir.contains(line));
                let n = ccd_directory::sharer_view(dir.as_ref(), line)
                    .expect("tracked")
                    .count();
                assert!(n > 0);
                assert!(dir.may_hold(line, CacheId::new(0)) || n > 0);
            }
        });
        assert_eq!(queries, 0, "{spec}: pure queries allocated {queries} times");

        // 4. Line prefetch hints and the batched apply path: with warmed-up
        // op/outcome buffers and an allocation-free sink, a window-prefetched
        // batch of Probe + AddSharer-on-existing ops must not allocate.
        let ops: Vec<DirectoryOp> = lines
            .iter()
            .enumerate()
            .flat_map(|(i, &line)| {
                [
                    DirectoryOp::Probe { line },
                    DirectoryOp::AddSharer {
                        line,
                        cache: CacheId::new(i as u32 % 32),
                    },
                ]
            })
            .collect();
        let batched = min_allocs(3, 4, || {
            for &line in &lines {
                dir.prefetch_line(line);
            }
            let mut round_hits = 0u64;
            dir.apply_batch(&ops, &mut out, &mut |_, o| {
                round_hits += u64::from(o.hit());
            });
            assert_eq!(round_hits, ops.len() as u64, "{spec}: batch missed");
        });
        assert_eq!(batched, 0, "{spec}: apply_batch allocated {batched} times");
    }

    // --- The raw cuckoo table's batched probe and insert paths ------------

    let mut table: CuckooTable<u64> = CuckooTable::new(4, 512, HashKind::Skewing, 1).unwrap();
    let keys: Vec<u64> = (0..256u64).map(|i| i * 613).collect();
    let mut hits = vec![false; keys.len()];
    let mut entries: Vec<(u64, u64)> = Vec::with_capacity(keys.len());
    let mut outcomes: Vec<InsertOutcome<u64>> = Vec::with_capacity(keys.len());

    // Warm up: populate the table and let every reusable buffer grow.
    entries.extend(keys.iter().map(|&k| (k, k)));
    table.apply_batch(&mut entries, &mut outcomes);
    assert!(outcomes.iter().all(InsertOutcome::succeeded));

    // Batched lookups over caller-owned buffers are allocation-free.
    let probe_allocs = min_allocs(3, 4, || {
        table.probe_batch(&keys, &mut hits);
        assert!(hits.iter().all(|&h| h));
    });
    assert_eq!(
        probe_allocs, 0,
        "CuckooTable::probe_batch allocated {probe_allocs} times"
    );

    // Batched re-insertions (payload replacement on existing keys) reuse
    // the entry and outcome buffers without allocating.
    let insert_allocs = min_allocs(3, 4, || {
        entries.extend(keys.iter().map(|&k| (k, k + 1)));
        outcomes.clear();
        table.apply_batch(&mut entries, &mut outcomes);
        assert_eq!(outcomes.len(), keys.len());
        assert!(outcomes.iter().all(|o| o.attempts == 1));
    });
    assert_eq!(
        insert_allocs, 0,
        "CuckooTable::apply_batch allocated {insert_allocs} times"
    );

    // Scalar prefetch hints are pure.
    let prefetch_allocs = min_allocs(3, 4, || {
        for &k in &keys {
            table.prefetch(k);
        }
    });
    assert_eq!(prefetch_allocs, 0, "prefetch allocated {prefetch_allocs}");
}
