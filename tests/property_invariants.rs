//! Randomized property tests on the core data structures' invariants.
//!
//! These were originally written against `proptest`; the build environment
//! has no network access, so they now drive the same invariants from the
//! workspace's own deterministic RNG ([`SplitMix64`]) across many seeds.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_cuckoo::{CuckooConfig, CuckooDirectory, CuckooTable};
use ccd_hash::HashKind;
use ccd_sharers::{CoarseVector, FullBitVector, HierarchicalVector, LimitedPointer, SharerSet};
use cuckoo_directory::prelude::*;
use std::collections::{HashMap, HashSet};

/// An abstract operation applied to a sharer set / directory entry.
#[derive(Clone, Debug)]
enum SharerOp {
    Add(u32),
    Remove(u32),
    Clear,
}

fn random_sharer_ops(rng: &mut SplitMix64, num_caches: u32, len: usize) -> Vec<SharerOp> {
    (0..len)
        .map(|_| match rng.next_below(8) {
            0 => SharerOp::Clear,
            1..=4 => SharerOp::Add(rng.next_below(u64::from(num_caches)) as u32),
            _ => SharerOp::Remove(rng.next_below(u64::from(num_caches)) as u32),
        })
        .collect()
}

/// Applies the ops to a reference model (exact set) and a representation
/// under test, then checks the conservativeness contract.
fn check_sharer_set<S: SharerSet>(num_caches: usize, ops: &[SharerOp]) {
    let mut model: HashSet<u32> = HashSet::new();
    let mut set = S::new(num_caches);
    for op in ops {
        match op {
            SharerOp::Add(c) => {
                model.insert(*c);
                set.add(CacheId::new(*c));
            }
            SharerOp::Remove(c) => {
                model.remove(c);
                set.remove(CacheId::new(*c));
            }
            SharerOp::Clear => {
                model.clear();
                set.clear();
            }
        }
        // Conservativeness: every true sharer is covered.
        for &c in &model {
            assert!(
                set.may_contain(CacheId::new(c)),
                "lost true sharer cache{c}"
            );
        }
        let targets = set.invalidation_targets();
        for &c in &model {
            assert!(targets.contains(&CacheId::new(c)));
        }
        // The zero-allocation path must agree with the allocating one.
        let mut extended: Vec<CacheId> = Vec::new();
        set.extend_targets(&mut extended);
        assert_eq!(extended, targets, "extend_targets diverged");
        // Exact representations must be exactly right.
        if set.is_exact() {
            assert_eq!(
                targets.len(),
                model.len(),
                "exact representation reported wrong cardinality"
            );
        }
        // An empty report implies the model is empty too.
        if set.is_empty() {
            assert!(model.is_empty());
        }
        assert!(set.storage_bits() > 0);
    }
}

fn sharer_set_property<S: SharerSet>(num_caches: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for round in 0..64 {
        let len = 1 + (round % 63);
        let ops = random_sharer_ops(&mut rng, num_caches as u32, len);
        check_sharer_set::<S>(num_caches, &ops);
    }
}

#[test]
fn full_vector_is_always_exact() {
    sharer_set_property::<FullBitVector>(64, 0xF011);
}

#[test]
fn hierarchical_vector_is_always_exact() {
    sharer_set_property::<HierarchicalVector>(100, 0x41E2);
}

#[test]
fn coarse_vector_is_conservative() {
    sharer_set_property::<CoarseVector>(64, 0xC0A2);
}

#[test]
fn limited_pointer_is_conservative() {
    sharer_set_property::<LimitedPointer>(32, 0x117D);
}

#[test]
fn cuckoo_table_never_loses_undiscarded_keys() {
    let mut rng = SplitMix64::new(0x7AB1E);
    for round in 0..48u64 {
        let ways = 2 + (round % 4) as usize;
        let key_count = 1 + rng.next_below(300) as usize;
        let keys: HashSet<u64> = (0..key_count).map(|_| rng.next_below(1_000_000)).collect();
        let mut table: CuckooTable<u64> = CuckooTable::new(ways, 256, HashKind::Strong, 7).unwrap();
        let mut expected: HashSet<u64> = HashSet::new();
        for &k in &keys {
            let outcome = table.insert(k, k);
            expected.insert(k);
            if let Some((lost, payload)) = outcome.discarded {
                assert_eq!(lost, payload, "payload must travel with its key");
                expected.remove(&lost);
            }
        }
        assert_eq!(table.len(), expected.len());
        for &k in &expected {
            assert!(table.contains(k), "key {k} lost without being reported");
            assert_eq!(table.get(k), Some(&k));
        }
        assert!(table.len() <= table.capacity());
        // Occupancy is consistent with len().
        assert!((table.occupancy() - table.len() as f64 / table.capacity() as f64).abs() < 1e-12);
    }
}

#[test]
fn cuckoo_directory_tracks_exactly_the_uncovered_model() {
    // Reference model: block -> set of caches, maintained alongside a
    // generously sized Cuckoo directory (so no forced evictions occur and
    // the contents must match the model exactly).
    let mut rng = SplitMix64::new(0xD1CE);
    for _ in 0..24 {
        let mut dir = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 256, 8)).unwrap();
        let mut model: HashMap<u64, HashSet<u32>> = HashMap::new();
        let op_count = 1 + rng.next_below(400) as usize;
        for _ in 0..op_count {
            let block = rng.next_below(500);
            let cache = rng.next_below(8) as u32;
            let add = rng.next_below(2) == 0;
            let line = LineAddr::from_block_number(block);
            if add {
                let r = dir.add_sharer(line, CacheId::new(cache));
                assert!(
                    r.forced_evictions.is_empty(),
                    "directory is oversized; no evictions expected"
                );
                model.entry(block).or_default().insert(cache);
            } else {
                dir.remove_sharer(line, CacheId::new(cache));
                if let Some(set) = model.get_mut(&block) {
                    set.remove(&cache);
                    if set.is_empty() {
                        model.remove(&block);
                    }
                }
            }
        }
        assert_eq!(dir.len(), model.len());
        for (block, caches) in &model {
            let sharers = dir.sharers(LineAddr::from_block_number(*block)).unwrap();
            assert_eq!(sharers.len(), caches.len());
            for c in caches {
                assert!(sharers.contains(&CacheId::new(*c)));
            }
        }
    }
}

#[test]
fn cache_lru_respects_capacity_and_recency() {
    let mut rng = SplitMix64::new(0xCAC4E);
    for _ in 0..24 {
        let mut cache = Cache::new(CacheConfig::new(4, 2, 64)).unwrap();
        let block_count = 1 + rng.next_below(300) as usize;
        let blocks: Vec<u64> = (0..block_count).map(|_| rng.next_below(64)).collect();
        let mut resident_model: Vec<u64> = Vec::new(); // most recent last
        for &b in &blocks {
            cache.access_read(LineAddr::from_block_number(b));
            resident_model.retain(|&x| x != b);
            resident_model.push(b);
            assert!(cache.len() <= cache.config().frames());
            // The most recently accessed block is always resident.
            assert!(cache.contains(LineAddr::from_block_number(b)));
        }
        // Every resident line was accessed at some point.
        for (line, _) in cache.resident_lines() {
            assert!(blocks.contains(&line.block_number()));
        }
    }
}
