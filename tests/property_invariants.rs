//! Randomized property tests on the core data structures' invariants.
//!
//! These were originally written against `proptest`; the build environment
//! has no network access, so they now drive the same invariants from the
//! workspace's own deterministic RNG ([`SplitMix64`]) across many seeds.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_cuckoo::seed_reference::AosReferenceTable;
use ccd_cuckoo::{CuckooConfig, CuckooDirectory, CuckooTable};
use ccd_hash::HashKind;
use ccd_sharers::{CoarseVector, FullBitVector, HierarchicalVector, LimitedPointer, SharerSet};
use cuckoo_directory::prelude::*;
use std::collections::{HashMap, HashSet};

/// An abstract operation applied to a sharer set / directory entry.
#[derive(Clone, Debug)]
enum SharerOp {
    Add(u32),
    Remove(u32),
    Clear,
}

fn random_sharer_ops(rng: &mut SplitMix64, num_caches: u32, len: usize) -> Vec<SharerOp> {
    (0..len)
        .map(|_| match rng.next_below(8) {
            0 => SharerOp::Clear,
            1..=4 => SharerOp::Add(rng.next_below(u64::from(num_caches)) as u32),
            _ => SharerOp::Remove(rng.next_below(u64::from(num_caches)) as u32),
        })
        .collect()
}

/// Applies the ops to a reference model (exact set) and a representation
/// under test, then checks the conservativeness contract.
fn check_sharer_set<S: SharerSet>(num_caches: usize, ops: &[SharerOp]) {
    let mut model: HashSet<u32> = HashSet::new();
    let mut set = S::new(num_caches);
    for op in ops {
        match op {
            SharerOp::Add(c) => {
                model.insert(*c);
                set.add(CacheId::new(*c));
            }
            SharerOp::Remove(c) => {
                model.remove(c);
                set.remove(CacheId::new(*c));
            }
            SharerOp::Clear => {
                model.clear();
                set.clear();
            }
        }
        // Conservativeness: every true sharer is covered.
        for &c in &model {
            assert!(
                set.may_contain(CacheId::new(c)),
                "lost true sharer cache{c}"
            );
        }
        let targets = set.invalidation_targets();
        for &c in &model {
            assert!(targets.contains(&CacheId::new(c)));
        }
        // The zero-allocation path must agree with the allocating one.
        let mut extended: Vec<CacheId> = Vec::new();
        set.extend_targets(&mut extended);
        assert_eq!(extended, targets, "extend_targets diverged");
        // Exact representations must be exactly right.
        if set.is_exact() {
            assert_eq!(
                targets.len(),
                model.len(),
                "exact representation reported wrong cardinality"
            );
        }
        // An empty report implies the model is empty too.
        if set.is_empty() {
            assert!(model.is_empty());
        }
        assert!(set.storage_bits() > 0);
    }
}

fn sharer_set_property<S: SharerSet>(num_caches: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for round in 0..64 {
        let len = 1 + (round % 63);
        let ops = random_sharer_ops(&mut rng, num_caches as u32, len);
        check_sharer_set::<S>(num_caches, &ops);
    }
}

#[test]
fn full_vector_is_always_exact() {
    sharer_set_property::<FullBitVector>(64, 0xF011);
}

#[test]
fn hierarchical_vector_is_always_exact() {
    sharer_set_property::<HierarchicalVector>(100, 0x41E2);
}

#[test]
fn coarse_vector_is_conservative() {
    sharer_set_property::<CoarseVector>(64, 0xC0A2);
}

#[test]
fn limited_pointer_is_conservative() {
    sharer_set_property::<LimitedPointer>(32, 0x117D);
}

#[test]
fn cuckoo_table_never_loses_undiscarded_keys() {
    let mut rng = SplitMix64::new(0x7AB1E);
    for round in 0..48u64 {
        let ways = 2 + (round % 4) as usize;
        let key_count = 1 + rng.next_below(300) as usize;
        let keys: HashSet<u64> = (0..key_count).map(|_| rng.next_below(1_000_000)).collect();
        let mut table: CuckooTable<u64> = CuckooTable::new(ways, 256, HashKind::Strong, 7).unwrap();
        let mut expected: HashSet<u64> = HashSet::new();
        for &k in &keys {
            let outcome = table.insert(k, k);
            expected.insert(k);
            if let Some((lost, payload)) = outcome.discarded {
                assert_eq!(lost, payload, "payload must travel with its key");
                expected.remove(&lost);
            }
        }
        assert_eq!(table.len(), expected.len());
        for &k in &expected {
            assert!(table.contains(k), "key {k} lost without being reported");
            assert_eq!(table.get(k), Some(&k));
        }
        assert!(table.len() <= table.capacity());
        // Occupancy is consistent with len().
        assert!((table.occupancy() - table.len() as f64 / table.capacity() as f64).abs() < 1e-12);
    }
}

#[test]
fn cuckoo_directory_tracks_exactly_the_uncovered_model() {
    // Reference model: block -> set of caches, maintained alongside a
    // generously sized Cuckoo directory (so no forced evictions occur and
    // the contents must match the model exactly).
    let mut rng = SplitMix64::new(0xD1CE);
    for _ in 0..24 {
        let mut dir = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 256, 8)).unwrap();
        let mut model: HashMap<u64, HashSet<u32>> = HashMap::new();
        let op_count = 1 + rng.next_below(400) as usize;
        for _ in 0..op_count {
            let block = rng.next_below(500);
            let cache = rng.next_below(8) as u32;
            let add = rng.next_below(2) == 0;
            let line = LineAddr::from_block_number(block);
            if add {
                let r = dir.add_sharer(line, CacheId::new(cache));
                assert!(
                    r.forced_evictions.is_empty(),
                    "directory is oversized; no evictions expected"
                );
                model.entry(block).or_default().insert(cache);
            } else {
                dir.remove_sharer(line, CacheId::new(cache));
                if let Some(set) = model.get_mut(&block) {
                    set.remove(&cache);
                    if set.is_empty() {
                        model.remove(&block);
                    }
                }
            }
        }
        assert_eq!(dir.len(), model.len());
        for (block, caches) in &model {
            let sharers = dir.sharers(LineAddr::from_block_number(*block)).unwrap();
            assert_eq!(sharers.len(), caches.len());
            for c in caches {
                assert!(sharers.contains(&CacheId::new(*c)));
            }
        }
    }
}

#[test]
fn soa_table_matches_the_seed_aos_model_bit_for_bit() {
    // Drive the SoA/SWAR table and the seed's AoS algorithm in lockstep
    // through the same (hash family, budget, operation stream) and demand
    // identical insertion outcomes — including the rare displacement-chain
    // branches: budget exhaustion, discard selection, and the chain circling
    // back to the in-flight incoming key (which must trigger one final
    // displacement so the requested key stays tracked).
    let mut rng = SplitMix64::new(0x5EED_30DE1);
    for (ways, sets, budget) in [
        (2usize, 2usize, 1u32),
        (2, 2, 3),
        (2, 8, 4),
        (3, 8, 2),
        (3, 16, 32),
        (4, 16, 8),
        (12, 8, 6), // exercises the multi-chunk (>8-way) SWAR path
    ] {
        for kind in [HashKind::Skewing, HashKind::MultiplyShift, HashKind::Strong] {
            let hash_seed = rng.next_u64();
            let mut table: CuckooTable<u64> =
                CuckooTable::new(ways, sets, kind, hash_seed).unwrap();
            table.set_max_attempts(budget);
            let mut model =
                AosReferenceTable::<u64>::new(ways, sets, kind, hash_seed, budget).unwrap();

            // A small key space keeps hits, displacements and discards all
            // frequent; removals keep vacancies appearing mid-stream.
            let key_space = (ways * sets * 2) as u64;
            for step in 0..2_000u64 {
                let key = rng.next_below(key_space);
                if rng.next_below(10) < 7 {
                    let outcome = table.insert(key, step);
                    let (attempts, discarded) = model.insert(key, step);
                    assert_eq!(
                        outcome.attempts, attempts,
                        "{ways}x{sets}-{kind} budget {budget}: attempt count diverged at step {step}"
                    );
                    assert_eq!(
                        outcome.discarded, discarded,
                        "{ways}x{sets}-{kind} budget {budget}: discard choice diverged at step {step}"
                    );
                } else {
                    assert_eq!(
                        table.remove(key),
                        model.remove(key),
                        "{ways}x{sets}-{kind}: removal diverged at step {step}"
                    );
                }
                assert_eq!(table.len(), model.len());
            }
            let table_contents: HashMap<u64, u64> = table.iter().map(|(k, v)| (k, *v)).collect();
            let model_contents: HashMap<u64, u64> = model.iter().map(|(k, v)| (k, *v)).collect();
            assert_eq!(
                table_contents, model_contents,
                "{ways}x{sets}-{kind}: final contents diverged"
            );
        }
    }
}

#[test]
fn attempt_budget_of_one_discards_on_the_first_attempt() {
    // Section 5.2 edge case: with `max_attempts = 1` a conflicting insertion
    // gets no displacement chain at all.  The incoming key still performs
    // its one final displacement (the request is never the victim), so the
    // previous occupant of the start way's candidate slot is discarded, the
    // attempt count is exactly 1, and occupancy is unchanged.
    let mut table: CuckooTable<u64> = CuckooTable::new(3, 16, HashKind::Strong, 9).unwrap();
    let mut rng = SplitMix64::new(0xB1);
    while table.len() < table.capacity() {
        let key = rng.next_below(1 << 20);
        table.insert(key, key * 2);
    }
    table.set_max_attempts(1);
    let mut discards = 0usize;
    for _ in 0..64 {
        let mut fresh = rng.next_below(1 << 20);
        while table.contains(fresh) {
            fresh = rng.next_below(1 << 20);
        }
        let o = table.insert(fresh, fresh * 2);
        assert_eq!(o.attempts, 1, "budget 1 permits exactly one attempt");
        let (lost, payload) = o.discarded.expect("full table must discard");
        assert_eq!(payload, lost * 2, "payload travels with its key");
        assert_ne!(lost, fresh, "the incoming request is never discarded");
        assert!(table.contains(fresh), "the requested key must be tracked");
        assert!(!table.contains(lost), "the victim must be gone");
        assert_eq!(table.len(), table.capacity(), "one-for-one swap");
        discards += 1;
    }
    assert_eq!(discards, 64);
}

#[test]
fn two_way_table_at_full_occupancy_exhausts_the_budget_exactly() {
    // ways = 2 at 100% occupancy: no vacancy exists anywhere, so every
    // insertion of a fresh key must run its displacement chain to the full
    // attempt budget, discard exactly one resident entry, and keep the
    // table exactly full.
    let mut table: CuckooTable<u64> = CuckooTable::new(2, 8, HashKind::Strong, 21).unwrap();
    let mut rng = SplitMix64::new(0x2F);
    while table.len() < table.capacity() {
        let key = rng.next_below(1 << 16);
        table.insert(key, key);
    }
    for budget in [2u32, 5, 32] {
        table.set_max_attempts(budget);
        for _ in 0..16 {
            let mut fresh = rng.next_below(1 << 16);
            while table.contains(fresh) {
                fresh = rng.next_below(1 << 16);
            }
            let o = table.insert(fresh, fresh);
            assert_eq!(
                o.attempts, budget,
                "with zero vacancies the chain must run to the budget"
            );
            let (lost, _) = o.discarded.expect("full table must discard");
            assert_ne!(lost, fresh);
            assert!(table.contains(fresh));
            assert!(!table.contains(lost));
            assert_eq!(table.len(), table.capacity());
        }
    }
}

#[test]
fn chains_that_circle_back_to_the_incoming_key_keep_it_tracked() {
    // Re-insert of a key that is currently in flight in its own chain: on a
    // tiny table the displacement chain frequently displaces the incoming
    // key again before the budget runs out.  Whatever happens inside the
    // chain, the documented accounting must hold: the incoming key is
    // stored, it is never the discard victim, and the attempt count never
    // exceeds the budget.
    let mut rng = SplitMix64::new(0xC17C);
    for seed in 0..6u64 {
        let mut table: CuckooTable<u64> = CuckooTable::new(2, 2, HashKind::Strong, seed).unwrap();
        table.set_max_attempts(4);
        let mut discards = 0usize;
        for step in 0..600u64 {
            let key = rng.next_below(48);
            let o = table.insert(key, step);
            assert!(o.attempts <= 4);
            if let Some((lost, _)) = o.discarded {
                assert_ne!(lost, key, "the incoming request is never discarded");
                assert!(!table.contains(lost));
                discards += 1;
            }
            assert!(
                table.contains(key),
                "seed {seed}: key {key} lost at step {step}"
            );
            assert_eq!(table.get(key), Some(&step), "insert replaces the payload");
            assert!(table.len() <= table.capacity());
        }
        assert!(discards > 0, "a 4-entry table under this load must discard");
    }
}

#[test]
fn cache_lru_respects_capacity_and_recency() {
    let mut rng = SplitMix64::new(0xCAC4E);
    for _ in 0..24 {
        let mut cache = Cache::new(CacheConfig::new(4, 2, 64)).unwrap();
        let block_count = 1 + rng.next_below(300) as usize;
        let blocks: Vec<u64> = (0..block_count).map(|_| rng.next_below(64)).collect();
        let mut resident_model: Vec<u64> = Vec::new(); // most recent last
        for &b in &blocks {
            cache.access_read(LineAddr::from_block_number(b));
            resident_model.retain(|&x| x != b);
            resident_model.push(b);
            assert!(cache.len() <= cache.config().frames());
            // The most recently accessed block is always resident.
            assert!(cache.contains(LineAddr::from_block_number(b)));
        }
        // Every resident line was accessed at some point.
        for (line, _) in cache.resident_lines() {
            assert!(blocks.contains(&line.block_number()));
        }
    }
}
