//! Property-based tests (proptest) on the core data structures' invariants.

use ccd_cuckoo::{CuckooConfig, CuckooDirectory, CuckooTable};
use ccd_hash::HashKind;
use ccd_sharers::{CoarseVector, FullBitVector, HierarchicalVector, LimitedPointer, SharerSet};
use cuckoo_directory::prelude::*;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// An abstract operation applied to a sharer set / directory entry.
#[derive(Clone, Debug)]
enum SharerOp {
    Add(u32),
    Remove(u32),
    Clear,
}

fn sharer_ops(num_caches: u32) -> impl Strategy<Value = Vec<SharerOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..num_caches).prop_map(SharerOp::Add),
            (0..num_caches).prop_map(SharerOp::Remove),
            Just(SharerOp::Clear),
        ],
        0..64,
    )
}

/// Applies the ops to a reference model (exact set) and a representation
/// under test, then checks the conservativeness contract.
fn check_sharer_set<S: SharerSet>(num_caches: usize, ops: &[SharerOp]) {
    let mut model: HashSet<u32> = HashSet::new();
    let mut set = S::new(num_caches);
    for op in ops {
        match op {
            SharerOp::Add(c) => {
                model.insert(*c);
                set.add(CacheId::new(*c));
            }
            SharerOp::Remove(c) => {
                model.remove(c);
                set.remove(CacheId::new(*c));
            }
            SharerOp::Clear => {
                model.clear();
                set.clear();
            }
        }
        // Conservativeness: every true sharer is covered.
        for &c in &model {
            assert!(
                set.may_contain(CacheId::new(c)),
                "lost true sharer cache{c}"
            );
        }
        let targets = set.invalidation_targets();
        for &c in &model {
            assert!(targets.contains(&CacheId::new(c)));
        }
        // Exact representations must be exactly right.
        if set.is_exact() {
            assert_eq!(
                targets.len(),
                model.len(),
                "exact representation reported wrong cardinality"
            );
        }
        // An empty report implies the model is empty too.
        if set.is_empty() {
            assert!(model.is_empty());
        }
        assert!(set.storage_bits() > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_vector_is_always_exact(ops in sharer_ops(64)) {
        check_sharer_set::<FullBitVector>(64, &ops);
    }

    #[test]
    fn hierarchical_vector_is_always_exact(ops in sharer_ops(100)) {
        check_sharer_set::<HierarchicalVector>(100, &ops);
    }

    #[test]
    fn coarse_vector_is_conservative(ops in sharer_ops(64)) {
        check_sharer_set::<CoarseVector>(64, &ops);
    }

    #[test]
    fn limited_pointer_is_conservative(ops in sharer_ops(32)) {
        check_sharer_set::<LimitedPointer>(32, &ops);
    }

    #[test]
    fn cuckoo_table_never_loses_undiscarded_keys(
        keys in prop::collection::hash_set(0u64..1_000_000, 1..300),
        ways in 2usize..6,
    ) {
        let mut table: CuckooTable<u64> = CuckooTable::new(ways, 256, HashKind::Strong, 7).unwrap();
        let mut expected: HashSet<u64> = HashSet::new();
        for &k in &keys {
            let outcome = table.insert(k, k);
            expected.insert(k);
            if let Some((lost, payload)) = outcome.discarded {
                prop_assert_eq!(lost, payload, "payload must travel with its key");
                expected.remove(&lost);
            }
        }
        prop_assert_eq!(table.len(), expected.len());
        for &k in &expected {
            prop_assert!(table.contains(k), "key {} lost without being reported", k);
            prop_assert_eq!(table.get(k), Some(&k));
        }
        prop_assert!(table.len() <= table.capacity());
        // Occupancy is consistent with len().
        prop_assert!((table.occupancy() - table.len() as f64 / table.capacity() as f64).abs() < 1e-12);
    }

    #[test]
    fn cuckoo_directory_tracks_exactly_the_uncovered_model(
        ops in prop::collection::vec((0u64..500, 0u32..8, prop::bool::ANY), 1..400)
    ) {
        // Reference model: block -> set of caches, maintained alongside a
        // generously sized Cuckoo directory (so no forced evictions occur and
        // the contents must match the model exactly).
        let mut dir = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 256, 8)).unwrap();
        let mut model: HashMap<u64, HashSet<u32>> = HashMap::new();
        for (block, cache, add) in ops {
            let line = LineAddr::from_block_number(block);
            if add {
                let r = dir.add_sharer(line, CacheId::new(cache));
                prop_assert!(r.forced_evictions.is_empty(), "directory is oversized; no evictions expected");
                model.entry(block).or_default().insert(cache);
            } else {
                dir.remove_sharer(line, CacheId::new(cache));
                if let Some(set) = model.get_mut(&block) {
                    set.remove(&cache);
                    if set.is_empty() {
                        model.remove(&block);
                    }
                }
            }
        }
        prop_assert_eq!(dir.len(), model.len());
        for (block, caches) in &model {
            let sharers = dir.sharers(LineAddr::from_block_number(*block)).unwrap();
            prop_assert_eq!(sharers.len(), caches.len());
            for c in caches {
                prop_assert!(sharers.contains(&CacheId::new(*c)));
            }
        }
    }

    #[test]
    fn cache_lru_respects_capacity_and_recency(
        blocks in prop::collection::vec(0u64..64, 1..300)
    ) {
        let mut cache = Cache::new(CacheConfig::new(4, 2, 64)).unwrap();
        let mut resident_model: Vec<u64> = Vec::new(); // most recent last
        for &b in &blocks {
            cache.access_read(LineAddr::from_block_number(b));
            resident_model.retain(|&x| x != b);
            resident_model.push(b);
            prop_assert!(cache.len() <= cache.config().frames());
            // The most recently accessed block is always resident.
            prop_assert!(cache.contains(LineAddr::from_block_number(b)));
        }
        // Every resident line was accessed at some point.
        for (line, _) in cache.resident_lines() {
            prop_assert!(blocks.contains(&line.block_number()));
        }
    }
}
