//! End-to-end integration tests: full workload → trace → caches →
//! directory → report pipelines, checking the qualitative results of the
//! paper's evaluation at reduced scale.

use cuckoo_directory::prelude::*;

/// A scaled-down Shared-L2 system (4 cores, 16 KB L1s) so the integration
/// tests run in seconds while exercising the same code paths as the paper's
/// 16-core configuration.
fn small_shared() -> SystemConfig {
    SystemConfig {
        num_cores: 4,
        l1: CacheConfig::new(128, 2, 64),
        private_l2: CacheConfig::new(512, 8, 64),
        ..SystemConfig::shared_l2(4)
    }
}

fn small_private() -> SystemConfig {
    small_shared().with_hierarchy(Hierarchy::PrivateL2)
}

fn run(
    system: &SystemConfig,
    spec: &DirectorySpec,
    profile: &WorkloadProfile,
    seed: u64,
) -> SimReport {
    let mut trace = TraceGenerator::new(profile.clone(), system.num_cores, seed);
    let warm = system.total_tracked_frames() as u64 * 8;
    let measure = system.total_tracked_frames() as u64 * 4;
    CmpSimulator::run_workload(system.clone(), spec, &mut trace, warm, measure)
        .expect("simulation must build")
}

#[test]
fn figure12_ordering_sparse_vs_skewed_vs_cuckoo() {
    // The qualitative result of Figure 12: low-provisioned Sparse and Skewed
    // directories conflict noticeably, generously provisioned Sparse much
    // less, and the Cuckoo directory — with the *least* capacity of all —
    // is near zero, for a sharing-heavy server workload.
    let system = small_shared();
    let profile = WorkloadProfile::oracle();
    let sparse1 = run(&system, &DirectorySpec::sparse(8, 1.0), &profile, 1);
    let sparse8 = run(&system, &DirectorySpec::sparse(8, 4.0), &profile, 1);
    let skewed1 = run(&system, &DirectorySpec::skewed(4, 1.0), &profile, 1);
    let cuckoo = run(&system, &DirectorySpec::cuckoo(4, 1.0), &profile, 1);

    assert!(
        sparse1.forced_invalidation_rate() > 10.0 * sparse8.forced_invalidation_rate(),
        "over-provisioning must cut the sparse conflict rate dramatically ({} vs {})",
        sparse1.forced_invalidation_rate(),
        sparse8.forced_invalidation_rate()
    );
    assert!(
        skewed1.forced_invalidation_rate() > cuckoo.forced_invalidation_rate(),
        "a same-capacity skewed directory must conflict more than the cuckoo directory"
    );
    assert!(
        sparse1.forced_invalidation_rate() > 20.0 * cuckoo.forced_invalidation_rate(),
        "the cuckoo directory must eliminate the conflicts a same-capacity sparse suffers ({} vs {})",
        sparse1.forced_invalidation_rate(),
        cuckoo.forced_invalidation_rate()
    );
    assert!(
        cuckoo.forced_invalidation_rate() < 0.005,
        "cuckoo at 1x must be near zero, got {}",
        cuckoo.forced_invalidation_rate()
    );
}

#[test]
fn figure8_private_l2_occupancy_orders_ocean_above_oltp() {
    // ocean is dominated by unique private blocks, so its Private-L2
    // directory occupancy is higher than DB2's, whose shared blocks are
    // deduplicated by the directory (Figure 8).
    let system = small_private();
    let spec = DirectorySpec::cuckoo(4, 2.0);
    let ocean = run(&system, &spec, &WorkloadProfile::ocean(), 3);
    let db2 = run(&system, &spec, &WorkloadProfile::db2(), 3);
    assert!(
        ocean.avg_directory_occupancy > db2.avg_directory_occupancy,
        "ocean {} should exceed DB2 {}",
        ocean.avg_directory_occupancy,
        db2.avg_directory_occupancy
    );
}

#[test]
fn duplicate_tag_never_forces_invalidations_in_the_full_pipeline() {
    let system = small_shared();
    let report = run(
        &system,
        &DirectorySpec::DuplicateTag,
        &WorkloadProfile::apache(),
        5,
    );
    assert_eq!(report.forced_invalidations, 0);
    assert_eq!(report.directory.forced_evictions.get(), 0);
    assert!(report.refs_processed > 0);
}

#[test]
fn tagless_matches_exact_directories_on_protocol_behaviour() {
    // Tagless may send extra (false-positive) invalidations but must never
    // force evictions, and its cache-side behaviour matches the exact
    // directories (same trace, same caches).
    let system = small_shared();
    let profile = WorkloadProfile::zeus();
    let tagless = run(&system, &DirectorySpec::tagless(), &profile, 9);
    let cuckoo = run(&system, &DirectorySpec::cuckoo(4, 2.0), &profile, 9);
    assert_eq!(tagless.directory.forced_evictions.get(), 0);
    assert_eq!(tagless.cache_accesses, cuckoo.cache_accesses);
    assert!(tagless.coherence_invalidations >= cuckoo.coherence_invalidations);
}

#[test]
fn under_provisioned_cuckoo_degrades_gracefully() {
    // Figure 9: below 1x the attempts and forced invalidations rise sharply,
    // but the system keeps running and the directory never overflows.
    let system = small_shared();
    let profile = WorkloadProfile::qry17();
    let provisioned = run(&system, &DirectorySpec::cuckoo(4, 1.0), &profile, 11);
    let starved = run(&system, &DirectorySpec::cuckoo(3, 0.375), &profile, 11);
    assert!(starved.avg_insertion_attempts() > provisioned.avg_insertion_attempts());
    assert!(starved.forced_invalidation_rate() > provisioned.forced_invalidation_rate());
    assert!(provisioned.forced_invalidation_rate() < 0.01);
}

#[test]
fn event_mix_is_roughly_balanced_like_the_paper_footnote() {
    // Footnote 1 of Section 5.6: insertions, sharer adds, sharer removes and
    // tag removes each account for roughly a quarter of directory
    // operations, invalidate-alls for a small remainder.
    let system = small_shared();
    let report = run(
        &system,
        &DirectorySpec::cuckoo(4, 1.0),
        &WorkloadProfile::db2(),
        13,
    );
    let mix = report.directory.event_mix();
    assert!((mix.total() - 1.0).abs() < 1e-9);
    assert!(mix.insert_tag > 0.05 && mix.insert_tag < 0.6);
    assert!(mix.remove_sharer + mix.remove_tag > 0.2);
    assert!(mix.invalidate_all < 0.3);
}

#[test]
fn shared_and_private_hierarchies_track_the_right_cache_level() {
    let shared = run(
        &small_shared(),
        &DirectorySpec::cuckoo(4, 1.0),
        &WorkloadProfile::apache(),
        17,
    );
    let private = run(
        &small_private(),
        &DirectorySpec::cuckoo(4, 1.0),
        &WorkloadProfile::apache(),
        17,
    );
    // The private-L2 system has 4x the tracked capacity here, so the same
    // workload misses less and the directory sees fewer insertions per
    // reference.
    assert!(private.cache_miss_rate() < shared.cache_miss_rate());
}
