//! The analyzer's own gate: the real workspace must be clean.
//!
//! This makes `cargo test` enforce the same invariants as the CI
//! `ccd-lint` step — a violation anywhere in the tree fails this test
//! with the full diagnostic listing.

use ccd_lint::rules::Config;
use ccd_lint::workspace::run;
use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = run(&Config::workspace(root)).expect("workspace sources are readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walk break?",
        report.files_scanned
    );
    let listing: String = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: [{}] {}\n", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        report.is_clean(),
        "ccd-lint found {} violation(s):\n{listing}",
        report.diagnostics.len()
    );
}
