//! Every rule must fire — proven against a checked-in fixture corpus.
//!
//! The corpus under `tests/fixtures/ws/` is a miniature workspace whose
//! files violate each rule in a known place.  This test runs the full
//! analyzer over it and asserts the exact `(file, line, rule)` set, so a
//! regression that silences a rule (or shifts where it fires) is caught
//! by `cargo test` rather than by a missed review.
//!
//! The real workspace run excludes this directory (see
//! `Config::workspace`), so the violations here never count against the
//! tree itself.

use ccd_lint::inventory::{check_inventory, parse_inventory, render_inventory};
use ccd_lint::rules::Config;
use ccd_lint::workspace::run;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// The fixture policy: mirrors the shape of `Config::workspace` with the
/// corpus's own crate names.
fn fixture_config() -> Config {
    let owned = |items: &[&str]| items.iter().map(|s| (*s).to_string()).collect();
    Config {
        root: fixture_root(),
        scan_roots: owned(&["crates"]),
        excluded: Vec::new(),
        result_bearing: owned(&["crates/resultful"]),
        wallclock_allowed: Vec::new(),
        spawn_allowed: owned(&["crates/resultful/src/runner.rs"]),
        lock_free: owned(&["crates/hotpath", "crates/recorder"]),
        ordering_commented: owned(&["crates/resultful/src/atomics.rs"]),
        arch_allowed: Vec::new(),
        panic_allowlist: "lint/panic_allowlist.txt".to_string(),
        unsafe_inventory: "lint/unsafe_inventory.json".to_string(),
    }
}

#[test]
fn every_rule_fires_at_its_known_site() {
    let report = run(&fixture_config()).expect("fixture corpus is readable");
    let got: Vec<(String, usize, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let expected: Vec<(String, usize, &str)> = [
        // Hot-path crates must stay lock-free.
        ("crates/hotpath/src/locks.rs", 4, "lock-discipline"),
        ("crates/hotpath/src/locks.rs", 5, "lock-discipline"),
        ("crates/hotpath/src/locks.rs", 6, "lock-discipline"),
        // The recorder-style crate: virtual time only (wall-clock reads
        // fire even outside result-bearing scope) and a lock-free ring.
        ("crates/recorder/src/flight.rs", 5, "no-wallclock"),
        ("crates/recorder/src/flight.rs", 10, "no-wallclock"),
        ("crates/recorder/src/flight.rs", 14, "lock-discipline"),
        // An atomic ordering without a `// ordering:` justification; the
        // justified load and `cmp::Ordering` stay silent.
        ("crates/resultful/src/atomics.rs", 6, "ordering-comment"),
        // Default-hasher map and wall-clock reads in result-bearing code;
        // the `#[cfg(test)]` module's uses stay silent.
        (
            "crates/resultful/src/determinism.rs",
            4,
            "no-default-hasher",
        ),
        ("crates/resultful/src/determinism.rs", 9, "no-wallclock"),
        ("crates/resultful/src/determinism.rs", 14, "no-wallclock"),
        // Bare unwrap in library code; the allowlisted `expect` and the
        // suppressed unwrap stay silent.
        ("crates/resultful/src/panics.rs", 4, "no-unwrap-in-lib"),
        // The escape hatches are themselves checked.
        ("crates/resultful/src/suppressed.rs", 3, "bad-suppression"),
        (
            "crates/resultful/src/suppressed.rs",
            8,
            "unused-suppression",
        ),
        ("crates/resultful/src/suppressed.rs", 13, "bad-suppression"),
        // Ad-hoc threads outside the sanctioned runner file.
        ("crates/resultful/src/threads.rs", 4, "thread-discipline"),
        ("crates/resultful/src/threads.rs", 8, "thread-discipline"),
        // Unsafe without SAFETY, and both blocks unregistered (the
        // inventory holds only a stale hash for line 9).
        ("crates/resultful/src/unsafe_code.rs", 4, "unsafe-audit"),
        ("crates/resultful/src/unsafe_code.rs", 4, "unsafe-inventory"),
        ("crates/resultful/src/unsafe_code.rs", 9, "unsafe-inventory"),
        // CPU-feature tokens outside a sanctioned dispatch module (the
        // fixture config sanctions none).
        ("crates/resultful/src/vectors.rs", 4, "arch-confinement"),
        ("crates/resultful/src/vectors.rs", 7, "arch-confinement"),
        ("crates/resultful/src/vectors.rs", 10, "arch-confinement"),
        // Allowlist hygiene: the stale entry and the malformed line.
        ("lint/panic_allowlist.txt", 3, "unused-allowlist"),
        ("lint/panic_allowlist.txt", 4, "unused-allowlist"),
        // Inventory hygiene: the stale entry itself.
        ("lint/unsafe_inventory.json", 9, "unsafe-inventory"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r))
    .collect();
    assert_eq!(
        got, expected,
        "diagnostic set diverged from the fixture contract"
    );
}

#[test]
fn kind_exemptions_hold() {
    // The corpus contains `src/bin/tool.rs` with an `.expect(` and
    // `runner.rs` (spawn-allowed) with `thread::spawn`; neither may
    // produce a diagnostic.
    let report = run(&fixture_config()).expect("fixture corpus is readable");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.file.contains("tool.rs") || d.file.contains("runner.rs")),
        "binary/sanctioned-file exemptions regressed"
    );
}

#[test]
fn regenerated_inventory_clears_drift() {
    // `--write-inventory` closes the loop: rendering the discovered
    // blocks and checking against that inventory leaves only the
    // missing-SAFETY finding.
    let report = run(&fixture_config()).expect("fixture corpus is readable");
    let rendered = render_inventory(&report.unsafe_blocks);
    let entries = parse_inventory(&rendered).expect("rendered inventory parses");
    let diags = check_inventory(
        &report.unsafe_blocks,
        &entries,
        "lint/unsafe_inventory.json",
    );
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["unsafe-audit"], "drift survived regeneration");
}
