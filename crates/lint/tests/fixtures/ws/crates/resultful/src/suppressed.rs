//! Fixture: the escape hatches are themselves checked.

// ccd-lint: allow(imaginary-rule) reason="unknown rules are rejected"
pub fn fine() -> u64 {
    7
}

// ccd-lint: allow(no-wallclock) reason="nothing here reads the clock"
pub fn also_fine() -> u64 {
    11
}

// ccd-lint: allow(no-wallclock)
pub fn tail() -> u64 {
    13
}
