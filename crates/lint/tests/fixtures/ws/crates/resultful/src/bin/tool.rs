//! Fixture: binaries may panic on startup errors.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let first = args.first().expect("argv[0] exists");
    println!("{first}");
}
