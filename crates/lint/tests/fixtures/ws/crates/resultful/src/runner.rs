//! Fixture: the sanctioned runner file may spawn threads.

pub fn run() -> i32 {
    let handle = std::thread::spawn(|| 1);
    handle.join().unwrap_or(0)
}
