//! Fixture: ad-hoc threads are flagged outside sanctioned runners.

pub fn fan_out() {
    std::thread::spawn(|| {});
}

pub fn scoped() {
    std::thread::scope(|_| {});
}
