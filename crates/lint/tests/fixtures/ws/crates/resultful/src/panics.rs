//! Fixture: panic surface in library code.

pub fn first(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}

pub fn named(values: &[u64]) -> u64 {
    values.first().copied().expect("fixture: must be non-empty")
}

pub fn suppressed(values: &[u64]) -> u64 {
    // ccd-lint: allow(no-unwrap-in-lib) reason="fixture exercises the waiver path"
    values.first().copied().unwrap()
}
