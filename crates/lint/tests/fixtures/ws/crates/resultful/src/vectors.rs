//! Fixture: CPU-feature tokens are flagged outside the dispatch modules.

#[allow(unused_imports)]
use std::arch::x86_64::__m256i;

pub fn wide_probe_available() -> bool {
    is_x86_feature_detected!("avx2")
}

#[cfg(target_feature = "sse2")]
pub fn compiled_with_sse2() {}
