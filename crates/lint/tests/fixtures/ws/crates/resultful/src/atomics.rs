//! Fixture: atomic orderings need justification comments.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}

pub fn read(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed suffices — the value is advisory only.
    counter.load(Ordering::Relaxed)
}

pub fn smallest() -> std::cmp::Ordering {
    std::cmp::Ordering::Less
}
