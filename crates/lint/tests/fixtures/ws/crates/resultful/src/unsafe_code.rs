//! Fixture: unsafe blocks need SAFETY comments and inventory entries.

pub fn read_first(values: &[u64]) -> u64 {
    unsafe { *values.as_ptr() }
}

pub fn read_last(values: &[u64]) -> u64 {
    // SAFETY: fixture — the caller guarantees `values` is non-empty.
    unsafe { *values.as_ptr().add(values.len() - 1) }
}
