//! Fixture: determinism rules fire in result-bearing code.

pub fn tallies() -> usize {
    let scores: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    scores.len()
}

pub fn spin_for_a_bit() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn stamp_secs() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hashmap_and_clocks_are_fine_in_tests() {
        let _ = std::collections::HashSet::<u32>::new();
        let _ = std::time::Instant::now();
    }
}
