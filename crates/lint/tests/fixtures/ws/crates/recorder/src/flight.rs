//! Fixture: an observability-style recorder crate — events must carry
//! virtual time, never host time, and its ring must stay lock-free.

pub fn stamp_event() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn wall_epoch() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}

pub struct LockedRing {
    pub events: std::sync::Mutex<Vec<u64>>,
}
