//! Fixture: hot-path crates must stay lock-free.

pub struct Guarded {
    pub inner: std::sync::Mutex<u64>,
    pub shared: std::sync::RwLock<u64>,
    pub cell: std::cell::RefCell<u64>,
}
