//! Minimal JSON support for the analyzer: a recursive-descent parser for
//! reading `lint/unsafe_inventory.json` and a string escaper for emitting
//! machine-readable diagnostics.  Hand-rolled because the workspace builds
//! offline with no third-party dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.  Objects use a `BTreeMap` so iteration (and thus
/// re-serialization) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the inventory only uses line
    /// numbers, well within exact range).
    Number(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after document"));
    }
    Ok(value)
}

fn err(offset: usize, what: impl Into<String>) -> ParseError {
    ParseError {
        offset,
        what: what.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| err(start, format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs never appear in our documents;
                        // map them to the replacement char rather than fail.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "bad utf-8 in string"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// Escapes `s` for inclusion in a JSON string literal (no surrounding
/// quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_inventory_shape() {
        let doc = r#"{
  "entries": [
    { "file": "crates/core/src/table.rs", "hash": "fnv64:00ff", "line": 12, "summary": "a \"quoted\" note" }
  ]
}"#;
        let v = parse(doc).unwrap();
        let entries = v.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("file").unwrap().as_str(),
            Some("crates/core/src/table.rs")
        );
        assert_eq!(entries[0].get("line").unwrap().as_u64(), Some(12));
        assert_eq!(
            entries[0].get("summary").unwrap().as_str(),
            Some("a \"quoted\" note")
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("-3.5").unwrap(), Value::Number(-3.5));
    }
}
