//! `ccd-lint` — the workspace-invariant static analyzer for the Cuckoo
//! Directory reproduction.
//!
//! Every result this repository produces rests on invariants the compiler
//! cannot see: bit-identical serial ≡ parallel accounting, lock-free
//! shard-per-worker hot paths, and deterministic iteration everywhere stats
//! merge (ARCHITECTURE.md contracts #1–#7).  The runtime property tests
//! catch violations *after* they execute; this crate catches the patterns
//! that cause them at review time, before a nondeterministic `HashMap`
//! iteration or an ad-hoc `thread::spawn` ever runs.
//!
//! The analyzer is dependency-free by design (the workspace builds
//! offline): a hand-rolled token scanner strips comments and literals and
//! a set of named, path-scoped rules walks the code view.  See
//! [`rules`] for the rule table, [`inventory`] for the unsafe audit, and
//! ARCHITECTURE.md "Contract #7" for the workflow.
//!
//! # Quickstart
//!
//! ```text
//! cargo run -p ccd-lint -- --workspace            # human diagnostics, exit 1 on findings
//! cargo run -p ccd-lint -- --workspace --json     # machine-readable output
//! cargo run -p ccd-lint -- --workspace --write-inventory   # regenerate the unsafe inventory
//! ```
//!
//! Single sites can be waived in source with a justified suppression:
//!
//! ```text
//! // ccd-lint: allow(no-default-hasher) reason="membership-only set; iteration order never observed"
//! ```
//!
//! Panic-surface waivers live in `lint/panic_allowlist.txt` as
//! `file | line-substring | reason` entries.  Both escape hatches are
//! themselves checked: malformed or unused waivers are diagnostics.

pub mod inventory;
pub mod json;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use inventory::{find_unsafe_blocks, render_inventory, UnsafeBlock};
pub use rules::{Config, Diagnostic, RULE_NAMES};
pub use scanner::{scan_source, FileKind, ScannedFile};
pub use workspace::{render_json, run, LintError, Report};
