//! The `ccd-lint` command-line gate.
//!
//! ```text
//! cargo run -p ccd-lint -- --workspace [--json] [--rule NAME]...
//! cargo run -p ccd-lint -- --workspace --write-inventory
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O error.

use ccd_lint::{render_inventory, render_json, rules::Config, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    write_inventory: bool,
    rule_filter: Vec<String>,
}

fn usage() -> &'static str {
    "usage: ccd-lint --workspace [--root PATH] [--json] [--rule NAME]... [--write-inventory]\n\
     \n\
     Scans the workspace for determinism, concurrency-discipline, unsafe-audit\n\
     and panic-surface violations (ARCHITECTURE.md contract #7).\n\
     \n\
       --workspace         scan the enclosing cargo workspace (required)\n\
       --root PATH         workspace root (default: walk up from the cwd)\n\
       --json              emit machine-readable diagnostics\n\
       --rule NAME         only report this rule (repeatable)\n\
       --write-inventory   regenerate lint/unsafe_inventory.json and exit\n"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        write_inventory: false,
        rule_filter: Vec::new(),
    };
    let mut workspace_flag = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace_flag = true,
            "--json" => opts.json = true,
            "--write-inventory" => opts.write_inventory = true,
            "--root" => {
                let path = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--rule" => {
                let name = args.next().ok_or("--rule requires a rule name")?;
                if !ccd_lint::RULE_NAMES.contains(&name.as_str()) {
                    return Err(format!(
                        "unknown rule `{name}` (known: {})",
                        ccd_lint::RULE_NAMES.join(", ")
                    ));
                }
                opts.rule_filter.push(name);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !workspace_flag {
        return Err("`--workspace` is required (the analyzer has exactly one scope)".to_string());
    }
    Ok(opts)
}

/// Walks up from the cwd to the first directory whose `Cargo.toml` declares
/// a `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(why) => {
            if why.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("ccd-lint: {why}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let Some(root) = opts.root.clone().or_else(find_root) else {
        eprintln!("ccd-lint: no workspace root found above the current directory");
        return ExitCode::from(2);
    };
    let config = Config::workspace(root);
    let mut report = match workspace::run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("ccd-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.write_inventory {
        let path = config.root.join(&config.unsafe_inventory);
        if let Some(parent) = path.parent() {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("ccd-lint: cannot create `{}`: {err}", parent.display());
                return ExitCode::from(2);
            }
        }
        let body = render_inventory(&report.unsafe_blocks);
        if let Err(err) = std::fs::write(&path, body) {
            eprintln!("ccd-lint: cannot write `{}`: {err}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "ccd-lint: wrote {} entries to {}",
            report.unsafe_blocks.len(),
            config.unsafe_inventory
        );
        // The inventory was just regenerated; drift findings against the
        // old file no longer apply.
        report.diagnostics.retain(|d| d.rule != "unsafe-inventory");
    }

    if !opts.rule_filter.is_empty() {
        report
            .diagnostics
            .retain(|d| opts.rule_filter.iter().any(|r| r == d.rule));
    }

    if opts.json {
        print!("{}", render_json(&report));
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
        }
        println!(
            "ccd-lint: {} file(s) scanned, {} unsafe block(s), {} diagnostic(s)",
            report.files_scanned,
            report.unsafe_blocks.len(),
            report.diagnostics.len()
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
