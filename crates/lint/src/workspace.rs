//! Workspace walking and rule orchestration: wires the scanner, the token
//! rules, the suppression/allowlist escape hatches, and the unsafe
//! inventory into one deterministic run.

use crate::inventory::{
    check_inventory, find_unsafe_blocks, parse_inventory, InventoryEntry, UnsafeBlock,
};
use crate::rules::{
    check_tokens, collect_suppressions, parse_allowlist, AllowlistEntry, Config, Diagnostic,
    Suppression,
};
use crate::scanner::{scan_source, ScannedFile};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// A failure to run the analyzer at all (I/O, bad inventory JSON…);
/// distinct from diagnostics, which are findings about the code.
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "cannot read `{}`: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// The outcome of one analyzer run.
#[derive(Debug)]
pub struct Report {
    /// Every finding, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every `unsafe` occurrence discovered (for `--write-inventory`).
    pub unsafe_blocks: Vec<UnsafeBlock>,
}

impl Report {
    /// `true` when no rule fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs the full rule set over the workspace described by `config`.
///
/// # Errors
///
/// Returns [`LintError`] when source files cannot be read; findings about
/// the code itself are diagnostics in the returned [`Report`], not errors.
pub fn run(config: &Config) -> Result<Report, LintError> {
    let files = collect_files(config)?;
    let mut diagnostics = Vec::new();
    let mut unsafe_blocks: Vec<UnsafeBlock> = Vec::new();
    let mut suppressions: Vec<(String, Suppression)> = Vec::new();

    // The allowlist file is optional until the first waiver is needed.
    let allowlist_path = config.root.join(&config.panic_allowlist);
    let mut allowlist: Vec<AllowlistEntry> = Vec::new();
    if let Ok(body) = fs::read_to_string(&allowlist_path) {
        let (entries, bad) = parse_allowlist(&body, &config.panic_allowlist);
        allowlist = entries;
        diagnostics.extend(bad);
    }

    for (rel, source) in &files {
        let scanned = scan_source(rel, source);
        let (mut sups, bad) = collect_suppressions(&scanned);
        diagnostics.extend(bad);
        let mut candidates = check_tokens(&scanned, config);
        candidates.retain(|diag| {
            let mut waived = false;
            for sup in sups.iter_mut() {
                if sup.rule == diag.rule && sup.target_line == diag.line {
                    sup.used = true;
                    waived = true;
                }
            }
            !waived && !waived_by_allowlist(diag, &scanned, &mut allowlist)
        });
        diagnostics.extend(candidates);
        unsafe_blocks.extend(find_unsafe_blocks(&scanned));
        // Suppressions stay parked until the unsafe rules have also run
        // (they may waive those); unused ones are reported at the end.
        suppressions.extend(sups.into_iter().map(|s| (scanned.path.clone(), s)));
    }

    // Unsafe audit + inventory drift.
    let inventory_path = config.root.join(&config.unsafe_inventory);
    let inventory: Vec<InventoryEntry> = match fs::read_to_string(&inventory_path) {
        Ok(body) => match parse_inventory(&body) {
            Ok(entries) => entries,
            Err(why) => {
                diagnostics.push(Diagnostic {
                    file: config.unsafe_inventory.clone(),
                    line: 1,
                    rule: "unsafe-inventory",
                    message: format!("inventory file is unreadable: {why}"),
                });
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };
    let mut unsafe_diags = check_inventory(&unsafe_blocks, &inventory, &config.unsafe_inventory);
    unsafe_diags.retain(|diag| {
        let mut waived = false;
        for (file, sup) in suppressions.iter_mut() {
            if *file == diag.file && sup.rule == diag.rule && sup.target_line == diag.line {
                sup.used = true;
                waived = true;
            }
        }
        !waived
    });
    diagnostics.extend(unsafe_diags);

    // Escape hatches must stay justified: unused ones are findings too.
    for (file, sup) in &suppressions {
        if !sup.used {
            diagnostics.push(Diagnostic {
                file: file.clone(),
                line: sup.comment_line,
                rule: "unused-suppression",
                message: format!(
                    "suppression for `{}` waived nothing — remove it (reason given: \"{}\")",
                    sup.rule, sup.reason
                ),
            });
        }
    }
    for entry in &allowlist {
        if entry.hits == 0 {
            diagnostics.push(Diagnostic {
                file: config.panic_allowlist.clone(),
                line: entry.source_line,
                rule: "unused-allowlist",
                message: format!(
                    "allowlist entry for {} (`{}`) matched nothing — remove it",
                    entry.file, entry.pattern
                ),
            });
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned: files.len(),
        unsafe_blocks,
    })
}

fn waived_by_allowlist(
    diag: &Diagnostic,
    scanned: &ScannedFile,
    allowlist: &mut [AllowlistEntry],
) -> bool {
    if diag.rule != "no-unwrap-in-lib" {
        return false;
    }
    let raw = scanned
        .lines
        .get(diag.line - 1)
        .map_or("", |line| line.raw.as_str());
    let mut waived = false;
    for entry in allowlist.iter_mut() {
        if entry.file == diag.file && raw.contains(&entry.pattern) {
            entry.hits += 1;
            waived = true;
        }
    }
    waived
}

/// Walks the configured scan roots, returning (repo-relative path, source)
/// pairs sorted by path so every run is deterministic.
fn collect_files(config: &Config) -> Result<Vec<(String, String)>, LintError> {
    let mut paths = Vec::new();
    for root in &config.scan_roots {
        let dir = config.root.join(root);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    let mut out = Vec::new();
    for path in paths {
        let rel = relative(&config.root, &path);
        if config
            .excluded
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        let source = fs::read_to_string(&path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        out.push((rel, source));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        children.push(entry.path());
    }
    children.sort();
    for child in children {
        if child.is_dir() {
            let name = child.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&child, out)?;
        } else if child.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the report as JSON (machine-readable diagnostics).
#[must_use]
pub fn render_json(report: &Report) -> String {
    use crate::json::escape;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"diagnostic_count\": {},\n",
        report.files_scanned,
        report.diagnostics.len()
    ));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}{}\n",
            escape(&d.file),
            d.line,
            escape(d.rule),
            escape(&d.message),
            if i + 1 == report.diagnostics.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
