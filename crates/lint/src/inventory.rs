//! The unsafe audit: `// SAFETY:` comment enforcement and the checked-in
//! inventory of every `unsafe` block in the workspace.
//!
//! Each `unsafe` occurrence (block, fn, or impl) is identified by its file
//! plus a content hash — FNV-1a 64 over the comment-stripped,
//! literal-blanked, whitespace-collapsed block text.  The hash is therefore
//! stable across reformatting and comment edits but changes whenever the
//! unsafe *code* changes, so `lint/unsafe_inventory.json` turns every new
//! or modified unsafe block into an explicit, reviewable diff: the analyzer
//! fails until the inventory is regenerated (`--write-inventory`) and the
//! regenerated file is committed.

use crate::json;
use crate::rules::{comment_above_or_beside, Diagnostic};
use crate::scanner::{FileKind, ScannedFile};

/// One `unsafe` occurrence discovered in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeBlock {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// `fnv64:`-prefixed content hash (hex).
    pub hash: String,
    /// First line of the adjacent `SAFETY:` comment, for human readers.
    pub summary: String,
    /// Whether a `// SAFETY:` comment was found beside/above the keyword.
    pub has_safety_comment: bool,
}

/// Finds every `unsafe` occurrence in non-test code, hashing each block.
#[must_use]
pub fn find_unsafe_blocks(file: &ScannedFile) -> Vec<UnsafeBlock> {
    let mut blocks = Vec::new();
    if file.kind == FileKind::Test {
        return blocks;
    }
    // Resume scanning after the previous block so nested `unsafe` inside a
    // captured block is not double-counted.
    let mut resume = (0usize, 0usize);
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.is_test || !line.has_code() {
            continue;
        }
        let mut col = if idx == resume.0 { resume.1 } else { 0 };
        while let Some(at) = find_unsafe_token(&line.code, col) {
            if idx < resume.0 || (idx == resume.0 && at < resume.1) {
                col = at + "unsafe".len();
                continue;
            }
            let (body, end) = capture_block(file, idx, at);
            let summary = safety_summary(file, idx);
            blocks.push(UnsafeBlock {
                file: file.path.clone(),
                line: idx + 1,
                hash: fnv64(&body),
                summary: summary.clone().unwrap_or_else(|| {
                    let mut head: String = body.chars().take(60).collect();
                    if body.chars().count() > 60 {
                        head.push('…');
                    }
                    head
                }),
                has_safety_comment: summary.is_some(),
            });
            resume = end;
            col = if idx == end.0 { end.1 } else { line.code.len() };
        }
    }
    blocks
}

fn find_unsafe_token(code: &str, from: usize) -> Option<usize> {
    let mut search = from;
    while let Some(rel) = code.get(search..).and_then(|s| s.find("unsafe")) {
        let at = search + rel;
        let ident = |c: char| c.is_alphanumeric() || c == '_';
        let before_ok = at == 0 || !code[..at].chars().next_back().is_some_and(ident);
        let after_ok = !code[at + 6..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return Some(at);
        }
        search = at + 6;
    }
    None
}

/// Captures the block text from the `unsafe` keyword through its matching
/// `}` (or the terminating `;` of a brace-less item), collapsing
/// whitespace.  Returns the text and the (line index, column) just past
/// the block.
fn capture_block(
    file: &ScannedFile,
    start_line: usize,
    start_col: usize,
) -> (String, (usize, usize)) {
    let mut text = String::new();
    let mut depth = 0usize;
    let mut opened = false;
    for idx in start_line..file.lines.len() {
        let code = &file.lines[idx].code;
        let begin = if idx == start_line { start_col } else { 0 };
        for (col, c) in code.char_indices().skip_while(|(col, _)| *col < begin) {
            text.push(c);
            match c {
                '{' => {
                    opened = true;
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return (collapse_ws(&text), (idx, col + 1));
                    }
                }
                ';' if !opened => {
                    return (collapse_ws(&text), (idx, col + 1));
                }
                _ => {}
            }
        }
        text.push(' ');
    }
    let last = file.lines.len().saturating_sub(1);
    let end_col = file.lines.get(last).map_or(0, |l| l.code.len());
    (collapse_ws(&text), (last, end_col))
}

fn collapse_ws(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The first line of the `SAFETY:` comment adjacent to line `idx`, if any.
fn safety_summary(file: &ScannedFile, idx: usize) -> Option<String> {
    if !comment_above_or_beside(&file.lines, idx, "safety:") {
        return None;
    }
    // Walk up to the first line of the contiguous comment run that
    // contains the marker, then report the text after `SAFETY:`.
    let mut j = idx;
    loop {
        let line = &file.lines[j];
        if let Some(at) = line.comment.find("SAFETY:") {
            let text = line.comment[at + "SAFETY:".len()..].trim();
            return Some(text.to_string());
        }
        if j == 0 {
            return Some(String::new());
        }
        let prev = &file.lines[j - 1];
        let code = prev.code.trim();
        if !(code.is_empty() || code.starts_with("#[")) && j - 1 != idx {
            return Some(String::new());
        }
        j -= 1;
    }
}

/// FNV-1a 64 over `text`, rendered as `fnv64:<16 hex digits>`.
#[must_use]
pub fn fnv64(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv64:{hash:016x}")
}

/// A deserialized inventory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InventoryEntry {
    /// Repo-relative path.
    pub file: String,
    /// Line recorded at generation time (informational; drift in line
    /// number alone is caught by the CI regeneration diff, not here).
    pub line: usize,
    /// `fnv64:`-prefixed content hash.
    pub hash: String,
    /// Human summary captured from the `SAFETY:` comment.
    pub summary: String,
}

/// Parses `lint/unsafe_inventory.json`.
///
/// # Errors
///
/// Returns a message when the document is not valid JSON or lacks the
/// expected `{ "entries": [ { file, line, hash, summary } ] }` shape.
pub fn parse_inventory(body: &str) -> Result<Vec<InventoryEntry>, String> {
    let doc = json::parse(body).map_err(|e| e.to_string())?;
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or("inventory must be an object with an `entries` array")?;
    let mut out = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let field = |name: &str| {
            entry
                .get(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or(format!("entry {i}: missing string field `{name}`"))
        };
        out.push(InventoryEntry {
            file: field("file")?,
            line: entry
                .get("line")
                .and_then(json::Value::as_u64)
                .ok_or(format!("entry {i}: missing numeric field `line`"))?
                as usize,
            hash: field("hash")?,
            summary: field("summary")?,
        });
    }
    Ok(out)
}

/// Renders the inventory JSON for `blocks`, sorted by (file, line) so the
/// output is deterministic and diffs are minimal.
#[must_use]
pub fn render_inventory(blocks: &[UnsafeBlock]) -> String {
    let mut sorted: Vec<&UnsafeBlock> = blocks.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo run -p ccd-lint -- --workspace --write-inventory\",\n",
    );
    out.push_str("  \"entries\": [\n");
    for (i, b) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"line\": {}, \"hash\": \"{}\", \"summary\": \"{}\" }}{}\n",
            json::escape(&b.file),
            b.line,
            json::escape(&b.hash),
            json::escape(&b.summary),
            if i + 1 == sorted.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Diffs discovered blocks against the checked-in inventory: unregistered
/// blocks and stale entries both fail the gate.
#[must_use]
pub fn check_inventory(
    blocks: &[UnsafeBlock],
    inventory: &[InventoryEntry],
    inventory_path: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for block in blocks {
        if !block.has_safety_comment {
            diags.push(Diagnostic {
                file: block.file.clone(),
                line: block.line,
                rule: "unsafe-audit",
                message: "`unsafe` without an adjacent `// SAFETY:` comment — state the proof \
                          obligation being discharged"
                    .to_string(),
            });
        }
        if !inventory
            .iter()
            .any(|e| e.file == block.file && e.hash == block.hash)
        {
            diags.push(Diagnostic {
                file: block.file.clone(),
                line: block.line,
                rule: "unsafe-inventory",
                message: format!(
                    "unsafe block ({}) is not registered in {inventory_path} — run \
                     `cargo run -p ccd-lint -- --workspace --write-inventory` and commit the \
                     reviewed diff",
                    block.hash
                ),
            });
        }
    }
    for entry in inventory {
        if !blocks
            .iter()
            .any(|b| b.file == entry.file && b.hash == entry.hash)
        {
            diags.push(Diagnostic {
                file: inventory_path.to_string(),
                line: entry.line,
                rule: "unsafe-inventory",
                message: format!(
                    "stale inventory entry for {}:{} ({}) — the block no longer exists; \
                     regenerate the inventory",
                    entry.file, entry.line, entry.hash
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn finds_and_hashes_a_safety_commented_block() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        let blocks = find_unsafe_blocks(&file);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].line, 3);
        assert!(blocks[0].has_safety_comment);
        assert_eq!(blocks[0].summary, "caller guarantees p is valid.");
        assert_eq!(blocks[0].hash, fnv64("unsafe { *p }"));
    }

    #[test]
    fn missing_safety_comment_is_detected() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        let blocks = find_unsafe_blocks(&file);
        assert_eq!(blocks.len(), 1);
        assert!(!blocks[0].has_safety_comment);
        let diags = check_inventory(&blocks, &[], "lint/unsafe_inventory.json");
        assert!(diags.iter().any(|d| d.rule == "unsafe-audit"));
        assert!(diags.iter().any(|d| d.rule == "unsafe-inventory"));
    }

    #[test]
    fn attribute_between_comment_and_block_is_tolerated() {
        let src = "// SAFETY: hint instruction, never faults.\n#[cfg(target_arch = \"x86_64\")]\nunsafe {\n    intrinsic();\n}\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        let blocks = find_unsafe_blocks(&file);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].has_safety_comment);
    }

    #[test]
    fn hash_ignores_comments_and_whitespace_but_not_code() {
        let a = scan_source("x.rs", "unsafe { foo(  1,2 ) /* note */ }\n");
        let b = scan_source("x.rs", "unsafe {\n    foo(1, 2)\n}\n");
        let c = scan_source("x.rs", "unsafe { foo(1, 3) }\n");
        let [ha, hb, hc] =
            [&a, &b, &c].map(|f| find_unsafe_blocks(f).into_iter().next().unwrap().hash);
        // `foo(  1,2 )` vs `foo(1, 2)`: whitespace collapses but commas
        // bind differently — compare like with like.
        assert_eq!(hb, fnv64("unsafe { foo(1, 2) }"));
        assert_ne!(hb, hc);
        assert_ne!(ha, hc);
    }

    #[test]
    fn multiline_and_nested_blocks_capture_once() {
        let src = "fn f() {\n    unsafe {\n        let x = unsafe { inner() };\n        outer(x);\n    }\n}\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        let blocks = find_unsafe_blocks(&file);
        assert_eq!(blocks.len(), 1, "nested unsafe is part of the outer block");
        assert_eq!(blocks[0].line, 2);
    }

    #[test]
    fn unsafe_impl_without_braces_terminates_at_semicolon() {
        let src = "unsafe impl Send for Foo {}\nunsafe trait Marker;\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        let blocks = find_unsafe_blocks(&file);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn inventory_round_trip_and_drift() {
        let src = "// SAFETY: fine.\nunsafe { a() }\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        let blocks = find_unsafe_blocks(&file);
        let rendered = render_inventory(&blocks);
        let entries = parse_inventory(&rendered).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(check_inventory(&blocks, &entries, "inv.json").is_empty());
        // Stale entry: inventory names a block that is gone.
        let stale = check_inventory(&[], &entries, "inv.json");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "unsafe-inventory");
        assert_eq!(stale[0].file, "inv.json");
    }

    #[test]
    fn test_code_unsafe_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n";
        let file = scan_source("crates/x/src/lib.rs", src);
        assert!(find_unsafe_blocks(&file).is_empty());
    }
}
