//! The rule set: named, configurable invariants checked over scanned files.
//!
//! Each rule guards one of the determinism/concurrency contracts in
//! ARCHITECTURE.md (contract #7 documents the full table):
//!
//! | rule                | invariant                                            |
//! |---------------------|------------------------------------------------------|
//! | `no-default-hasher` | no `HashMap`/`HashSet` in result-bearing code        |
//! | `no-wallclock`      | no `Instant::now`/`SystemTime` outside bench bins    |
//! | `thread-discipline` | `thread::spawn`/`scope` only in sanctioned runners   |
//! | `lock-discipline`   | no `Mutex`/`RwLock`/`RefCell` in hot-path crates     |
//! | `ordering-comment`  | atomic `Ordering::*` carries a `// ordering:` note   |
//! | `unsafe-audit`      | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `unsafe-inventory`  | every `unsafe` is registered in the inventory file   |
//! | `no-unwrap-in-lib`  | no `.unwrap()`/`.expect(` in non-test library code   |
//! | `arch-confinement`  | `std::arch` intrinsics only in the dispatch modules  |
//!
//! Plus three meta rules that keep the escape hatches honest:
//! `bad-suppression` (malformed allow comment), `unused-suppression`
//! (allow comment that suppressed nothing), and `unused-allowlist`
//! (panic-allowlist entry that matched nothing).
//!
//! Any rule can be waived at a single site with an in-source suppression
//! comment, which must name the rule and a reason:
//!
//! ```text
//! // ccd-lint: allow(no-default-hasher) reason="membership-only set"
//! let seen: HashSet<u64> = HashSet::new();
//! ```
//!
//! Test code (`#[cfg(test)]`/`#[test]` items, `tests/` trees) is exempt
//! from every rule.

use crate::scanner::{FileKind, Line, ScannedFile};
use std::path::PathBuf;

/// The names of every rule the analyzer can emit, in report order.
pub const RULE_NAMES: &[&str] = &[
    "no-default-hasher",
    "no-wallclock",
    "thread-discipline",
    "lock-discipline",
    "ordering-comment",
    "unsafe-audit",
    "unsafe-inventory",
    "no-unwrap-in-lib",
    "arch-confinement",
    "bad-suppression",
    "unused-suppression",
    "unused-allowlist",
];

/// One finding: a rule violation (or meta-rule report) at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where the rules look and which crates each invariant covers.  Paths are
/// repo-relative, `/`-separated prefixes (a full file path is a valid
/// prefix of itself).
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (absolute); everything else is relative to it.
    pub root: PathBuf,
    /// Directories walked for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Path prefixes never scanned (vendored code, fixture corpora).
    pub excluded: Vec<String>,
    /// Crates whose outputs feed results: `no-default-hasher` scope.
    pub result_bearing: Vec<String>,
    /// Prefixes where wall-clock time is legitimate (bench mains).
    pub wallclock_allowed: Vec<String>,
    /// Files allowed to spawn threads (the deterministic runners).
    pub spawn_allowed: Vec<String>,
    /// Hot-path crates that must stay lock-free: `lock-discipline` scope.
    pub lock_free: Vec<String>,
    /// Files whose atomic `Ordering::*` uses need justification comments.
    pub ordering_commented: Vec<String>,
    /// Files allowed to name CPU features (`std::arch`, runtime feature
    /// detection, `target_feature`): the vector dispatch modules.
    pub arch_allowed: Vec<String>,
    /// The panic-surface allowlist file, relative to `root`.
    pub panic_allowlist: String,
    /// The unsafe inventory file, relative to `root`.
    pub unsafe_inventory: String,
}

impl Config {
    /// The workspace policy for this repository (the config CI enforces).
    #[must_use]
    pub fn workspace(root: PathBuf) -> Self {
        let owned = |items: &[&str]| items.iter().map(|s| (*s).to_string()).collect();
        Config {
            root,
            scan_roots: owned(&["crates", "src", "examples"]),
            // The fixture corpus exists to violate the rules; vendored
            // criterion emulates an external dependency.
            excluded: owned(&["crates/lint/tests/fixtures", "vendor", "target"]),
            result_bearing: owned(&[
                "crates/common",
                "crates/hashers",
                "crates/sharers",
                "crates/directory",
                "crates/core",
                "crates/cache",
                "crates/coherence",
                "crates/workloads",
                "crates/obs",
                "crates/service",
                "crates/energy",
                "crates/bench",
                "crates/lint",
                "src",
            ]),
            wallclock_allowed: owned(&["crates/bench/src/bin"]),
            spawn_allowed: owned(&[
                "crates/coherence/src/engine/runner.rs",
                "crates/service/src/supervisor.rs",
            ]),
            lock_free: owned(&[
                "crates/core",
                "crates/directory",
                "crates/sharers",
                "crates/hashers",
                "crates/cache",
                // The flight recorder sits on the request hot path: a lock
                // (or interior mutability) would both cost and perturb.
                "crates/obs",
            ]),
            ordering_commented: owned(&[
                "crates/common/src/channel.rs",
                "crates/coherence/src/engine/runner.rs",
            ]),
            arch_allowed: owned(&["crates/common/src/prefetch.rs", "crates/core/src/simd.rs"]),
            panic_allowlist: "lint/panic_allowlist.txt".to_string(),
            unsafe_inventory: "lint/unsafe_inventory.json".to_string(),
        }
    }

    fn under(&self, path: &str, prefixes: &[String]) -> bool {
        prefixes
            .iter()
            .any(|p| path == p || path.starts_with(&format!("{p}/")))
    }
}

/// A parsed `// ccd-lint: allow(rule) reason="…"` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on (1-based).
    pub comment_line: usize,
    /// Line whose diagnostics it waives (the next code-bearing line).
    pub target_line: usize,
    /// The rule being waived.
    pub rule: String,
    /// The stated reason (never empty for a well-formed suppression).
    pub reason: String,
    /// Set once a diagnostic was actually waived.
    pub used: bool,
}

/// One entry of the panic-surface allowlist file.
#[derive(Debug, Clone)]
pub struct AllowlistEntry {
    /// 1-based line in the allowlist file (for unused-entry reports).
    pub source_line: usize,
    /// Repo-relative file the waiver applies to.
    pub file: String,
    /// Substring of the raw source line being waived.
    pub pattern: String,
    /// Stated reason (why the site is infallible or must panic).
    pub reason: String,
    /// Number of sites this entry waived.
    pub hits: usize,
}

/// Parses the allowlist file body (`file | line-substring | reason`, one
/// per line, `#` comments).  Malformed lines become `unused-allowlist`
/// diagnostics immediately (they can never match anything).
#[must_use]
pub fn parse_allowlist(body: &str, path: &str) -> (Vec<AllowlistEntry>, Vec<Diagnostic>) {
    let mut entries = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: idx + 1,
                rule: "unused-allowlist",
                message: "malformed allowlist entry; expected `file | line-substring | reason`"
                    .to_string(),
            });
            continue;
        }
        entries.push(AllowlistEntry {
            source_line: idx + 1,
            file: parts[0].to_string(),
            pattern: parts[1].to_string(),
            reason: parts[2].to_string(),
            hits: 0,
        });
    }
    (entries, diags)
}

/// Extracts suppression comments from a scanned file, resolving each to
/// the code line it targets.  Malformed comments come back as
/// `bad-suppression` diagnostics.
#[must_use]
pub fn collect_suppressions(file: &ScannedFile) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut found = Vec::new();
    let mut diags = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        // Anchored at the start of the comment, so prose and doc-comment
        // *examples* of suppressions (whose text starts with `/`, `!` or
        // other words) never count as live waivers.
        let trimmed = line.comment.trim_start();
        if !trimmed.starts_with("ccd-lint:") {
            continue;
        }
        let lineno = idx + 1;
        match parse_suppression(trimmed) {
            Ok((rule, reason)) => {
                let target = if line.has_code() {
                    lineno
                } else {
                    file.lines
                        .iter()
                        .enumerate()
                        .skip(idx + 1)
                        .find(|(_, l)| l.has_code())
                        .map_or(lineno, |(j, _)| j + 1)
                };
                found.push(Suppression {
                    comment_line: lineno,
                    target_line: target,
                    rule,
                    reason,
                    used: false,
                });
            }
            Err(why) => diags.push(Diagnostic {
                file: file.path.clone(),
                line: lineno,
                rule: "bad-suppression",
                message: why,
            }),
        }
    }
    (found, diags)
}

/// Parses `ccd-lint: allow(rule) reason="…"` out of a comment tail.
fn parse_suppression(comment: &str) -> Result<(String, String), String> {
    let body = comment.trim_start_matches("ccd-lint:").trim();
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err("expected `ccd-lint: allow(rule) reason=\"…\"`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unterminated `allow(` — missing `)`".to_string());
    };
    let rule = rest[..close].trim().to_string();
    if !RULE_NAMES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown rule `{rule}` (known: {})",
            RULE_NAMES.join(", ")
        ));
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("reason=\"") else {
        return Err("suppression must state a reason: `reason=\"…\"`".to_string());
    };
    let Some(end) = reason.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = reason[..end].trim();
    if reason.is_empty() {
        return Err("suppression reason must not be empty".to_string());
    }
    Ok((rule, reason.to_string()))
}

/// Finds `needle` in `code` at an identifier boundary, starting at `from`.
/// Returns the byte offset of the match.
fn find_token(code: &str, needle: &str, from: usize) -> Option<usize> {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let lead_is_ident = needle.chars().next().is_some_and(ident);
    let tail_is_ident = needle.chars().next_back().is_some_and(ident);
    let mut search = from;
    while let Some(rel) = code.get(search..).and_then(|s| s.find(needle)) {
        let at = search + rel;
        let before_ok =
            !lead_is_ident || at == 0 || !code[..at].chars().next_back().is_some_and(ident);
        let after = at + needle.len();
        let after_ok = !tail_is_ident || !code[after..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return Some(at);
        }
        search = at + needle.len();
    }
    None
}

fn has_token(code: &str, needle: &str) -> bool {
    find_token(code, needle, 0).is_some()
}

/// Checks the per-line token rules over one scanned file.  The unsafe
/// rules live in [`crate::inventory`]; suppression filtering and the meta
/// rules happen in [`crate::workspace`].
#[must_use]
pub fn check_tokens(file: &ScannedFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if file.kind == FileKind::Test {
        return out;
    }
    let path = file.path.as_str();
    let in_result_bearing = cfg.under(path, &cfg.result_bearing);
    let wallclock_ok = cfg.under(path, &cfg.wallclock_allowed);
    let spawn_ok = cfg.under(path, &cfg.spawn_allowed);
    let in_lock_free = cfg.under(path, &cfg.lock_free);
    let needs_ordering_comments = cfg.under(path, &cfg.ordering_commented);
    let arch_ok = cfg.under(path, &cfg.arch_allowed);
    let panic_rule_applies = file.kind == FileKind::Lib;

    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test || !line.has_code() {
            continue;
        }
        let lineno = idx + 1;
        let code = line.code.as_str();
        let mut emit = |rule: &'static str, message: String| {
            out.push(Diagnostic {
                file: path.to_string(),
                line: lineno,
                rule,
                message,
            });
        };

        if in_result_bearing {
            for ty in ["HashMap", "HashSet"] {
                if has_token(code, ty) {
                    emit(
                        "no-default-hasher",
                        format!(
                            "default-hasher `{ty}` in result-bearing code: iteration order is \
                             randomized per process, which breaks bit-identical replay — use \
                             `BTreeMap`/`BTreeSet` (or justify a membership-only use)"
                        ),
                    );
                }
            }
        }
        if !wallclock_ok {
            for ty in ["Instant::now", "SystemTime"] {
                if has_token(code, ty) {
                    emit(
                        "no-wallclock",
                        format!(
                            "`{ty}` outside a bench wall-clock module: simulated results must \
                             not observe host time"
                        ),
                    );
                }
            }
        }
        if !spawn_ok {
            for call in ["thread::spawn", "thread::scope"] {
                if has_token(code, call) {
                    emit(
                        "thread-discipline",
                        format!(
                            "`{call}` outside the sanctioned runners (ParallelRunner, the \
                             service supervisor — which owns both initial spawns and \
                             post-crash respawns): ad-hoc threads bypass the determinism \
                             contract"
                        ),
                    );
                }
            }
        }
        if in_lock_free {
            for ty in ["Mutex", "RwLock", "RefCell"] {
                if has_token(code, ty) {
                    emit(
                        "lock-discipline",
                        format!(
                            "`{ty}` in a hot-path crate: shard-per-worker ownership keeps these \
                             crates lock-free; interior locking belongs in the service layer"
                        ),
                    );
                }
            }
        }
        if needs_ordering_comments {
            if let Some(at) = find_token(code, "Ordering::", 0) {
                let is_cmp = code[..at].ends_with("cmp::");
                let justified = comment_above_or_beside(&file.lines, idx, "ordering:");
                if !is_cmp && !justified {
                    emit(
                        "ordering-comment",
                        "atomic `Ordering::…` without a justification comment: state why this \
                         ordering is sufficient (and necessary) in a `// ordering: …` comment \
                         on or above the line"
                            .to_string(),
                    );
                }
            }
        }
        if !arch_ok {
            for token in ["std::arch", "is_x86_feature_detected", "target_feature"] {
                if has_token(code, token) {
                    emit(
                        "arch-confinement",
                        format!(
                            "`{token}` outside the vector dispatch modules: CPU-feature \
                             selection lives behind `VectorEngine` (crates/core/src/simd.rs) \
                             so every other module stays portable and Miri-runnable"
                        ),
                    );
                }
            }
        }
        if panic_rule_applies {
            for call in [".unwrap()", ".expect("] {
                if code.contains(call) {
                    emit(
                        "no-unwrap-in-lib",
                        format!(
                            "`{call}` in non-test library code: return a named error (the \
                             `ConfigError`/`TraceError` style) or register the site in the \
                             panic allowlist with a reason",
                        ),
                    );
                }
            }
        }
    }
    out
}

/// `true` when `marker` (case-insensitive) appears in a comment on line
/// `idx`, or in the contiguous run of comment-only / attribute-only lines
/// directly above it.
#[must_use]
pub fn comment_above_or_beside(lines: &[Line], idx: usize, marker: &str) -> bool {
    let matches = |line: &Line| line.comment.to_ascii_lowercase().contains(marker);
    if matches(&lines[idx]) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        let code = line.code.trim();
        let passthrough = code.is_empty() || code.starts_with("#[");
        if matches(line) {
            return true;
        }
        if !passthrough {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    fn cfg() -> Config {
        Config::workspace(PathBuf::from("/tmp"))
    }

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check_tokens(&scan_source(path, src), &cfg())
    }

    #[test]
    fn hashmap_fires_only_in_result_bearing_nontest_code() {
        let bad = diags("crates/core/src/lib.rs", "use std::collections::HashMap;\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "no-default-hasher");
        assert_eq!(bad[0].line, 1);
        let test_code = diags(
            "crates/core/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        );
        assert!(test_code.is_empty());
    }

    #[test]
    fn wallclock_is_allowed_in_bench_bins_only() {
        assert!(diags(
            "crates/bench/src/bin/bench_probe.rs",
            "let t = Instant::now();\n"
        )
        .is_empty());
        let bad = diags(
            "crates/coherence/src/simulator.rs",
            "let t = Instant::now();\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "no-wallclock");
    }

    #[test]
    fn spawn_is_allowed_in_runner_and_service_only() {
        assert!(diags(
            "crates/coherence/src/engine/runner.rs",
            "std::thread::scope(|s| {});\n"
        )
        .is_empty());
        let bad = diags(
            "crates/workloads/src/lib.rs",
            "std::thread::spawn(|| {});\n",
        );
        assert_eq!(bad[0].rule, "thread-discipline");
    }

    #[test]
    fn locks_fire_in_hot_crates_but_not_common() {
        let bad = diags("crates/core/src/table.rs", "use std::sync::Mutex;\n");
        assert_eq!(bad[0].rule, "lock-discipline");
        assert!(diags("crates/common/src/channel.rs", "use std::sync::Mutex;\n").is_empty());
    }

    #[test]
    fn ordering_requires_a_justification_comment() {
        let bad = diags(
            "crates/common/src/channel.rs",
            "depth.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert_eq!(bad[0].rule, "ordering-comment");
        assert!(diags(
            "crates/common/src/channel.rs",
            "// ordering: advisory counter, no synchronization piggybacks on it\ndepth.fetch_add(1, Ordering::Relaxed);\n",
        )
        .is_empty());
        // `cmp::Ordering` is not an atomic ordering.
        assert!(diags(
            "crates/common/src/channel.rs",
            "let c: std::cmp::Ordering = a.cmp(&b);\n",
        )
        .is_empty());
    }

    #[test]
    fn unwrap_fires_in_lib_but_not_bins_or_unwrap_or() {
        let bad = diags("crates/cache/src/cache.rs", "let x = y.unwrap();\n");
        assert_eq!(bad[0].rule, "no-unwrap-in-lib");
        assert!(diags("crates/bench/src/bin/fig9.rs", "let x = y.unwrap();\n").is_empty());
        assert!(diags("crates/cache/src/cache.rs", "let x = y.unwrap_or(0);\n").is_empty());
        assert!(diags(
            "crates/cache/src/cache.rs",
            "let x = y.unwrap_or_default();\n"
        )
        .is_empty());
    }

    #[test]
    fn arch_tokens_fire_outside_the_dispatch_modules_only() {
        for snippet in [
            "use std::arch::x86_64::__m256i;\n",
            "if is_x86_feature_detected!(\"avx2\") {}\n",
            "#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n",
        ] {
            let bad = diags("crates/core/src/table.rs", snippet);
            assert_eq!(bad[0].rule, "arch-confinement", "{snippet}");
            assert!(
                diags("crates/core/src/simd.rs", snippet)
                    .iter()
                    .all(|d| d.rule != "arch-confinement"),
                "{snippet}"
            );
            assert!(
                diags("crates/common/src/prefetch.rs", snippet)
                    .iter()
                    .all(|d| d.rule != "arch-confinement"),
                "{snippet}"
            );
        }
        // `target_arch` cfg gates are portable plumbing, not intrinsics.
        assert!(diags(
            "crates/core/src/table.rs",
            "#[cfg(target_arch = \"x86_64\")]\nmod imp {}\n",
        )
        .is_empty());
    }

    #[test]
    fn string_and_comment_occurrences_never_fire() {
        assert!(diags(
            "crates/core/src/lib.rs",
            "// a HashMap would be wrong here\nlet s = \"HashMap\";\n",
        )
        .is_empty());
    }

    #[test]
    fn suppressions_parse_and_resolve_to_next_code_line() {
        let file = scan_source(
            "crates/core/src/lib.rs",
            "// ccd-lint: allow(no-default-hasher) reason=\"membership only\"\nuse std::collections::HashSet;\n",
        );
        let (sups, diags) = collect_suppressions(&file);
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "no-default-hasher");
        assert_eq!(sups[0].target_line, 2);
    }

    #[test]
    fn malformed_suppressions_are_reported() {
        for bad in [
            "// ccd-lint: allow(no-default-hasher)\nlet x = 1;\n",
            "// ccd-lint: allow(not-a-rule) reason=\"x\"\nlet x = 1;\n",
            "// ccd-lint: disallow(no-wallclock) reason=\"x\"\nlet x = 1;\n",
            "// ccd-lint: allow(no-wallclock) reason=\"\"\nlet x = 1;\n",
        ] {
            let file = scan_source("crates/core/src/lib.rs", bad);
            let (sups, diags) = collect_suppressions(&file);
            assert!(sups.is_empty(), "{bad}");
            assert_eq!(diags.len(), 1, "{bad}");
            assert_eq!(diags[0].rule, "bad-suppression");
        }
    }

    #[test]
    fn allowlist_parses_and_flags_malformed_lines() {
        let body = "# comment\n\ncrates/x/src/a.rs | .lock().unwrap() | poisoning propagates a prior panic\nbad-line-no-pipes\n";
        let (entries, diags) = parse_allowlist(body, "lint/panic_allowlist.txt");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "crates/x/src/a.rs");
        assert_eq!(entries[0].source_line, 3);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn token_boundaries_are_respected() {
        // `MutexGuard` must not be reported as `Mutex`… but a bare token is.
        assert!(!has_token("let g: MutexGuardLike = x;", "Mutex"));
        assert!(has_token("let m = Mutex::new(0);", "Mutex"));
        assert!(!has_token("let x = y.unwrap_or(0);", ".unwrap()"));
        assert!(has_token("thread::spawn(f)", "thread::spawn"));
        assert!(!has_token("my_thread::spawner(f)", "thread::spawn"));
    }
}
