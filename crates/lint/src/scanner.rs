//! A hand-rolled Rust source scanner: comment/literal stripping and test
//! region tracking.
//!
//! The analyzer never parses Rust properly (no `syn` — the workspace builds
//! offline); instead every rule works on a per-line *code view* in which
//! comments are removed and the contents of string/char literals are blanked
//! out.  That is exactly enough precision for token-level rules ("does
//! `Mutex` appear in code?") without false positives from doc examples,
//! prose, or literals.  The scanner understands:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments
//!   (`/* /* */ */`), routed into a per-line comment view (rules that
//!   require justification comments read that side);
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any number of `#`s), including multi-line bodies;
//! * char literals (`'a'`, `'\n'`, `'\u{1F600}'`) distinguished from
//!   lifetimes (`'a`, `'static`) by lookahead;
//! * `#[cfg(test)]` / `#[test]` items, whose entire brace-matched body is
//!   flagged as test code so rules can exempt it.

/// One source line, split into the views the rules consume.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// The comment text carried by this line (markers stripped).
    pub comment: String,
    /// The original source text of the line, verbatim.
    pub raw: String,
    /// `true` when the line sits inside a `#[cfg(test)]`/`#[test]` item.
    pub is_test: bool,
}

impl Line {
    /// `true` when the code view holds anything but whitespace.
    #[must_use]
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

/// A scanned source file: its repo-relative path plus per-line views.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// What kind of target the file belongs to (library, binary, test…).
    pub kind: FileKind,
    /// Per-line views, index 0 = line 1.
    pub lines: Vec<Line>,
}

/// Coarse classification of a file by where it lives; rules scope
/// themselves by kind (e.g. the panic-surface rule covers only `Lib`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (excluding `src/bin/`).
    Lib,
    /// Executable code: `src/bin/`, `benches/`.
    Bin,
    /// Example programs under `examples/`.
    Example,
    /// Integration tests under `tests/` — skipped by every rule.
    Test,
}

/// Classifies a repo-relative path into a [`FileKind`].
#[must_use]
pub fn classify(path: &str) -> FileKind {
    if path.split('/').any(|seg| seg == "tests") {
        FileKind::Test
    } else if path.split('/').any(|seg| seg == "examples") {
        FileKind::Example
    } else if path.contains("/bin/") || path.split('/').any(|seg| seg == "benches") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Attribute spellings that introduce test-only items.  Matching is by
/// substring over the comment-stripped code view, so occurrences in prose
/// or string literals cannot trigger it.
const TEST_ATTRS: &[&str] = &[
    "#[cfg(test)]",
    "#[test]",
    "#[cfg(all(test",
    "#[cfg(any(test",
];

/// Scans `source`, producing per-line code/comment views and test flags.
#[must_use]
pub fn scan_source(path: &str, source: &str) -> ScannedFile {
    let kind = classify(path);
    let mut lines = split_views(source);
    mark_test_regions(&mut lines);
    // Files that are tests wholesale (integration tests, fixtures under a
    // `tests/` dir) are test code line one onward.
    if kind == FileKind::Test {
        for line in &mut lines {
            line.is_test = true;
        }
    }
    ScannedFile {
        path: path.to_string(),
        kind,
        lines,
    }
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    LineComment,
    /// Nested depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`; `true` = the next char is escaped.
    Str(bool),
    /// Inside `r##"…"##` with the given number of `#`s.
    RawStr(u32),
    /// Inside `'…'`; `true` = the next char is escaped.
    CharLit(bool),
}

fn split_views(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut raw = String::new();
    let mut mode = Mode::Code;

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                raw: std::mem::take(&mut raw),
                is_test: false,
            });
            i += 1;
            continue;
        }
        raw.push(c);
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    raw.push('/');
                    mode = Mode::LineComment;
                    i += 2;
                    // Doc-comment markers (`///x`, `//!`) read as prose.
                    continue;
                }
                if c == '/' && next == Some('*') {
                    raw.push('*');
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Str(false);
                    i += 1;
                    continue;
                }
                // Raw (and raw byte) strings: `r"`, `r#"`, `br##"`, …
                // Only when `r`/`b` starts a token, so identifiers ending
                // in `r` followed by operators stay untouched.
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, skip)) = raw_string_open(&chars, i) {
                        for k in 1..skip {
                            raw.push(chars[i + k]);
                        }
                        code.push_str(&"\u{20}".repeat(skip.saturating_sub(1)));
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += skip;
                        continue;
                    }
                }
                if c == '\'' {
                    // Lifetime or char literal?  A char literal closes
                    // within a couple of chars or starts with a backslash.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2).copied() == Some('\''),
                        None => false,
                    };
                    if is_char {
                        code.push('\'');
                        mode = Mode::CharLit(false);
                        i += 1;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    raw.push('*');
                    comment.push_str("/*");
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    raw.push('/');
                    if depth > 1 {
                        comment.push_str("*/");
                    }
                    mode = if depth > 1 {
                        Mode::BlockComment(depth - 1)
                    } else {
                        Mode::Code
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str(escaped) => {
                if escaped {
                    code.push(' ');
                    mode = Mode::Str(false);
                } else if c == '\\' {
                    code.push(' ');
                    mode = Mode::Str(true);
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for k in 0..hashes as usize {
                        raw.push(chars[i + 1 + k]);
                        code.push(' ');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit(escaped) => {
                if escaped {
                    code.push(' ');
                    mode = Mode::CharLit(false);
                } else if c == '\\' {
                    code.push(' ');
                    mode = Mode::CharLit(true);
                } else if c == '\'' {
                    code.push('\'');
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !raw.is_empty() || !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            raw,
            is_test: false,
        });
    }
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[i..]` opens a raw string (`r…`/`br…`), returns the hash count
/// and total chars consumed through the opening quote.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j).copied() != Some('r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j).copied() == Some('"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// `true` when the `"` at `i` is followed by exactly `hashes` `#`s.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Tracks brace depth across lines to flag the body of every
/// `#[cfg(test)]`/`#[test]` item (and the attribute line itself) as test
/// code.  Brace-less items (`#[cfg(test)] use …;`) end at their `;`.
fn mark_test_regions(lines: &mut [Line]) {
    #[derive(Clone, Copy)]
    enum Region {
        None,
        /// Attribute seen at this depth; waiting for the item's `{` or `;`.
        Pending(i64),
        /// Inside the item's block, which opened at this depth.
        Active(i64),
    }
    let mut depth: i64 = 0;
    let mut region = Region::None;
    for line in lines.iter_mut() {
        if matches!(region, Region::None) && TEST_ATTRS.iter().any(|a| line.code.contains(a)) {
            region = Region::Pending(depth);
        }
        let mut test_here = !matches!(region, Region::None);
        for c in line.code.chars() {
            match c {
                '{' => {
                    if let Region::Pending(d) = region {
                        if depth == d {
                            region = Region::Active(d);
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Region::Active(d) = region {
                        if depth == d {
                            region = Region::None;
                            test_here = true;
                        }
                    }
                }
                ';' => {
                    if let Region::Pending(d) = region {
                        if depth == d {
                            region = Region::None;
                            test_here = true;
                        }
                    }
                }
                _ => {}
            }
        }
        line.is_test = test_here || !matches!(region, Region::None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        scan_source("crates/x/src/lib.rs", src)
    }

    #[test]
    fn line_comments_move_to_the_comment_view() {
        let f = scan("let x = 1; // SAFETY: fine\n");
        assert_eq!(f.lines[0].code.trim_end(), "let x = 1;");
        assert!(f.lines[0].comment.contains("SAFETY: fine"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_remain() {
        let f = scan("let s = \"Mutex inside a string\";\n");
        assert!(!f.lines[0].code.contains("Mutex"));
        assert!(f.lines[0].code.contains("let s = \""));
        assert!(f.lines[0].raw.contains("Mutex"));
    }

    #[test]
    fn raw_strings_and_escapes_are_handled() {
        let f = scan("let s = r#\"has \"quotes\" and Mutex\"#; let t = \"esc \\\" Mutex\";\n");
        assert!(!f.lines[0].code.contains("Mutex"));
        assert!(f.lines[0].code.contains("; let t = \""));
        assert!(f.lines[0].code.trim_end().ends_with("\";"));
    }

    #[test]
    fn multiline_strings_blank_every_line() {
        let f = scan("let s = \"line one Mutex\nline two Mutex\";\nlet x = Mutex;\n");
        assert!(!f.lines[0].code.contains("Mutex"));
        assert!(!f.lines[1].code.contains("Mutex"));
        assert!(f.lines[2].code.contains("Mutex"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = scan("/* outer /* inner */ still comment */ let x = 1;\n");
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let f = scan("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains("'x'"));
        let f = scan("let c = '\\u{1F600}'; let m = Mutex;\n");
        assert!(f.lines[0].code.contains("Mutex"));
        assert!(!f.lines[0].code.contains("1F600"));
    }

    #[test]
    fn cfg_test_module_body_is_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].is_test);
        assert!(f.lines[1].is_test, "attribute line");
        assert!(f.lines[2].is_test);
        assert!(f.lines[3].is_test);
        assert!(f.lines[4].is_test, "closing brace");
        assert!(!f.lines[5].is_test);
    }

    #[test]
    fn test_attribute_on_fn_is_flagged() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn live() {}\n";
        let f = scan(src);
        assert!(f.lines[0].is_test && f.lines[1].is_test && f.lines[2].is_test);
        assert!(f.lines[3].is_test);
        assert!(!f.lines[4].is_test);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nlet live = 1;\n";
        let f = scan(src);
        assert!(f.lines[0].is_test && f.lines[1].is_test);
        assert!(!f.lines[2].is_test);
    }

    #[test]
    fn cfg_attr_test_does_not_open_a_region() {
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S;\n";
        let f = scan(src);
        assert!(!f.lines[0].is_test && !f.lines[1].is_test);
    }

    #[test]
    fn doc_comment_code_is_not_code() {
        let src = "//! let x: HashMap<u32, u32> = HashMap::new();\nfn live() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn tests_directories_are_test_files() {
        assert_eq!(classify("crates/x/tests/foo.rs"), FileKind::Test);
        assert_eq!(classify("tests/end_to_end.rs"), FileKind::Test);
        assert_eq!(classify("crates/x/src/bin/tool.rs"), FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("crates/x/src/lib.rs"), FileKind::Lib);
    }
}
