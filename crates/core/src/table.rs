//! The raw d-ary cuckoo hash table.
//!
//! This is the structure whose intrinsic behaviour Figure 7 of the paper
//! characterizes: `d` direct-mapped ways indexed by independent hash
//! functions, with displacement-based insertion and a bounded attempt
//! budget.  [`CuckooDirectory`](crate::CuckooDirectory) layers directory
//! semantics (sharer sets, coherence statistics) on top of this table; the
//! hash-characterization experiments use the table directly with `()`
//! payloads.
//!
//! # Storage layout
//!
//! The table stores its slots struct-of-arrays across three parallel dense
//! arrays.  `keys` and `values` are always indexed `way * sets + set_index`:
//!
//! * `tags` — one byte per slot: `EMPTY_TAG` (0) for a vacant slot, or a
//!   7-bit key fingerprint with the high bit set for an occupied one.  The
//!   encoding doubles as the occupancy marker, so the probe loop needs no
//!   `Option` and a miss touches one byte per way instead of a full slot.
//! * `keys` — the stored 64-bit keys (garbage where `tags` is empty).
//! * `values` — the payloads, kept as `MaybeUninit<V>` and only initialized
//!   where `tags` is occupied.
//!
//! A probe reduces to *which candidate tags equal the fingerprint / the
//! empty tag?* — answered by one of four [`ProbeVariant`] kernels:
//!
//! * `scalar` — one tag byte per way, compared in a plain loop.
//! * `swar` — the candidate tags of up to eight ways gathered into one
//!   integer and matched branchlessly with SWAR arithmetic (the portable
//!   default, and the only variant in the seed revision of this crate).
//! * `simd` — the gathered tags matched by the best vector unit the host
//!   offers ([`crate::simd::VectorEngine`]: sse2 / avx2 / neon, runtime
//!   detected once per table).
//! * `localized` — an F14-style *transposed* tag layout for the `tagalt`
//!   hash family, whose candidate indices all fall in one aligned
//!   [`block_span`](ccd_hash::TagAltFamily::block_span)-set block: tags are
//!   stored `tag_base + set_index * ways + way` over a 64-byte-aligned
//!   allocation, so the whole candidate block is one contiguous ≤64-byte
//!   span covered by a single vector compare — no per-way gather at all.
//!
//! Every variant produces the same way-indexed match masks (the SWAR
//! fingerprint scan may over-report, which the key confirmation filters, so
//! observable behaviour is identical); only ways whose tag matches the
//! key's fingerprint are confirmed with a full key compare, so a negative
//! lookup usually performs **zero** key loads.  Because occupied tags
//! always have their high bit set and the empty tag is zero, the vacancy
//! scan is exact (no false positives).
//!
//! # Insertion-attempt accounting
//!
//! The accounting matches Section 5.2 of the paper:
//!
//! * a lookup always precedes an insertion, and implicitly reveals whether
//!   any of the entry's `d` candidate slots is vacant — when one is, the
//!   insertion "succeeds on the first attempt, contributing one toward the
//!   average";
//! * otherwise each displacement round (writing the in-flight entry into one
//!   way and probing the displaced victim's candidate slots) adds one
//!   attempt.
//!
//! The discard rule when the attempt budget expires is exact, and shared by
//! both insertion policies:
//!
//! * the entry discarded is the **most recently displaced** one — the entry
//!   left in flight when `attempts` reaches the budget — and it is reported
//!   in [`InsertOutcome::discarded`] so the caller can invalidate the
//!   corresponding cached blocks (Section 4.2);
//! * the **requested key is never the one discarded**: if the chain circles
//!   back so that the in-flight entry *is* the incoming key (including a
//!   budget of 1, where no displacement round ever ran), the table performs
//!   one final displacement — the incoming entry overwrites its round-robin
//!   candidate slot and that victim is discarded instead — so the requested
//!   block is always tracked when the insertion returns.
//!
//! To keep entries uniformly distributed across the ways, each insertion's
//! displacement chain starts at the way where the previous chain stopped.
//!
//! Each insertion hashes each (key, way) pair exactly once: the hit-probe
//! and vacancy-probe share one [`IndexHashFamily::index_all_into`] pass, and
//! the displacement loop reuses each victim's indices for both its vacancy
//! probe and its next displacement target.
//!
//! # Insertion policies
//!
//! When every candidate slot of a new key is occupied, the table resolves
//! the insertion with one of two [`InsertPolicy`] kernels:
//!
//! * `greedy` (the default, the paper's Section 5.2 procedure) — the
//!   random-walk chain above: kick a victim, probe its alternates, repeat.
//! * `bfs` — breadth-first search for a **shortest displacement path**: the
//!   frontier starts at the key's `d` candidate slots and expands each
//!   victim into its alternate candidates (derived from the tag arrays
//!   alone via [`ccd_hash::TagAltFamily::derive_all_into`] when the family
//!   is `tagalt`, re-hashing the victim key otherwise) until some frontier
//!   victim has a vacant alternate.  The path of moves is then applied
//!   deepest-first, vacating one of the key's candidate slots.  A path of
//!   `L` moves costs `L + 1` attempts, so the budget bounds the search
//!   depth at `max_attempts - 1`; the frontier is additionally bounded by a
//!   fixed preallocated scratch arena ([`BFS_ARENA`] nodes), keeping
//!   steady-state insertions allocation-free.  When the bounded search
//!   finds no path the table falls back to the shared discard rule: one
//!   final displacement into the round-robin candidate way, reported with
//!   `attempts = max_attempts`.
//!
//! Both policies agree on which keys are resident until a budget actually
//! expires, but attempt counts and physical placements differ — the policy
//! is semantic, unlike the bit-identical [`ProbeVariant`] kernels.

use crate::simd::VectorEngine;
use ccd_common::prefetch::prefetch_slice_element;
use ccd_common::{ConfigError, LineAddr};
use ccd_directory::{DepthMetrics, InsertPolicy, ProbeVariant};
use ccd_hash::{fingerprint, HashFamily, HashKind, IndexHashFamily, MAX_FAMILY_WAYS};
use std::mem::MaybeUninit;

/// Tag byte of a vacant slot.  Occupied slots always carry the key's
/// fingerprint with the high bit set ([`ccd_hash::fingerprint`] — the one
/// tag encoding shared with the `tagalt` hash family), so `0` is
/// unambiguous.
const EMPTY_TAG: u8 = 0;

/// SWAR helpers: a `0x01` / `0x80` in every byte lane.
const SWAR_LOW: u64 = 0x0101_0101_0101_0101;
const SWAR_HIGH: u64 = 0x8080_8080_8080_8080;

/// Way counts up to this bound probe through compact stack buffers; wider
/// tables (up to [`MAX_FAMILY_WAYS`]) fall back to full-width buffers.
const SMALL_WAYS: usize = 8;

/// How many upcoming operations the batched APIs prefetch ahead of the
/// probe/insert loop.
pub const PREFETCH_WINDOW: usize = 8;

/// Longest contiguous tag span a localized probe reads in one vector
/// compare (the [`VectorEngine::eq_mask`] limit: one cache line, one `u64`
/// mask).  The `localized` variant requires `ways × block_span` to fit.
pub const MAX_TAG_SPAN: usize = 64;

/// Returns a mask with bit 7 of byte lane `i` set when byte `i` of `word`
/// equals `tag` — the classic SWAR byte-equality test.
///
/// With this table's tag encoding the test is exact for `tag == EMPTY_TAG`
/// (occupied tags have their high bit set, which the `!x` term excludes) and
/// may only over-report for fingerprint tags when a *true* match sits in a
/// lower lane (borrow propagation); callers confirm fingerprint candidates
/// with a full key compare anyway.
#[inline]
fn swar_match(word: u64, tag: u8) -> u64 {
    let x = word ^ SWAR_LOW.wrapping_mul(u64::from(tag));
    x.wrapping_sub(SWAR_LOW) & !x & SWAR_HIGH
}

/// What a fused probe learned about a key's `d` candidate slots.
#[derive(Clone, Copy, Debug)]
struct ProbeOutcome {
    /// Slot currently holding the key (first matching way), if any.
    hit: Option<usize>,
    /// First vacant candidate slot in way order, if any.
    vacant: Option<usize>,
}

/// The outcome of inserting a new key into a [`CuckooTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertOutcome<V> {
    /// Number of insertion attempts performed (≥ 1).
    pub attempts: u32,
    /// The key/value pair that had to be discarded because the attempt
    /// budget was exhausted, if any.  `None` means every entry found a home.
    pub discarded: Option<(u64, V)>,
}

impl<V> InsertOutcome<V> {
    /// `true` when the insertion placed every entry without discarding one.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.discarded.is_none()
    }
}

/// Result of [`CuckooTable::find_or_insert_with`]: a mutable borrow of the
/// payload stored for the requested key, plus the insertion outcome when the
/// key was newly inserted.
pub struct FindOrInsert<'a, V> {
    /// The payload stored for the requested key (existing or just created).
    pub value: &'a mut V,
    /// `None` when the key was already present (the payload was left
    /// untouched); the insertion outcome otherwise.
    pub inserted: Option<InsertOutcome<V>>,
}

impl<V> std::fmt::Debug for FindOrInsert<'_, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FindOrInsert")
            .field("was_insert", &self.inserted.is_some())
            .finish_non_exhaustive()
    }
}

/// Upper bound on the BFS frontier: the number of scratch-arena nodes one
/// search may allocate across all depths (roots included).  Reached only at
/// extreme occupancy; the search then falls back to the discard rule.
pub const BFS_ARENA: usize = 256;

/// One BFS frontier node: a candidate slot plus the arena position of the
/// node whose expansion enqueued it (`u32::MAX` for the roots).
#[derive(Clone, Copy, Debug)]
struct BfsNode {
    slot: u32,
    parent: u32,
}

/// Preallocated scratch of the BFS insertion kernel: the arena doubles as
/// the FIFO frontier queue, and the bitmap deduplicates visited slots.
/// Allocated once by [`CuckooTable::set_insert_policy`] so steady-state
/// insertions stay allocation-free.
#[derive(Debug)]
struct BfsScratch {
    /// Frontier arena / FIFO queue (capacity [`BFS_ARENA`], never grown).
    nodes: Vec<BfsNode>,
    /// One bit per slot; set while the slot is in the arena.
    visited: Vec<u64>,
}

impl BfsScratch {
    fn new(capacity: usize) -> Self {
        BfsScratch {
            nodes: Vec::with_capacity(BFS_ARENA),
            visited: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Marks `slot` visited, returning `true` when it was not already.
    fn visit(&mut self, slot: usize) -> bool {
        let word = &mut self.visited[slot / 64];
        let mask = 1u64 << (slot % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears the visited bits of every arena node and empties the arena,
    /// ready for the next search — O(arena), not O(table capacity).
    fn reset(&mut self) {
        for i in 0..self.nodes.len() {
            let slot = self.nodes[i].slot as usize;
            self.visited[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.nodes.clear();
    }
}

/// Dispatches a const-generic probe method on the way count, so the common
/// `d <= 8` tables run with compact stack index buffers.
macro_rules! ways_dispatch {
    ($self:ident . $method:ident ( $($arg:expr),* )) => {
        if $self.ways <= SMALL_WAYS {
            $self.$method::<SMALL_WAYS>($($arg),*)
        } else {
            $self.$method::<MAX_FAMILY_WAYS>($($arg),*)
        }
    };
}

/// A d-ary cuckoo hash table with bounded displacement insertion.
///
/// ```
/// use ccd_cuckoo::CuckooTable;
/// use ccd_hash::HashKind;
///
/// let mut table: CuckooTable<()> = CuckooTable::new(4, 1024, HashKind::Strong, 1)?;
/// let outcome = table.insert(0xabcdef, ());
/// assert!(outcome.succeeded());
/// assert!(table.contains(0xabcdef));
/// assert_eq!(table.len(), 1);
/// # Ok::<(), ccd_common::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct CuckooTable<V> {
    ways: usize,
    sets: usize,
    hashes: HashFamily,
    /// Which probe kernel this table runs (fixed at construction).
    variant: ProbeVariant,
    /// The vector unit backing the `simd` and `localized` variants
    /// (detected once at construction; unused by `scalar` / `swar`).
    engine: VectorEngine,
    /// Per-slot occupancy tags; position `tag_pos(way, index)` — see the
    /// module docs (standard `way * sets + index`, or the transposed
    /// localized layout).
    tags: Vec<u8>,
    /// First logical tag position inside `tags`: the skid that 64-byte-
    /// aligns the localized layout's blocks (0 for the standard layout).
    tag_base: usize,
    /// Sets per aligned candidate block of the localized layout (1 for the
    /// other variants, so the block math stays well-defined).
    loc_block: usize,
    /// Stored keys, indexed `way * sets + index` (garbage where the tag is
    /// empty).
    keys: Vec<u64>,
    /// Stored payloads, initialized exactly where the tag is occupied.
    values: Vec<MaybeUninit<V>>,
    valid: usize,
    max_attempts: u32,
    next_start_way: usize,
    /// How insertions whose candidate slots are all occupied are resolved.
    policy: InsertPolicy,
    /// Scratch arena of the BFS kernel; `Some` exactly when `policy` is
    /// [`InsertPolicy::Bfs`].
    bfs: Option<Box<BfsScratch>>,
    /// Depth distributions (probe depth, displacement-chain length, BFS
    /// path depth), recorded only while armed.  `None` — the default —
    /// costs one branch per record site and must never change what the
    /// table computes (contract #11).
    metrics: Option<Box<DepthMetrics>>,
}

impl<V> CuckooTable<V> {
    /// Creates an empty table of `ways` direct-mapped tables with `sets`
    /// entries each, indexed by the `kind` hash family seeded with `seed`,
    /// with the probe variant auto-selected (see
    /// [`CuckooTable::with_variant`]).
    ///
    /// # Errors
    ///
    /// * [`ConfigError::TooSmall`] if `ways < 2`,
    /// * plus the hash family's own validation errors (zero/`!pow2` sets).
    pub fn new(ways: usize, sets: usize, kind: HashKind, seed: u64) -> Result<Self, ConfigError> {
        Self::with_variant(ways, sets, kind, seed, None)
    }

    /// Creates an empty table running the requested [`ProbeVariant`], or —
    /// when `variant` is `None` — auto-selecting one: `localized` when the
    /// hash family supports it (the `tagalt` family with a candidate block
    /// of at most [`MAX_TAG_SPAN`] tag bytes), `swar` otherwise.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::TooSmall`] if `ways < 2`,
    /// * [`ConfigError::Inconsistent`] if `localized` is requested for a
    ///   hash family without tag-derived block-local candidates, or with a
    ///   candidate block wider than [`MAX_TAG_SPAN`] tag bytes,
    /// * plus the hash family's own validation errors (zero/`!pow2` sets).
    pub fn with_variant(
        ways: usize,
        sets: usize,
        kind: HashKind,
        seed: u64,
        variant: Option<ProbeVariant>,
    ) -> Result<Self, ConfigError> {
        if ways < 2 {
            return Err(ConfigError::TooSmall {
                what: "ways",
                value: ways as u64,
                min: 2,
            });
        }
        let hashes = HashFamily::with_seed(kind, ways, sets, seed)?;
        debug_assert!(ways <= MAX_FAMILY_WAYS, "hash families cap the way count");
        let localizable = hashes
            .tag_alt()
            .is_some_and(|family| ways * family.block_span() <= MAX_TAG_SPAN);
        let variant = match variant {
            Some(requested) => requested,
            None if localizable => ProbeVariant::Localized,
            None => ProbeVariant::Swar,
        };
        let loc_block = if variant == ProbeVariant::Localized {
            let Some(family) = hashes.tag_alt() else {
                return Err(ConfigError::Inconsistent {
                    what: "the localized probe variant requires the tagalt hash family \
                           (its candidates share one aligned tag block)",
                });
            };
            if ways * family.block_span() > MAX_TAG_SPAN {
                return Err(ConfigError::Inconsistent {
                    what: "the localized probe variant needs ways × block-span tag bytes \
                           to fit one 64-byte vector span",
                });
            }
            family.block_span()
        } else {
            1
        };
        let capacity = ways * sets;
        let (tags, tag_base) = Self::alloc_tags(variant, capacity);
        let mut values = Vec::new();
        values.resize_with(capacity, MaybeUninit::uninit);
        Ok(CuckooTable {
            ways,
            sets,
            hashes,
            variant,
            engine: VectorEngine::detect(),
            tags,
            tag_base,
            loc_block,
            keys: vec![0; capacity],
            values,
            valid: 0,
            max_attempts: crate::config::DEFAULT_MAX_ATTEMPTS,
            next_start_way: 0,
            policy: InsertPolicy::Greedy,
            bfs: None,
            metrics: None,
        })
    }

    /// Allocates the tag array for `variant`: the localized layout
    /// over-allocates by a cache line and skids its logical start to the
    /// next 64-byte boundary, so every aligned candidate block touches at
    /// most one extra line and the full span sits in bounds.
    fn alloc_tags(variant: ProbeVariant, capacity: usize) -> (Vec<u8>, usize) {
        if variant == ProbeVariant::Localized {
            let tags = vec![EMPTY_TAG; capacity + MAX_TAG_SPAN - 1];
            let tag_base = tags.as_ptr().addr().wrapping_neg() & (MAX_TAG_SPAN - 1);
            (tags, tag_base)
        } else {
            (vec![EMPTY_TAG; capacity], 0)
        }
    }

    /// Sets the insertion-attempt budget (default 32).
    ///
    /// When the budget expires the **most recently displaced** entry is
    /// discarded — never the requested key, which is kept resident by one
    /// final displacement if the chain circled back to it (see the module
    /// docs for the exact rule):
    ///
    /// ```
    /// use ccd_cuckoo::CuckooTable;
    /// use ccd_hash::HashKind;
    ///
    /// let mut table: CuckooTable<()> = CuckooTable::new(2, 16, HashKind::Strong, 7)?;
    /// table.set_max_attempts(1); // any fully-conflicted insert discards at once
    /// let discard = (0..10_000u64).find_map(|key| {
    ///     table.insert(key, ()).discarded.map(|(victim, ())| (key, victim))
    /// });
    /// let (key, victim) = discard.expect("a 2x16 table conflicts quickly");
    /// assert_ne!(victim, key, "the requested key is never the one discarded");
    /// assert!(table.contains(key), "the requested block stays tracked");
    /// assert!(!table.contains(victim), "the displaced victim is gone");
    /// # Ok::<(), ccd_common::ConfigError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn set_max_attempts(&mut self, max_attempts: u32) {
        assert!(max_attempts > 0, "attempt budget must be non-zero");
        self.max_attempts = max_attempts;
    }

    /// Selects the insertion policy (default [`InsertPolicy::Greedy`]).
    ///
    /// Switching to [`InsertPolicy::Bfs`] preallocates the policy's fixed
    /// scratch arena, so steady-state insertions remain allocation-free.
    /// The policy only governs future insertions; resident entries are left
    /// where they are.
    pub fn set_insert_policy(&mut self, policy: InsertPolicy) {
        self.policy = policy;
        self.bfs = match policy {
            InsertPolicy::Bfs => Some(Box::new(BfsScratch::new(self.capacity()))),
            InsertPolicy::Greedy => None,
        };
    }

    /// The insertion policy this table runs.
    #[must_use]
    pub fn insert_policy(&self) -> InsertPolicy {
        self.policy
    }

    /// Arms depth-distribution recording at `sig_bits` resolution,
    /// replacing any distributions recorded so far.
    ///
    /// While armed, every mutating operation feeds three
    /// [`LogHistogram`](ccd_common::LogHistogram)s: the ways inspected by
    /// each insertion-path probe, the entries physically displaced by each
    /// greedy chain, and the moves applied by each BFS shortest path.
    /// Pure queries (`find`, `contains`, `probe_batch`) take `&self` and
    /// are deliberately not recorded — observation never adds interior
    /// mutability to the read path.  Recording never changes what the
    /// table computes (contract #11).
    ///
    /// # Panics
    ///
    /// Panics if `sig_bits` is outside `1..=8`.
    pub fn arm_depth_metrics(&mut self, sig_bits: u32) {
        self.metrics = Some(Box::new(DepthMetrics::new(sig_bits)));
    }

    /// Stops depth-distribution recording and drops anything recorded.
    pub fn disarm_depth_metrics(&mut self) {
        self.metrics = None;
    }

    /// Moves the recorded distributions out of the table, disarming it.
    /// The live-resize migration path uses this to keep migration traffic
    /// out of the request-path distributions.
    #[must_use]
    pub fn take_depth_metrics(&mut self) -> Option<Box<DepthMetrics>> {
        self.metrics.take()
    }

    /// Re-installs distributions taken by
    /// [`CuckooTable::take_depth_metrics`], re-arming the table when
    /// `metrics` is `Some`.
    pub fn restore_depth_metrics(&mut self, metrics: Option<Box<DepthMetrics>>) {
        self.metrics = metrics;
    }

    /// The depth distributions recorded since arming, or `None` when
    /// disarmed.
    #[must_use]
    pub fn depth_metrics(&self) -> Option<&DepthMetrics> {
        self.metrics.as_deref()
    }

    /// Records the depth of an insertion-path probe: the 1-based way of
    /// the hit, or every way when the probe missed.
    #[inline]
    fn record_probe_depth(&mut self, hit: Option<usize>) {
        if let Some(metrics) = self.metrics.as_deref_mut() {
            let ways_inspected = match hit {
                Some(slot) => slot / self.sets + 1,
                None => self.ways,
            };
            metrics.probe_depth.record(ways_inspected as u64);
        }
    }

    /// Records the number of entries a greedy chain physically displaced.
    #[inline]
    fn record_chain(&mut self, moved: u32) {
        if let Some(metrics) = self.metrics.as_deref_mut() {
            metrics.displacement_chain.record(u64::from(moved));
        }
    }

    /// Records the number of moves a successful BFS path applied.
    #[inline]
    fn record_bfs_depth(&mut self, moves: u32) {
        if let Some(metrics) = self.metrics.as_deref_mut() {
            metrics.bfs_path_depth.record(u64::from(moves));
        }
    }

    /// Number of ways.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Entries per way.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The probe variant this table runs.
    #[must_use]
    pub fn probe_variant(&self) -> ProbeVariant {
        self.variant
    }

    /// The vector engine backing the `simd` / `localized` variants on this
    /// host (detected at construction; `scalar` / `swar` ignore it).
    #[must_use]
    pub fn vector_engine(&self) -> VectorEngine {
        self.engine
    }

    /// Total capacity (`ways × sets`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ways * self.sets
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// `true` when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// Current occupancy (0.0 ..= 1.0).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.valid as f64 / self.capacity() as f64
    }

    /// Computes the candidate set index of every way for `key` in one hash
    /// pass, into `indices[..ways]`.
    #[inline]
    fn hash_into(&self, key: u64, indices: &mut [usize]) {
        self.hashes
            .index_all_into(LineAddr::from_block_number(key), indices);
    }

    /// Position of `(way, index)`'s tag byte inside `tags`: the transposed
    /// line-local layout for `localized`, `way * sets + index` otherwise.
    #[inline]
    fn tag_pos(&self, way: usize, index: usize) -> usize {
        if self.variant == ProbeVariant::Localized {
            self.tag_base + index * self.ways + way
        } else {
            way * self.sets + index
        }
    }

    /// Tag position of a `way * sets + index` slot number.
    #[inline]
    fn tag_pos_of_slot(&self, slot: usize) -> usize {
        self.tag_pos(slot / self.sets, slot % self.sets)
    }

    /// Reads the tag byte at `pos` without a bounds check: every position
    /// this table computes comes from [`CuckooTable::tag_pos`] with
    /// `way < ways` (enforced by the probe loops) and `index < sets` (the
    /// [`IndexHashFamily`] contract, upheld by masking/shifting in every
    /// family), so both layouts stay below `tags.len()`.
    #[inline]
    fn tag_at(&self, pos: usize) -> u8 {
        debug_assert!(pos < self.tags.len());
        // SAFETY: see above — pos < tag_base + ways * sets <= tags.len().
        unsafe { *self.tags.get_unchecked(pos) }
    }

    /// Reads the key word of `slot`; same bounds argument as
    /// [`CuckooTable::tag_at`].
    #[inline]
    fn key_at(&self, slot: usize) -> u64 {
        debug_assert!(slot < self.keys.len());
        // SAFETY: see `tag_at` — slot < ways * sets == keys.len().
        unsafe { *self.keys.get_unchecked(slot) }
    }

    /// Gathers the candidate tags of ways `way .. way + lanes` into one SWAR
    /// word (byte lane `j` = way `way + j`) — the shared chunk primitive of
    /// every probe loop.
    #[inline(always)]
    fn gather_tags(&self, way: usize, lanes: usize, indices: &[usize]) -> u64 {
        let mut word = 0u64;
        for j in 0..lanes {
            let w = way + j;
            word |= u64::from(self.tag_at(w * self.sets + indices[w])) << (8 * j);
        }
        word
    }

    /// Mask covering the low `lanes` byte lanes of a SWAR word.  Padding
    /// lanes of a partial chunk are zero bytes: they can never alias a
    /// fingerprint (fingerprints have the high bit set) but *do* look
    /// vacant, so vacancy scans must clip with this mask.
    #[inline]
    fn lane_mask(lanes: usize) -> u64 {
        if lanes == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * lanes)) - 1
        }
    }

    /// The shared probe primitive behind every variant: way-indexed
    /// bitmasks over `key`'s candidate slots — bit `w` of the first mask is
    /// set when way `w`'s candidate tag equals `fp` (SWAR may over-report;
    /// callers confirm with a key compare), bit `w` of the second when it
    /// is vacant (always exact).  Unwanted masks (per the const flags) are
    /// zero.  All selection downstream walks these masks with
    /// `trailing_zeros`, so every variant scans ways in ascending order —
    /// exactly the order the displacement procedure relies on.
    #[inline]
    fn way_masks<const WANT_FP: bool, const WANT_EMPTY: bool>(
        &self,
        fp: u8,
        indices: &[usize],
    ) -> (u64, u64) {
        match self.variant {
            ProbeVariant::Scalar => self.way_masks_scalar::<WANT_FP, WANT_EMPTY>(fp, indices),
            ProbeVariant::Swar => self.way_masks_swar::<WANT_FP, WANT_EMPTY>(fp, indices),
            ProbeVariant::Simd => self.way_masks_simd::<WANT_FP, WANT_EMPTY>(fp, indices),
            ProbeVariant::Localized => self.way_masks_localized::<WANT_FP, WANT_EMPTY>(fp, indices),
        }
    }

    /// `scalar`: one tag byte per way, compared in a plain loop.
    fn way_masks_scalar<const WANT_FP: bool, const WANT_EMPTY: bool>(
        &self,
        fp: u8,
        indices: &[usize],
    ) -> (u64, u64) {
        let mut fp_mask = 0u64;
        let mut empty_mask = 0u64;
        for (way, &index) in indices.iter().enumerate().take(self.ways) {
            let tag = self.tag_at(self.tag_pos(way, index));
            if WANT_FP && tag == fp {
                fp_mask |= 1 << way;
            }
            if WANT_EMPTY && tag == EMPTY_TAG {
                empty_mask |= 1 << way;
            }
        }
        (fp_mask, empty_mask)
    }

    /// `swar`: up to eight candidate tags gathered into one integer and
    /// matched branchlessly (the seed revision's only kernel); lane bits
    /// fold into way bits.
    fn way_masks_swar<const WANT_FP: bool, const WANT_EMPTY: bool>(
        &self,
        fp: u8,
        indices: &[usize],
    ) -> (u64, u64) {
        let mut fp_mask = 0u64;
        let mut empty_mask = 0u64;
        let mut way = 0;
        while way < self.ways {
            let lanes = (self.ways - way).min(8);
            let word = self.gather_tags(way, lanes, indices);
            if WANT_FP {
                let mut lanes_hit = swar_match(word, fp);
                while lanes_hit != 0 {
                    fp_mask |= 1 << (way + (lanes_hit.trailing_zeros() / 8) as usize);
                    lanes_hit &= lanes_hit - 1;
                }
            }
            if WANT_EMPTY {
                let mut lanes_empty = swar_match(word, EMPTY_TAG) & Self::lane_mask(lanes);
                while lanes_empty != 0 {
                    empty_mask |= 1 << (way + (lanes_empty.trailing_zeros() / 8) as usize);
                    lanes_empty &= lanes_empty - 1;
                }
            }
            way += lanes;
        }
        (fp_mask, empty_mask)
    }

    /// `simd`: gather one candidate tag byte per way into a stack span,
    /// then one exact vector compare per wanted mask.
    fn way_masks_simd<const WANT_FP: bool, const WANT_EMPTY: bool>(
        &self,
        fp: u8,
        indices: &[usize],
    ) -> (u64, u64) {
        let mut span = [0xFFu8; MAX_FAMILY_WAYS];
        for way in 0..self.ways {
            span[way] = self.tag_at(self.tag_pos(way, indices[way]));
        }
        let bytes = &span[..self.ways];
        let fp_mask = if WANT_FP {
            self.engine.eq_mask(bytes, fp)
        } else {
            0
        };
        let empty_mask = if WANT_EMPTY {
            self.engine.eq_mask(bytes, EMPTY_TAG)
        } else {
            0
        };
        (fp_mask, empty_mask)
    }

    /// `localized`: every candidate lives in one aligned `ways × loc_block`
    /// tag span (the tagalt block property), so a single vector compare
    /// covers the whole candidate block and the per-way bits are extracted
    /// at `(index - block_base) * ways + way`.
    fn way_masks_localized<const WANT_FP: bool, const WANT_EMPTY: bool>(
        &self,
        fp: u8,
        indices: &[usize],
    ) -> (u64, u64) {
        let block_base = indices[0] & !(self.loc_block - 1);
        let start = self.tag_base + block_base * self.ways;
        let bytes = &self.tags[start..start + self.ways * self.loc_block];
        let fp_eq = if WANT_FP {
            self.engine.eq_mask(bytes, fp)
        } else {
            0
        };
        let empty_eq = if WANT_EMPTY {
            self.engine.eq_mask(bytes, EMPTY_TAG)
        } else {
            0
        };
        let mut fp_mask = 0u64;
        let mut empty_mask = 0u64;
        for (way, &index) in indices.iter().enumerate().take(self.ways) {
            let bit = (index - block_base) * self.ways + way;
            fp_mask |= ((fp_eq >> bit) & 1) << way;
            empty_mask |= ((empty_eq >> bit) & 1) << way;
        }
        (fp_mask, empty_mask)
    }

    /// Lookup-only probe: like [`CuckooTable::probe_prehashed`] but without
    /// the vacancy scan, for the pure-query paths (`contains` / `get` /
    /// `probe_batch`) that never insert.
    #[inline]
    fn probe_hit_prehashed(&self, key: u64, indices: &[usize]) -> Option<usize> {
        let (mut candidates, _) = self.way_masks::<true, false>(fingerprint(key), indices);
        while candidates != 0 {
            let w = candidates.trailing_zeros() as usize;
            let slot = w * self.sets + indices[w];
            if self.key_at(slot) == key {
                return Some(slot);
            }
            candidates &= candidates - 1;
        }
        None
    }

    /// Probes `key`'s candidate slots given precomputed way `indices`:
    /// matches the fingerprint and the empty tag through the variant's
    /// kernel, and confirms fingerprint candidates with a key compare.
    /// Ways are scanned in ascending order, so the hit is the first way
    /// holding the key and the vacancy is the first vacant way.
    fn probe_prehashed(&self, key: u64, indices: &[usize]) -> ProbeOutcome {
        let (mut candidates, empties) = self.way_masks::<true, true>(fingerprint(key), indices);
        let vacant = (empties != 0).then(|| {
            let w = empties.trailing_zeros() as usize;
            w * self.sets + indices[w]
        });
        while candidates != 0 {
            let w = candidates.trailing_zeros() as usize;
            let slot = w * self.sets + indices[w];
            if self.key_at(slot) == key {
                return ProbeOutcome {
                    hit: Some(slot),
                    vacant,
                };
            }
            candidates &= candidates - 1;
        }
        ProbeOutcome { hit: None, vacant }
    }

    /// First vacant candidate slot in way order, given precomputed indices.
    fn first_vacant_prehashed(&self, indices: &[usize]) -> Option<usize> {
        let (_, empties) = self.way_masks::<false, true>(EMPTY_TAG, indices);
        (empties != 0).then(|| {
            let w = empties.trailing_zeros() as usize;
            w * self.sets + indices[w]
        })
    }

    /// Finds the slot currently holding `key`, if any.
    ///
    /// Checks way 0 first with a single hash: the vacancy scan prefers
    /// lower-numbered ways, so at moderate occupancy most resident keys
    /// live in way 0 and the common hit skips hashing the remaining ways.
    /// The direct key compare needs no fingerprint — an occupied slot's key
    /// is authoritative; the tag is only consulted to reject the stale key
    /// of a removed entry.  A miss falls through to the full SWAR probe,
    /// which re-examines way 0 (its key cannot match there, so the answer
    /// is unchanged — first matching way in way order).
    #[inline]
    fn find_n<const N: usize>(&self, key: u64) -> Option<usize> {
        let index0 = self.hashes.index(0, LineAddr::from_block_number(key));
        // Way 0: slot == set index.
        let slot0 = index0;
        // Non-short-circuit `&`: the tag byte and the key word live in
        // different arrays, so loading both unconditionally lets the two
        // cache accesses overlap instead of serializing behind the branch.
        if (self.tag_at(self.tag_pos(0, index0)) != EMPTY_TAG) & (self.key_at(slot0) == key) {
            return Some(slot0);
        }
        let mut indices = [0usize; N];
        self.hash_into(key, &mut indices);
        self.probe_hit_prehashed(key, &indices)
    }

    fn find(&self, key: u64) -> Option<usize> {
        ways_dispatch!(self.find_n(key))
    }

    /// Writes `key`/`value` into the vacant `slot`.
    #[inline]
    fn fill_slot(&mut self, slot: usize, key: u64, value: V) {
        let pos = self.tag_pos_of_slot(slot);
        debug_assert_eq!(self.tags[pos], EMPTY_TAG, "fill requires a vacant slot");
        self.tags[pos] = fingerprint(key);
        self.keys[slot] = key;
        self.values[slot].write(value);
    }

    /// Replaces the occupant of `slot` with `key`/`value`, returning the
    /// displaced pair.
    #[inline]
    fn swap_slot(&mut self, slot: usize, key: u64, value: V) -> (u64, V) {
        let pos = self.tag_pos_of_slot(slot);
        assert!(
            self.tags[pos] != EMPTY_TAG,
            "displacement only happens into occupied slots"
        );
        let old_key = self.keys[slot];
        // SAFETY: the occupied tag guarantees the payload is initialized,
        // and it is replaced (not duplicated) in the same expression.
        let old_value = unsafe {
            std::mem::replace(&mut self.values[slot], MaybeUninit::new(value)).assume_init()
        };
        self.tags[pos] = fingerprint(key);
        self.keys[slot] = key;
        (old_key, old_value)
    }

    /// Moves the occupant of `from` into the vacant slot `to`, leaving
    /// `from` vacant — one hop of a BFS displacement path.
    #[inline]
    fn move_slot(&mut self, from: usize, to: usize) {
        let from_pos = self.tag_pos_of_slot(from);
        let to_pos = self.tag_pos_of_slot(to);
        debug_assert_ne!(self.tags[from_pos], EMPTY_TAG, "path nodes are occupied");
        debug_assert_eq!(self.tags[to_pos], EMPTY_TAG, "paths move into vacancies");
        self.tags[to_pos] = self.tags[from_pos];
        self.tags[from_pos] = EMPTY_TAG;
        self.keys[to] = self.keys[from];
        // SAFETY: `from`'s occupied tag guarantees an initialized payload,
        // and clearing that tag above makes this a move — the payload is
        // read exactly once and never dropped at `from`.
        let value = unsafe { self.values[from].assume_init_read() };
        self.values[to].write(value);
    }

    /// Returns `true` when `key` is present.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Returns a reference to the payload stored for `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        let slot = self.find(key)?;
        // SAFETY: `find` only returns occupied slots.
        Some(unsafe { self.values[slot].assume_init_ref() })
    }

    /// Returns a mutable reference to the payload stored for `key`.
    #[must_use]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let slot = self.find(key)?;
        // SAFETY: `find` only returns occupied slots.
        Some(unsafe { self.values[slot].assume_init_mut() })
    }

    /// Removes `key`, returning its payload.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.find(key)?;
        let pos = self.tag_pos_of_slot(slot);
        self.tags[pos] = EMPTY_TAG;
        self.valid -= 1;
        // SAFETY: `find` only returns occupied slots, and the tag is cleared
        // above so the payload is never read (or dropped) again.
        Some(unsafe { self.values[slot].assume_init_read() })
    }

    /// Iterates over `(key, &payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        (0..self.ways * self.sets)
            .filter(move |&slot| self.tag_at(self.tag_pos_of_slot(slot)) != EMPTY_TAG)
            .map(move |slot| {
                // SAFETY: occupied tags guarantee initialized payloads.
                (self.keys[slot], unsafe {
                    self.values[slot].assume_init_ref()
                })
            })
    }

    /// Hints the CPU to fetch `key`'s candidate tag bytes (and, when
    /// `and_keys` is set, the key words used to confirm fingerprint
    /// matches).  Purely a performance hint; see
    /// [`ccd_common::prefetch::prefetch_read`].
    fn prefetch_prehashed(&self, indices: &[usize], and_keys: bool) {
        if self.variant == ProbeVariant::Localized {
            // The whole candidate block is one contiguous span: touch its
            // first and last byte (at most two cache lines).
            let start = self.tag_base + (indices[0] & !(self.loc_block - 1)) * self.ways;
            prefetch_slice_element(&self.tags, start);
            prefetch_slice_element(&self.tags, start + self.ways * self.loc_block - 1);
        } else {
            for (way, &index) in indices.iter().enumerate().take(self.ways) {
                prefetch_slice_element(&self.tags, way * self.sets + index);
            }
        }
        if and_keys {
            for (way, &index) in indices.iter().enumerate().take(self.ways) {
                prefetch_slice_element(&self.keys, way * self.sets + index);
            }
        }
    }

    fn prefetch_n<const N: usize>(&self, key: u64) {
        let mut indices = [0usize; N];
        self.hash_into(key, &mut indices);
        self.prefetch_prehashed(&indices, false);
    }

    /// Issues software prefetches for `key`'s candidate tag bytes, hiding
    /// the probe's cache misses when called a few operations ahead of the
    /// actual lookup or insertion.  Semantically a no-op.
    pub fn prefetch(&self, key: u64) {
        ways_dispatch!(self.prefetch_n(key));
    }

    /// Inserts `key` with `value`, displacing existing entries as needed.
    ///
    /// If `key` is already present its payload is replaced and the insertion
    /// counts one attempt.  When the attempt budget is exhausted the most
    /// recently displaced entry is discarded and returned in
    /// [`InsertOutcome::discarded`]; `key` itself is always stored.
    pub fn insert(&mut self, key: u64, value: V) -> InsertOutcome<V> {
        ways_dispatch!(self.insert_n(key, value))
    }

    fn insert_n<const N: usize>(&mut self, key: u64, value: V) -> InsertOutcome<V> {
        let mut indices = [0usize; N];
        self.hash_into(key, &mut indices);
        self.insert_prehashed(key, value, &mut indices)
    }

    /// The insertion body, with `indices[..ways]` already holding `key`'s
    /// candidate set indices.  The lookup that precedes every insertion and
    /// the vacancy scan share one fused probe over those indices.
    fn insert_prehashed(&mut self, key: u64, value: V, indices: &mut [usize]) -> InsertOutcome<V> {
        let probe = self.probe_prehashed(key, indices);
        self.record_probe_depth(probe.hit);
        if let Some(slot) = probe.hit {
            // SAFETY: `probe` only reports occupied slots as hits.
            unsafe { self.values[slot].assume_init_drop() };
            self.values[slot].write(value);
            return InsertOutcome {
                attempts: 1,
                discarded: None,
            };
        }

        // Vacant candidate revealed by the lookup: first-attempt success.
        if let Some(slot) = probe.vacant {
            self.fill_slot(slot, key, value);
            self.valid += 1;
            return InsertOutcome {
                attempts: 1,
                discarded: None,
            };
        }

        match self.policy {
            InsertPolicy::Greedy => self.displace(key, value, indices),
            InsertPolicy::Bfs => self.displace_bfs(key, value, indices),
        }
    }

    /// The displacement chain: the in-flight entry looks for a home, kicking
    /// out victims round-robin starting at the way where the previous chain
    /// stopped.  `indices` holds the in-flight entry's candidate indices on
    /// entry and is reused as the scratch buffer for each victim — every
    /// victim is hashed exactly once, covering both its vacancy probe and
    /// its next displacement target.
    fn displace(&mut self, key: u64, value: V, indices: &mut [usize]) -> InsertOutcome<V> {
        let mut attempts: u32 = 1;
        let mut current_key = key;
        let mut current_value = value;
        let mut way = self.next_start_way;
        self.valid += 1; // `key` will end up stored; track it now.
        loop {
            if attempts >= self.max_attempts {
                // Budget exhausted: discard the most recently displaced
                // entry to guarantee termination.  The incoming request is
                // never the one discarded — if the chain circled back to it,
                // perform one final displacement so the requested block stays
                // tracked and the displaced victim is invalidated instead.
                self.next_start_way = way;
                self.valid -= 1;
                if current_key == key {
                    let slot = way * self.sets + indices[way];
                    let victim = self.swap_slot(slot, current_key, current_value);
                    self.record_chain(attempts);
                    return InsertOutcome {
                        attempts,
                        discarded: Some(victim),
                    };
                }
                self.record_chain(attempts - 1);
                return InsertOutcome {
                    attempts,
                    discarded: Some((current_key, current_value)),
                };
            }

            // Write the in-flight entry into its candidate slot in `way`,
            // displacing whatever lives there.
            let slot = way * self.sets + indices[way];
            let victim_tag = self.tag_at(self.tag_pos(way, indices[way]));
            let (victim_key, victim_value) = self.swap_slot(slot, current_key, current_value);
            attempts += 1;

            // Probe the victim's candidate slots for a vacancy; its indices
            // stay in the scratch buffer for the next round.  With the
            // tagalt family the victim's complete candidate set derives
            // from its coordinates and tag alone — bit-identical to
            // re-hashing its key (an occupied tag *is* the fingerprint),
            // but without touching the key array.
            if let Some(family) = self.hashes.tag_alt() {
                family.derive_all_into(way, indices[way], victim_tag, indices);
            } else {
                self.hash_into(victim_key, indices);
            }
            if let Some(vacant) = self.first_vacant_prehashed(indices) {
                self.fill_slot(vacant, victim_key, victim_value);
                self.next_start_way = way;
                self.record_chain(attempts - 1);
                return InsertOutcome {
                    attempts,
                    discarded: None,
                };
            }

            // No vacancy: the victim becomes the in-flight entry and we move
            // on to the next way.
            current_key = victim_key;
            current_value = victim_value;
            way = (way + 1) % self.ways;
        }
    }

    /// BFS shortest-displacement-path insertion (see the module docs).
    /// `indices` holds the incoming key's candidate set indices — all
    /// occupied when this runs — and is left untouched so the discard
    /// fallback can reuse them.
    fn displace_bfs(&mut self, key: u64, value: V, indices: &mut [usize]) -> InsertOutcome<V> {
        let mut scratch = self
            .bfs
            .take()
            .expect("the BFS policy preallocates its scratch arena");
        let found = self.bfs_search(&mut scratch, indices);
        let outcome = match found {
            Some((leaf, vacant)) => {
                // Apply the path deepest-first: each hop moves a path node's
                // occupant into the vacancy opened by the previous hop,
                // finally vacating one of `key`'s own candidate slots.
                let mut dest = vacant;
                let mut node = leaf;
                let mut moves = 0u32;
                loop {
                    let BfsNode { slot, parent } = scratch.nodes[node as usize];
                    self.move_slot(slot as usize, dest);
                    moves += 1;
                    dest = slot as usize;
                    if parent == u32::MAX {
                        break;
                    }
                    node = parent;
                }
                self.fill_slot(dest, key, value);
                self.valid += 1;
                self.record_bfs_depth(moves);
                InsertOutcome {
                    attempts: moves + 1,
                    discarded: None,
                }
            }
            None => {
                // No path within the budgeted depth (or the arena filled):
                // the shared discard rule — one final displacement into the
                // round-robin candidate way keeps the requested block
                // tracked, and the displaced victim is reported for
                // invalidation.
                let way = self.next_start_way;
                let slot = way * self.sets + indices[way];
                let victim = self.swap_slot(slot, key, value);
                self.next_start_way = (way + 1) % self.ways;
                // The failed search's discard displaces exactly one entry;
                // it lands in the chain distribution, not the BFS one, so
                // `bfs_path_depth` stays the distribution of *successful*
                // shortest paths.
                self.record_chain(1);
                InsertOutcome {
                    attempts: self.max_attempts,
                    discarded: Some(victim),
                }
            }
        };
        scratch.reset();
        self.bfs = Some(scratch);
        outcome
    }

    /// The search half of the BFS kernel: expands the frontier from `key`'s
    /// candidate slots (all occupied) until some frontier victim has a
    /// vacant alternate.  Returns that victim's arena position plus the
    /// vacant slot; the move path is recovered by walking parent links.
    /// Leaves the arena populated for the caller, who resets it after
    /// applying the path.
    ///
    /// A node at depth `D` (roots are depth 1) yields a path of `D` moves
    /// costing `D + 1` attempts, so only nodes at depth
    /// `<= max_attempts - 1` are expanded — the budget greedy would spend
    /// on its chain bounds the search depth here.
    fn bfs_search(&self, scratch: &mut BfsScratch, indices: &[usize]) -> Option<(u32, usize)> {
        debug_assert!(scratch.nodes.is_empty());
        let max_depth = (self.max_attempts - 1) as usize;
        if max_depth == 0 {
            return None;
        }
        for (way, &index) in indices.iter().enumerate().take(self.ways) {
            let slot = way * self.sets + index;
            if scratch.visit(slot) {
                scratch.nodes.push(BfsNode {
                    slot: slot as u32,
                    parent: u32::MAX,
                });
            }
        }
        let mut cand = [0usize; MAX_FAMILY_WAYS];
        let mut head = 0usize;
        let mut level_end = scratch.nodes.len();
        let mut depth = 1usize;
        while head < scratch.nodes.len() {
            if head == level_end {
                depth += 1;
                level_end = scratch.nodes.len();
                if depth > max_depth {
                    // Unreachable in practice: children are only enqueued
                    // while their depth stays expandable.  Kept as a guard.
                    return None;
                }
            }
            let node_slot = scratch.nodes[head].slot as usize;
            let (way, index) = (node_slot / self.sets, node_slot % self.sets);
            // The victim's complete candidate set derives from its
            // coordinates and tag alone with the tagalt family (an occupied
            // tag *is* the fingerprint — same identity the greedy chain
            // uses); other families re-hash its key.
            if let Some(family) = self.hashes.tag_alt() {
                let tag = self.tag_at(self.tag_pos(way, index));
                family.derive_all_into(way, index, tag, &mut cand);
            } else {
                self.hash_into(self.key_at(node_slot), &mut cand);
            }
            if let Some(vacant) = self.first_vacant_prehashed(&cand) {
                return Some((head as u32, vacant));
            }
            if depth < max_depth {
                for (w, &set_index) in cand.iter().enumerate().take(self.ways) {
                    if scratch.nodes.len() == BFS_ARENA {
                        break;
                    }
                    let child = w * self.sets + set_index;
                    if scratch.visit(child) {
                        scratch.nodes.push(BfsNode {
                            slot: child as u32,
                            parent: head as u32,
                        });
                    }
                }
            }
            head += 1;
        }
        None
    }

    /// Looks `key` up and, when absent, inserts `make()` via the cuckoo
    /// displacement procedure — one fused probe covers the lookup-hit and
    /// vacancy scans.  `make` is only invoked when the key is actually
    /// inserted; an existing payload is left untouched (unlike
    /// [`CuckooTable::insert`], which replaces it).  The returned borrow
    /// always refers to the payload stored for `key`, which is guaranteed to
    /// be resident afterwards even when the insertion discarded a victim.
    pub fn find_or_insert_with(
        &mut self,
        key: u64,
        make: impl FnOnce() -> V,
    ) -> FindOrInsert<'_, V> {
        ways_dispatch!(self.find_or_insert_n(key, make))
    }

    fn find_or_insert_n<const N: usize>(
        &mut self,
        key: u64,
        make: impl FnOnce() -> V,
    ) -> FindOrInsert<'_, V> {
        let mut indices = [0usize; N];
        self.hash_into(key, &mut indices);
        let probe = self.probe_prehashed(key, &indices);
        self.record_probe_depth(probe.hit);
        let (slot, inserted) = if let Some(slot) = probe.hit {
            (slot, None)
        } else if let Some(slot) = probe.vacant {
            self.fill_slot(slot, key, make());
            self.valid += 1;
            (
                slot,
                Some(InsertOutcome {
                    attempts: 1,
                    discarded: None,
                }),
            )
        } else {
            let outcome = match self.policy {
                InsertPolicy::Greedy => self.displace(key, make(), &mut indices),
                InsertPolicy::Bfs => self.displace_bfs(key, make(), &mut indices),
            };
            // The chain may have moved the new entry again before settling,
            // so its final slot needs one re-probe (rare path: all candidate
            // slots were occupied).
            let slot = self
                .find_n::<N>(key)
                .expect("insertion always stores the requested key");
            (slot, Some(outcome))
        };
        FindOrInsert {
            // SAFETY: both branches produce an occupied slot for `key`.
            value: unsafe { self.values[slot].assume_init_mut() },
            inserted,
        }
    }

    /// Looks up every key of `keys`, writing `true` into the corresponding
    /// element of `hits` when the key is present.  Operations are processed
    /// in windows of [`PREFETCH_WINDOW`]: each window's candidate tags are
    /// hashed and prefetched up front, then probed — overlapping the cache
    /// misses of up to `window × ways` independent lines.  Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `hits` is shorter than `keys`.
    pub fn probe_batch(&self, keys: &[u64], hits: &mut [bool]) {
        ways_dispatch!(self.probe_batch_n(keys, hits));
    }

    fn probe_batch_n<const N: usize>(&self, keys: &[u64], hits: &mut [bool]) {
        assert!(
            hits.len() >= keys.len(),
            "hit buffer of {} entries cannot hold {} lookups",
            hits.len(),
            keys.len()
        );
        let mut indices = [[0usize; N]; PREFETCH_WINDOW];
        let mut start = 0;
        while start < keys.len() {
            let end = (start + PREFETCH_WINDOW).min(keys.len());
            for (key, key_indices) in keys[start..end].iter().zip(indices.iter_mut()) {
                self.hash_into(*key, key_indices);
                self.prefetch_prehashed(key_indices, false);
            }
            for (j, key) in keys[start..end].iter().enumerate() {
                hits[start + j] = self.probe_hit_prehashed(*key, &indices[j]).is_some();
            }
            start = end;
        }
    }

    /// Applies a batch of insertions in order, draining `entries` and
    /// appending one [`InsertOutcome`] per entry to `outcomes`.  Like
    /// [`CuckooTable::probe_batch`], the candidate slots of a window of
    /// upcoming insertions are hashed and prefetched before the insertions
    /// run, and each insertion reuses its prehashed indices — identical
    /// outcomes to calling [`CuckooTable::insert`] in a loop, with the
    /// memory latency of independent operations overlapped.  Allocation-free
    /// once both vectors have reached their steady-state capacity.
    pub fn apply_batch(
        &mut self,
        entries: &mut Vec<(u64, V)>,
        outcomes: &mut Vec<InsertOutcome<V>>,
    ) {
        ways_dispatch!(self.apply_batch_n(entries, outcomes));
    }

    fn apply_batch_n<const N: usize>(
        &mut self,
        entries: &mut Vec<(u64, V)>,
        outcomes: &mut Vec<InsertOutcome<V>>,
    ) {
        // Popping from the back lets each entry be moved out without
        // shifting the rest; reversing first preserves submission order.
        entries.reverse();
        let mut indices = [[0usize; N]; PREFETCH_WINDOW];
        while !entries.is_empty() {
            let window = entries.len().min(PREFETCH_WINDOW);
            for (j, key_indices) in indices.iter_mut().enumerate().take(window) {
                let key = entries[entries.len() - 1 - j].0;
                self.hash_into(key, key_indices);
                self.prefetch_prehashed(key_indices, true);
            }
            for key_indices in indices.iter_mut().take(window) {
                let (key, value) = entries.pop().expect("window is within bounds");
                outcomes.push(self.insert_prehashed(key, value, key_indices));
            }
        }
    }

    /// Drains every resident entry into `target` through its batched
    /// insertion path ([`CuckooTable::apply_batch`]), leaving `self` empty —
    /// the migration primitive behind online live resize.
    ///
    /// Entries move in ascending slot order in fixed-size batches, so a
    /// migration between deterministic tables is itself deterministic.
    /// Returns the entries `target` discarded (attempt-budget expiry during
    /// re-insertion) — empty whenever `target` is provisioned at least as
    /// generously as `self`.
    pub fn migrate_into(&mut self, target: &mut CuckooTable<V>) -> Vec<(u64, V)> {
        const MIGRATE_BATCH: usize = 64;
        let mut entries: Vec<(u64, V)> = Vec::with_capacity(MIGRATE_BATCH);
        let mut outcomes: Vec<InsertOutcome<V>> = Vec::with_capacity(MIGRATE_BATCH);
        let mut discarded = Vec::new();
        for slot in 0..self.ways * self.sets {
            let pos = self.tag_pos_of_slot(slot);
            if self.tags[pos] == EMPTY_TAG {
                continue;
            }
            self.tags[pos] = EMPTY_TAG;
            self.valid -= 1;
            // SAFETY: the occupied tag guarantees an initialized payload,
            // and the tag is cleared above so it is never read again here.
            let value = unsafe { self.values[slot].assume_init_read() };
            entries.push((self.keys[slot], value));
            if entries.len() == MIGRATE_BATCH {
                target.apply_batch(&mut entries, &mut outcomes);
                discarded.extend(outcomes.drain(..).filter_map(|o| o.discarded));
            }
        }
        if !entries.is_empty() {
            target.apply_batch(&mut entries, &mut outcomes);
            discarded.extend(outcomes.drain(..).filter_map(|o| o.discarded));
        }
        debug_assert!(self.is_empty());
        discarded
    }
}

impl<V: Clone> Clone for CuckooTable<V> {
    fn clone(&self) -> Self {
        let capacity = self.ways * self.sets;
        let values = (0..capacity)
            .map(|slot| {
                if self.tag_at(self.tag_pos_of_slot(slot)) == EMPTY_TAG {
                    MaybeUninit::uninit()
                } else {
                    // SAFETY: occupied tags guarantee initialized payloads.
                    MaybeUninit::new(unsafe { self.values[slot].assume_init_ref() }.clone())
                }
            })
            .collect();
        // The localized alignment skid depends on the allocation address,
        // so the clone re-derives its own and copies the logical tag range
        // rather than cloning the vector verbatim.
        let (mut tags, tag_base) = Self::alloc_tags(self.variant, capacity);
        tags[tag_base..tag_base + capacity]
            .copy_from_slice(&self.tags[self.tag_base..self.tag_base + capacity]);
        CuckooTable {
            ways: self.ways,
            sets: self.sets,
            hashes: self.hashes.clone(),
            variant: self.variant,
            engine: self.engine,
            tags,
            tag_base,
            loc_block: self.loc_block,
            keys: self.keys.clone(),
            values,
            valid: self.valid,
            max_attempts: self.max_attempts,
            next_start_way: self.next_start_way,
            policy: self.policy,
            // The scratch holds no state between insertions; a clone gets a
            // fresh arena sized for the same capacity.
            bfs: self
                .bfs
                .as_ref()
                .map(|_| Box::new(BfsScratch::new(capacity))),
            metrics: self.metrics.clone(),
        }
    }
}

impl<V> Drop for CuckooTable<V> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<V>() {
            for slot in 0..self.ways * self.sets {
                if self.tag_at(self.tag_pos_of_slot(slot)) != EMPTY_TAG {
                    // SAFETY: occupied tags guarantee initialized payloads,
                    // each dropped exactly once here.
                    unsafe { self.values[slot].assume_init_drop() };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64};
    use std::collections::HashSet;

    fn filled_table(
        ways: usize,
        sets: usize,
        fill: usize,
        seed: u64,
    ) -> (CuckooTable<u64>, Vec<u64>) {
        let mut table = CuckooTable::new(ways, sets, HashKind::Strong, seed).unwrap();
        let mut rng = SplitMix64::new(seed ^ 0x55aa);
        let mut keys = Vec::new();
        while keys.len() < fill {
            let key = rng.next_u64() >> 8;
            if table.contains(key) {
                continue;
            }
            let outcome = table.insert(key, key * 2);
            keys.push(key);
            if let Some((lost, _)) = outcome.discarded {
                keys.retain(|&k| k != lost);
            }
        }
        (table, keys)
    }

    #[test]
    fn construction_validation() {
        assert!(CuckooTable::<()>::new(1, 64, HashKind::Strong, 0).is_err());
        assert!(CuckooTable::<()>::new(3, 100, HashKind::Strong, 0).is_err());
        assert!(CuckooTable::<()>::new(3, 128, HashKind::Strong, 0).is_ok());
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t: CuckooTable<String> = CuckooTable::new(2, 64, HashKind::Strong, 3).unwrap();
        assert!(t.is_empty());
        let o = t.insert(10, "ten".to_string());
        assert_eq!(o.attempts, 1);
        assert!(o.succeeded());
        assert_eq!(t.get(10), Some(&"ten".to_string()));
        *t.get_mut(10).unwrap() = "TEN".to_string();
        assert_eq!(t.get(10), Some(&"TEN".to_string()));

        // Re-inserting an existing key replaces its payload.
        let o = t.insert(10, "x".to_string());
        assert_eq!(o.attempts, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(10), Some(&"x".to_string()));

        assert_eq!(t.remove(10), Some("x".to_string()));
        assert_eq!(t.remove(10), None);
        assert!(t.is_empty());
        assert_eq!(t.get(99), None);
    }

    #[test]
    fn depth_metrics_observe_without_perturbing() {
        // Contract #11: the armed table computes byte-for-byte what the
        // unarmed table computes, while its distributions fill in.
        let mut armed: CuckooTable<u64> = CuckooTable::new(2, 64, HashKind::Strong, 9).unwrap();
        let mut plain: CuckooTable<u64> = CuckooTable::new(2, 64, HashKind::Strong, 9).unwrap();
        armed.arm_depth_metrics(2);
        assert!(plain.depth_metrics().is_none());

        let mut rng = SplitMix64::new(0xD1);
        let mut inserts = 0u64;
        for _ in 0..96 {
            let key = rng.next_u64() >> 8;
            let a = armed.insert(key, key);
            let b = plain.insert(key, key);
            assert_eq!(a.attempts, b.attempts);
            assert_eq!(a.discarded, b.discarded);
            inserts += 1;
        }
        assert_eq!(armed.len(), plain.len());
        for (key, value) in plain.iter() {
            assert_eq!(armed.get(key), Some(value));
        }

        let metrics = armed.depth_metrics().unwrap();
        assert_eq!(metrics.probe_depth.count(), inserts);
        assert!(metrics.probe_depth.max().unwrap() <= 2);
        // A 2-way table filled past half occupancy must have displaced.
        assert!(metrics.displacement_chain.count() > 0);
        assert_eq!(metrics.bfs_path_depth.count(), 0);

        // Clones carry the recorded distributions; disarming drops them.
        let cloned = armed.clone();
        assert_eq!(cloned.depth_metrics(), armed.depth_metrics());
        armed.disarm_depth_metrics();
        assert!(armed.depth_metrics().is_none());
    }

    #[test]
    fn depth_metrics_record_bfs_paths_under_the_bfs_policy() {
        let mut table: CuckooTable<()> = CuckooTable::new(2, 32, HashKind::Strong, 5).unwrap();
        table.set_insert_policy(InsertPolicy::Bfs);
        table.arm_depth_metrics(2);
        let mut rng = SplitMix64::new(0xB5);
        while table.depth_metrics().unwrap().bfs_path_depth.count() == 0 {
            table.insert(rng.next_u64() >> 8, ());
        }
        let metrics = table.depth_metrics().unwrap();
        assert!(metrics.bfs_path_depth.min().unwrap() >= 1);
        assert_eq!(metrics.probe_depth.count() as usize, {
            // Every insertion-path probe was recorded, hit or miss.
            metrics.probe_depth.iter().map(|(_, n)| n as usize).sum()
        });
    }

    #[test]
    fn all_inserted_keys_are_retrievable_at_half_occupancy() {
        let (table, keys) = filled_table(3, 1024, 1536, 7); // 50% of 3*1024
        assert_eq!(table.len(), keys.len());
        for &k in &keys {
            assert!(table.contains(k), "lost key {k:#x}");
            assert_eq!(table.get(k), Some(&(k * 2)));
        }
        // Iteration covers exactly the stored keys.
        let iterated: HashSet<u64> = table.iter().map(|(k, _)| k).collect();
        assert_eq!(iterated.len(), keys.len());
        for &k in &keys {
            assert!(iterated.contains(&k));
        }
    }

    #[test]
    fn half_occupancy_insertions_never_fail_for_3_ary_and_wider() {
        // The paper's headline claim (Section 5.1): at <= 50% occupancy,
        // 3-ary and wider cuckoo tables never fail an insertion and average
        // about two attempts or fewer.
        for ways in [3usize, 4, 8] {
            let sets = 4096 / ways.next_power_of_two();
            let sets = sets.next_power_of_two();
            let capacity = ways * sets;
            let target = capacity / 2;
            let mut table: CuckooTable<()> =
                CuckooTable::new(ways, sets, HashKind::Strong, 11).unwrap();
            let mut rng = SplitMix64::new(1234);
            let mut total_attempts = 0u64;
            let mut inserted = 0u64;
            while table.len() < target {
                let key = rng.next_u64() >> 8;
                if table.contains(key) {
                    continue;
                }
                let o = table.insert(key, ());
                assert!(
                    o.succeeded(),
                    "{ways}-ary failed at occupancy {}",
                    table.occupancy()
                );
                total_attempts += u64::from(o.attempts);
                inserted += 1;
            }
            let avg = total_attempts as f64 / inserted as f64;
            assert!(avg < 2.0, "{ways}-ary average attempts {avg} too high");
        }
    }

    #[test]
    fn two_ary_tables_fail_at_high_occupancy() {
        // 2-ary cuckoo hashing cannot reach high occupancy: pushing far past
        // 50% must eventually discard entries (Figure 7, 2-ary curve).
        let mut table: CuckooTable<()> = CuckooTable::new(2, 256, HashKind::Strong, 5).unwrap();
        let mut rng = SplitMix64::new(99);
        let mut failures = 0;
        for _ in 0..table.capacity() {
            let key = rng.next_u64() >> 8;
            if table.contains(key) {
                continue;
            }
            if !table.insert(key, ()).succeeded() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "2-ary table should overflow when driven to 100% load"
        );
    }

    #[test]
    fn attempt_budget_is_respected_and_discard_reported() {
        let mut table: CuckooTable<u32> = CuckooTable::new(2, 2, HashKind::Strong, 17).unwrap();
        table.set_max_attempts(4);
        let mut discarded = Vec::new();
        let mut rng = SplitMix64::new(3);
        for i in 0..64u32 {
            let key = rng.next_u64() >> 8;
            let o = table.insert(key, i);
            assert!(o.attempts <= 4);
            if let Some((k, _)) = o.discarded {
                discarded.push(k);
            }
        }
        assert!(
            !discarded.is_empty(),
            "a 4-entry table driven with 64 keys must discard"
        );
        // Table never exceeds its capacity and its length is consistent.
        assert!(table.len() <= table.capacity());
        assert_eq!(table.iter().count(), table.len());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_attempt_budget_is_rejected() {
        let mut table: CuckooTable<()> = CuckooTable::new(2, 4, HashKind::Strong, 0).unwrap();
        table.set_max_attempts(0);
    }

    #[test]
    fn displacement_preserves_all_entries() {
        // Drive a small table to 80% occupancy with 4 ways and verify no
        // entry silently disappears (every non-discarded key remains
        // retrievable even after long displacement chains).
        let (table, keys) = filled_table(4, 64, 204, 21); // ~80% of 256
        for &k in &keys {
            assert!(table.contains(k), "key {k:#x} lost during displacement");
        }
        assert_eq!(table.len(), keys.len());
    }

    #[test]
    fn occupancy_reports_fraction_of_capacity() {
        let mut t: CuckooTable<()> = CuckooTable::new(4, 64, HashKind::Strong, 1).unwrap();
        assert_eq!(t.occupancy(), 0.0);
        let mut rng = SplitMix64::new(8);
        for _ in 0..64 {
            t.insert(rng.next_u64() >> 8, ());
        }
        assert!((t.occupancy() - 0.25).abs() < 0.01);
    }

    // ---- SoA-layout specific tests ----------------------------------------

    #[test]
    fn swar_match_finds_exactly_the_equal_bytes() {
        // One lane per byte: bit 7 of the matching lane is set.
        let word = u64::from_le_bytes([0x81, 0x00, 0x93, 0x81, 0x00, 0xFF, 0x7F, 0x01]);
        let m = swar_match(word, 0x81);
        assert_eq!(m & (1 << 7), 1 << 7, "lane 0 matches");
        assert_eq!(m & (1 << 31), 1 << 31, "lane 3 matches");
        assert_eq!(m & (1 << 15), 0, "empty lane does not match a fingerprint");
        assert_eq!(m & (1 << 23), 0, "different tag does not match");

        // Vacancy scan is exact for the tag alphabet used by the table
        // (0x00 or >= 0x80): only the two empty lanes match.
        let tags = u64::from_le_bytes([0x81, 0x00, 0x93, 0xFF, 0x00, 0x80, 0xA5, 0xC3]);
        let empties = swar_match(tags, EMPTY_TAG);
        assert_eq!(empties, (1 << 15) | (1 << 39));
    }

    #[test]
    fn fingerprints_are_never_the_empty_tag() {
        let mut rng = SplitMix64::new(0xF1);
        // Reduced under Miri, which interprets a few orders of magnitude
        // slower; the property is per-sample, not statistical.
        let samples = if cfg!(miri) { 500 } else { 10_000 };
        for _ in 0..samples {
            let fp = fingerprint(rng.next_u64());
            assert!(fp >= 0x80, "fingerprint {fp:#x} must have the high bit set");
        }
    }

    #[test]
    fn find_or_insert_only_builds_payloads_for_new_keys() {
        let mut t: CuckooTable<Vec<u32>> = CuckooTable::new(4, 64, HashKind::Strong, 9).unwrap();
        let r = t.find_or_insert_with(42, || vec![1]);
        assert!(r.inserted.is_some());
        r.value.push(2);
        // Second call must not invoke `make` and must see the mutation.
        let r = t.find_or_insert_with(42, || panic!("payload must not be rebuilt"));
        assert!(r.inserted.is_none());
        assert_eq!(r.value, &vec![1, 2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn find_or_insert_reports_the_displacement_outcome() {
        // A full 2x2 table with a 2-attempt budget: inserting an absent key
        // must displace and discard, yet the new key stays retrievable and
        // the borrow points at its payload.
        let mut t: CuckooTable<u64> = CuckooTable::new(2, 2, HashKind::Strong, 17).unwrap();
        t.set_max_attempts(2);
        let mut rng = SplitMix64::new(5);
        while t.len() < t.capacity() {
            let key = rng.next_u64() >> 8;
            t.insert(key, key);
        }
        let mut fresh = rng.next_u64() >> 8;
        while t.contains(fresh) {
            fresh = rng.next_u64() >> 8;
        }
        let r = t.find_or_insert_with(fresh, || fresh);
        let outcome = r.inserted.expect("key was absent");
        assert_eq!(*r.value, fresh);
        assert!(outcome.discarded.is_some(), "full table must discard");
        assert!(t.contains(fresh));
        assert_eq!(t.len(), t.capacity());
    }

    #[test]
    fn probe_batch_agrees_with_contains() {
        let (table, keys) = filled_table(4, 256, 512, 31);
        let mut rng = SplitMix64::new(77);
        let queries: Vec<u64> = keys
            .iter()
            .copied()
            .take(100)
            .chain((0..100).map(|_| rng.next_u64() >> 8))
            .collect();
        let mut hits = vec![false; queries.len()];
        table.probe_batch(&queries, &mut hits);
        for (query, hit) in queries.iter().zip(&hits) {
            assert_eq!(*hit, table.contains(*query), "key {query:#x}");
        }
        // Prefetching is a semantic no-op.
        for &query in &queries {
            table.prefetch(query);
        }
        assert_eq!(table.len(), keys.len());
    }

    #[test]
    fn apply_batch_matches_sequential_inserts_exactly() {
        let mut rng = SplitMix64::new(0xBA7C);
        let entries: Vec<(u64, u64)> = (0..600)
            .map(|_| rng.next_u64() >> 40)
            .map(|k| (k, k))
            .collect();

        let mut sequential: CuckooTable<u64> =
            CuckooTable::new(3, 64, HashKind::Strong, 2).unwrap();
        sequential.set_max_attempts(8);
        let expected: Vec<InsertOutcome<u64>> = entries
            .iter()
            .map(|&(k, v)| sequential.insert(k, v))
            .collect();

        let mut batched: CuckooTable<u64> = CuckooTable::new(3, 64, HashKind::Strong, 2).unwrap();
        batched.set_max_attempts(8);
        let mut buffer = entries.clone();
        let mut outcomes = Vec::new();
        batched.apply_batch(&mut buffer, &mut outcomes);
        assert!(buffer.is_empty(), "apply_batch drains its input");
        assert_eq!(outcomes, expected, "batched outcomes must be identical");
        assert_eq!(batched.len(), sequential.len());
        for (k, v) in sequential.iter() {
            assert_eq!(batched.get(k), Some(v));
        }
    }

    #[test]
    fn wide_tables_probe_through_the_chunked_swar_path() {
        // 12 ways exercises the multi-chunk gather (8 + 4 lanes).
        let (table, keys) = filled_table(12, 64, 384, 3);
        for &k in &keys {
            assert!(table.contains(k));
        }
        let mut hits = vec![false; keys.len()];
        table.probe_batch(&keys, &mut hits);
        assert!(hits.iter().all(|&h| h));
    }

    // ---- Probe-variant specific tests -------------------------------------

    #[test]
    fn variant_auto_selection_and_validation() {
        // Non-tagalt families default to the portable SWAR kernel.
        let t: CuckooTable<()> = CuckooTable::new(4, 64, HashKind::Strong, 1).unwrap();
        assert_eq!(t.probe_variant(), ProbeVariant::Swar);
        // tagalt with `ways × block_span <= 64` unlocks the localized layout.
        let t: CuckooTable<()> = CuckooTable::new(4, 64, HashKind::TagAlt, 1).unwrap();
        assert_eq!(t.probe_variant(), ProbeVariant::Localized);
        // Too wide a candidate block falls back to SWAR...
        let t: CuckooTable<()> = CuckooTable::new(8, 64, HashKind::TagAlt, 1).unwrap();
        assert_eq!(t.probe_variant(), ProbeVariant::Swar);
        // ...and explicitly requesting localized there is rejected, as it is
        // for families without block-local candidates.
        assert!(CuckooTable::<()>::with_variant(
            8,
            64,
            HashKind::TagAlt,
            1,
            Some(ProbeVariant::Localized)
        )
        .is_err());
        assert!(CuckooTable::<()>::with_variant(
            4,
            64,
            HashKind::Strong,
            1,
            Some(ProbeVariant::Localized)
        )
        .is_err());
    }

    #[test]
    fn every_variant_matches_swar_on_the_same_op_stream() {
        // Drive the same saturating insert/remove stream through every
        // variant legal for the hash kind and demand bit-identical outcomes
        // (attempts, discards) and contents.
        for kind in [HashKind::Strong, HashKind::TagAlt] {
            let variants: &[ProbeVariant] = if kind == HashKind::TagAlt {
                &[
                    ProbeVariant::Scalar,
                    ProbeVariant::Swar,
                    ProbeVariant::Simd,
                    ProbeVariant::Localized,
                ]
            } else {
                &[ProbeVariant::Scalar, ProbeVariant::Swar, ProbeVariant::Simd]
            };
            let mut tables: Vec<CuckooTable<u64>> = variants
                .iter()
                .map(|&v| CuckooTable::with_variant(4, 16, kind, 7, Some(v)).unwrap())
                .collect();
            for t in &mut tables {
                t.set_max_attempts(6);
            }
            let mut rng = SplitMix64::new(0xD1CE);
            let samples = if cfg!(miri) { 60 } else { 600 };
            for i in 0..samples {
                let key = rng.next_u64() >> 8;
                let outcomes: Vec<InsertOutcome<u64>> =
                    tables.iter_mut().map(|t| t.insert(key, key)).collect();
                for (o, &v) in outcomes.iter().zip(variants).skip(1) {
                    assert_eq!(o, &outcomes[0], "{kind}/{v} diverged at insert {i}");
                }
                if i % 3 == 0 {
                    let doomed = rng.next_u64() >> 8;
                    let removed: Vec<Option<u64>> =
                        tables.iter_mut().map(|t| t.remove(doomed)).collect();
                    for (r, &v) in removed.iter().zip(variants).skip(1) {
                        assert_eq!(r, &removed[0], "{kind}/{v} diverged at remove {i}");
                    }
                }
            }
            let reference: std::collections::BTreeMap<u64, u64> =
                tables[0].iter().map(|(k, &v)| (k, v)).collect();
            for (t, &v) in tables.iter().zip(variants).skip(1) {
                let contents: std::collections::BTreeMap<u64, u64> =
                    t.iter().map(|(k, &v)| (k, v)).collect();
                assert_eq!(contents, reference, "{kind}/{v} contents diverged");
                assert_eq!(t.len(), tables[0].len());
            }
        }
    }

    #[test]
    fn localized_layout_survives_clone_and_high_occupancy() {
        let mut t: CuckooTable<u64> =
            CuckooTable::with_variant(4, 64, HashKind::TagAlt, 3, Some(ProbeVariant::Localized))
                .unwrap();
        let mut rng = SplitMix64::new(0x10C);
        let mut keys = Vec::new();
        // tagalt partitions the table into independent 4x16-slot blocks, so
        // drive by op count rather than to a global fill target.
        for _ in 0..400 {
            let key = rng.next_u64() >> 8;
            let o = t.insert(key, key ^ 1);
            keys.push(key);
            if let Some((lost, _)) = o.discarded {
                keys.retain(|&k| k != lost);
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let cloned = t.clone();
        assert_eq!(cloned.probe_variant(), ProbeVariant::Localized);
        for &k in &keys {
            assert!(t.contains(k), "lost key {k:#x}");
            assert_eq!(cloned.get(k), Some(&(k ^ 1)), "clone lost key {k:#x}");
        }
        assert_eq!(cloned.len(), t.len());
        assert!(t.occupancy() > 0.5, "stream must load the table");
    }

    #[test]
    fn clone_deep_copies_payloads_and_drop_is_balanced() {
        use std::sync::atomic::{AtomicI64, Ordering};
        static LIVE: AtomicI64 = AtomicI64::new(0);

        struct Tracked(u64);
        impl Tracked {
            fn new(v: u64) -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Tracked(v)
            }
        }
        impl Clone for Tracked {
            fn clone(&self) -> Self {
                Tracked::new(self.0)
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }

        {
            let mut t: CuckooTable<Tracked> = CuckooTable::new(2, 4, HashKind::Strong, 1).unwrap();
            t.set_max_attempts(3);
            let mut rng = SplitMix64::new(4);
            for _ in 0..32 {
                let key = rng.next_u64() >> 8;
                // Exercises replace-on-existing, displacement and discard.
                let _ = t.insert(key, Tracked::new(key));
            }
            let live_before_clone = LIVE.load(Ordering::Relaxed);
            assert_eq!(live_before_clone, t.len() as i64);
            {
                let mut cloned = t.clone();
                assert_eq!(LIVE.load(Ordering::Relaxed), 2 * live_before_clone);
                let (some_key, payload) = {
                    let (k, v) = cloned.iter().next().unwrap();
                    (k, v.0)
                };
                assert_eq!(payload, some_key);
                drop(cloned.remove(some_key));
            }
            // The clone and everything it held is gone; the original intact.
            assert_eq!(LIVE.load(Ordering::Relaxed), live_before_clone);
            assert_eq!(t.iter().count(), t.len());
        }
        assert_eq!(LIVE.load(Ordering::Relaxed), 0, "every payload dropped");
    }

    // ---- Insertion-policy and migration tests ------------------------------

    #[test]
    fn bfs_policy_round_trips_and_clones_with_its_scratch() {
        let mut t: CuckooTable<u64> = CuckooTable::new(4, 64, HashKind::Strong, 9).unwrap();
        assert_eq!(t.insert_policy(), InsertPolicy::Greedy);
        t.set_insert_policy(InsertPolicy::Bfs);
        assert_eq!(t.insert_policy(), InsertPolicy::Bfs);
        let mut rng = SplitMix64::new(0xB55);
        let mut keys = Vec::new();
        for _ in 0..200 {
            let key = rng.next_u64() >> 8;
            let o = t.insert(key, key + 1);
            keys.push(key);
            if let Some((lost, _)) = o.discarded {
                keys.retain(|&k| k != lost);
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let cloned = t.clone();
        assert_eq!(cloned.insert_policy(), InsertPolicy::Bfs);
        for &k in &keys {
            assert_eq!(t.get(k), Some(&(k + 1)), "lost key {k:#x}");
            assert_eq!(cloned.get(k), Some(&(k + 1)), "clone lost key {k:#x}");
        }
        assert_eq!(cloned.len(), t.len());
    }

    #[test]
    fn bfs_and_greedy_store_the_same_keys_until_a_discard() {
        // Until a budget actually expires both policies accept every key, so
        // the resident key sets must be identical (placements may differ).
        for kind in [HashKind::Strong, HashKind::TagAlt] {
            let mut greedy: CuckooTable<u64> = CuckooTable::new(4, 64, kind, 13).unwrap();
            let mut bfs: CuckooTable<u64> = CuckooTable::new(4, 64, kind, 13).unwrap();
            bfs.set_insert_policy(InsertPolicy::Bfs);
            let mut rng = SplitMix64::new(0xABCD);
            let samples = if cfg!(miri) { 60 } else { 400 };
            let mut discard_free = 0u32;
            for i in 0..samples {
                let key = rng.next_u64() >> 8;
                let og = greedy.insert(key, key);
                let ob = bfs.insert(key, key);
                if og.discarded.is_some() || ob.discarded.is_some() {
                    // Once either budget expires the discards (and thus the
                    // key sets) may legitimately differ.
                    break;
                }
                discard_free = i + 1;
                assert_eq!(greedy.len(), bfs.len(), "{kind} diverged at insert {i}");
                assert!(greedy.contains(key) && bfs.contains(key));
                let reference: HashSet<u64> = greedy.iter().map(|(k, _)| k).collect();
                let contents: HashSet<u64> = bfs.iter().map(|(k, _)| k).collect();
                assert_eq!(contents, reference, "{kind} key sets diverged at {i}");
            }
            assert!(
                discard_free > 100,
                "{kind}: stream must exercise real displacement before discarding"
            );
        }
    }

    #[test]
    fn bfs_falls_back_to_the_shared_discard_rule() {
        // A saturated 2x2 table with a 2-attempt budget: BFS cannot find a
        // path once every slot is full, so the discard rule must fire and
        // keep the requested key resident.
        let mut t: CuckooTable<u64> = CuckooTable::new(2, 2, HashKind::Strong, 17).unwrap();
        t.set_max_attempts(2);
        t.set_insert_policy(InsertPolicy::Bfs);
        let mut rng = SplitMix64::new(5);
        let mut saw_discard = false;
        for _ in 0..64 {
            let key = rng.next_u64() >> 8;
            let o = t.insert(key, key);
            assert!(o.attempts <= 2);
            if let Some((victim, _)) = o.discarded {
                saw_discard = true;
                assert_ne!(victim, key, "the requested key is never discarded");
                assert!(t.contains(key), "requested block must stay tracked");
                assert!(!t.contains(victim));
            }
            assert!(t.len() <= t.capacity());
        }
        assert!(saw_discard, "a 4-entry table driven with 64 keys discards");
        assert_eq!(t.iter().count(), t.len());
    }

    #[test]
    fn bfs_attempts_never_exceed_the_budget() {
        let mut t: CuckooTable<()> = CuckooTable::new(4, 16, HashKind::TagAlt, 23).unwrap();
        t.set_max_attempts(6);
        t.set_insert_policy(InsertPolicy::Bfs);
        let mut rng = SplitMix64::new(0x6A);
        for _ in 0..400 {
            let o = t.insert(rng.next_u64() >> 8, ());
            assert!((1..=6).contains(&o.attempts));
            if o.discarded.is_some() {
                assert_eq!(o.attempts, 6, "a discard always reports max attempts");
            }
        }
    }

    #[test]
    fn migrate_into_preserves_contents_and_empties_the_source() {
        let (mut source, keys) = filled_table(4, 64, 200, 41);
        let mut target: CuckooTable<u64> = CuckooTable::new(4, 128, HashKind::TagAlt, 42).unwrap();
        let discarded = source.migrate_into(&mut target);
        assert!(discarded.is_empty(), "a 2x-larger target never discards");
        assert!(source.is_empty());
        assert_eq!(target.len(), keys.len());
        for &k in &keys {
            assert_eq!(target.get(k), Some(&(k * 2)), "migration lost {k:#x}");
        }
    }

    #[test]
    fn migrate_into_reports_discards_from_an_undersized_target() {
        let (mut source, keys) = filled_table(4, 64, 200, 43);
        let mut target: CuckooTable<u64> = CuckooTable::new(2, 16, HashKind::Strong, 44).unwrap();
        target.set_max_attempts(4);
        let discarded = source.migrate_into(&mut target);
        assert!(source.is_empty());
        assert!(
            !discarded.is_empty(),
            "200 entries cannot fit a 32-slot target"
        );
        assert_eq!(target.len() + discarded.len(), keys.len());
        for &(k, v) in &discarded {
            assert_eq!(v, k * 2, "discards carry their payloads");
            assert!(!target.contains(k));
        }
    }

    #[test]
    fn migrate_into_is_deterministic() {
        let (mut a, _) = filled_table(4, 64, 200, 45);
        let mut b = a.clone();
        let mut ta: CuckooTable<u64> = CuckooTable::new(4, 128, HashKind::Strong, 46).unwrap();
        let mut tb: CuckooTable<u64> = CuckooTable::new(4, 128, HashKind::Strong, 46).unwrap();
        assert_eq!(a.migrate_into(&mut ta), b.migrate_into(&mut tb));
        let ca: Vec<(u64, u64)> = ta.iter().map(|(k, &v)| (k, v)).collect();
        let cb: Vec<(u64, u64)> = tb.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(ca, cb, "identical sources migrate identically");
    }
}
