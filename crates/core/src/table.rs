//! The raw d-ary cuckoo hash table.
//!
//! This is the structure whose intrinsic behaviour Figure 7 of the paper
//! characterizes: `d` direct-mapped ways indexed by independent hash
//! functions, with displacement-based insertion and a bounded attempt
//! budget.  [`CuckooDirectory`](crate::CuckooDirectory) layers directory
//! semantics (sharer sets, coherence statistics) on top of this table; the
//! hash-characterization experiments use the table directly with `()`
//! payloads.
//!
//! # Insertion-attempt accounting
//!
//! The accounting matches Section 5.2 of the paper:
//!
//! * a lookup always precedes an insertion, and implicitly reveals whether
//!   any of the entry's `d` candidate slots is vacant — when one is, the
//!   insertion "succeeds on the first attempt, contributing one toward the
//!   average";
//! * otherwise each displacement round (writing the in-flight entry into one
//!   way and probing the displaced victim's candidate slots) adds one
//!   attempt;
//! * when the attempt budget is exhausted the most recently displaced entry
//!   is discarded and reported so the caller can invalidate the
//!   corresponding cached blocks (Section 4.2).
//!
//! To keep entries uniformly distributed across the ways, each insertion's
//! displacement chain starts at the way where the previous chain stopped.

use ccd_common::{ConfigError, LineAddr};
use ccd_hash::{HashFamily, HashKind, IndexHashFamily};

/// One stored element: the key (a block number / opaque 64-bit key) plus a
/// caller-supplied payload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Slot<V> {
    key: u64,
    value: V,
}

/// The outcome of inserting a new key into a [`CuckooTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertOutcome<V> {
    /// Number of insertion attempts performed (≥ 1).
    pub attempts: u32,
    /// The key/value pair that had to be discarded because the attempt
    /// budget was exhausted, if any.  `None` means every entry found a home.
    pub discarded: Option<(u64, V)>,
}

impl<V> InsertOutcome<V> {
    /// `true` when the insertion placed every entry without discarding one.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.discarded.is_none()
    }
}

/// A d-ary cuckoo hash table with bounded displacement insertion.
///
/// ```
/// use ccd_cuckoo::CuckooTable;
/// use ccd_hash::HashKind;
///
/// let mut table: CuckooTable<()> = CuckooTable::new(4, 1024, HashKind::Strong, 1)?;
/// let outcome = table.insert(0xabcdef, ());
/// assert!(outcome.succeeded());
/// assert!(table.contains(0xabcdef));
/// assert_eq!(table.len(), 1);
/// # Ok::<(), ccd_common::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CuckooTable<V> {
    ways: usize,
    sets: usize,
    hashes: HashFamily,
    slots: Vec<Option<Slot<V>>>,
    valid: usize,
    max_attempts: u32,
    next_start_way: usize,
}

impl<V> CuckooTable<V> {
    /// Creates an empty table of `ways` direct-mapped tables with `sets`
    /// entries each, indexed by the `kind` hash family seeded with `seed`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::TooSmall`] if `ways < 2`,
    /// * plus the hash family's own validation errors (zero/`!pow2` sets).
    pub fn new(ways: usize, sets: usize, kind: HashKind, seed: u64) -> Result<Self, ConfigError> {
        if ways < 2 {
            return Err(ConfigError::TooSmall {
                what: "ways",
                value: ways as u64,
                min: 2,
            });
        }
        let hashes = HashFamily::with_seed(kind, ways, sets, seed)?;
        Ok(CuckooTable {
            ways,
            sets,
            hashes,
            slots: (0..ways * sets).map(|_| None).collect(),
            valid: 0,
            max_attempts: crate::config::DEFAULT_MAX_ATTEMPTS,
            next_start_way: 0,
        })
    }

    /// Sets the insertion-attempt budget (default 32).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn set_max_attempts(&mut self, max_attempts: u32) {
        assert!(max_attempts > 0, "attempt budget must be non-zero");
        self.max_attempts = max_attempts;
    }

    /// Number of ways.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Entries per way.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total capacity (`ways × sets`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ways * self.sets
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// `true` when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// Current occupancy (0.0 ..= 1.0).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.valid as f64 / self.capacity() as f64
    }

    fn slot_index(&self, way: usize, key: u64) -> usize {
        way * self.sets + self.hashes.index(way, LineAddr::from_block_number(key))
    }

    /// Finds the slot currently holding `key`, if any.
    fn find(&self, key: u64) -> Option<usize> {
        (0..self.ways)
            .map(|w| self.slot_index(w, key))
            .find(|&slot| matches!(&self.slots[slot], Some(s) if s.key == key))
    }

    /// Finds a vacant candidate slot for `key`, preferring lower-numbered
    /// ways (all ways are probed in parallel in hardware, so the choice is
    /// arbitrary; a fixed preference keeps behaviour deterministic).
    fn find_vacant(&self, key: u64) -> Option<usize> {
        (0..self.ways)
            .map(|w| self.slot_index(w, key))
            .find(|&slot| self.slots[slot].is_none())
    }

    /// Returns `true` when `key` is present.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Returns a reference to the payload stored for `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .map(|slot| &self.slots[slot].as_ref().unwrap().value)
    }

    /// Returns a mutable reference to the payload stored for `key`.
    #[must_use]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let slot = self.find(key)?;
        Some(&mut self.slots[slot].as_mut().unwrap().value)
    }

    /// Removes `key`, returning its payload.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.find(key)?;
        let entry = self.slots[slot].take().expect("slot is valid");
        self.valid -= 1;
        Some(entry.value)
    }

    /// Iterates over `(key, &payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (s.key, &s.value)))
    }

    /// Inserts `key` with `value`, displacing existing entries as needed.
    ///
    /// If `key` is already present its payload is replaced and the insertion
    /// counts one attempt.  When the attempt budget is exhausted the most
    /// recently displaced entry is discarded and returned in
    /// [`InsertOutcome::discarded`]; `key` itself is always stored.
    pub fn insert(&mut self, key: u64, value: V) -> InsertOutcome<V> {
        // The lookup that precedes every insertion.
        if let Some(slot) = self.find(key) {
            self.slots[slot].as_mut().expect("slot is valid").value = value;
            return InsertOutcome {
                attempts: 1,
                discarded: None,
            };
        }

        // Vacant candidate revealed by the lookup: first-attempt success.
        if let Some(slot) = self.find_vacant(key) {
            self.slots[slot] = Some(Slot { key, value });
            self.valid += 1;
            return InsertOutcome {
                attempts: 1,
                discarded: None,
            };
        }

        // Displacement chain.  `current` is the in-flight entry looking for
        // a home; we kick out victims round-robin starting at the way where
        // the previous insertion stopped.
        let mut attempts: u32 = 1;
        let mut current = Slot { key, value };
        let mut way = self.next_start_way;
        self.valid += 1; // `key` will end up stored; track it now.
        loop {
            if attempts >= self.max_attempts {
                // Budget exhausted: discard the most recently displaced
                // entry to guarantee termination.  The incoming request is
                // never the one discarded — if the chain circled back to it,
                // perform one final displacement so the requested block stays
                // tracked and the displaced victim is invalidated instead.
                self.next_start_way = way;
                self.valid -= 1;
                if current.key == key {
                    let slot = self.slot_index(way, current.key);
                    let victim = self.slots[slot]
                        .replace(current)
                        .expect("displacement only happens into occupied slots");
                    return InsertOutcome {
                        attempts,
                        discarded: Some((victim.key, victim.value)),
                    };
                }
                return InsertOutcome {
                    attempts,
                    discarded: Some((current.key, current.value)),
                };
            }

            // Write the in-flight entry into its candidate slot in `way`,
            // displacing whatever lives there.
            let slot = self.slot_index(way, current.key);
            let displaced = self.slots[slot].replace(current);
            attempts += 1;

            let victim = displaced.expect("displacement only happens into occupied slots");

            // Probe the victim's candidate slots for a vacancy.
            if let Some(vacant) = self.find_vacant(victim.key) {
                self.slots[vacant] = Some(victim);
                self.next_start_way = way;
                return InsertOutcome {
                    attempts,
                    discarded: None,
                };
            }

            // No vacancy: the victim becomes the in-flight entry and we move
            // on to the next way.
            current = victim;
            way = (way + 1) % self.ways;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64};
    use std::collections::HashSet;

    fn filled_table(
        ways: usize,
        sets: usize,
        fill: usize,
        seed: u64,
    ) -> (CuckooTable<u64>, Vec<u64>) {
        let mut table = CuckooTable::new(ways, sets, HashKind::Strong, seed).unwrap();
        let mut rng = SplitMix64::new(seed ^ 0x55aa);
        let mut keys = Vec::new();
        while keys.len() < fill {
            let key = rng.next_u64() >> 8;
            if table.contains(key) {
                continue;
            }
            let outcome = table.insert(key, key * 2);
            keys.push(key);
            if let Some((lost, _)) = outcome.discarded {
                keys.retain(|&k| k != lost);
            }
        }
        (table, keys)
    }

    #[test]
    fn construction_validation() {
        assert!(CuckooTable::<()>::new(1, 64, HashKind::Strong, 0).is_err());
        assert!(CuckooTable::<()>::new(3, 100, HashKind::Strong, 0).is_err());
        assert!(CuckooTable::<()>::new(3, 128, HashKind::Strong, 0).is_ok());
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t: CuckooTable<String> = CuckooTable::new(2, 64, HashKind::Strong, 3).unwrap();
        assert!(t.is_empty());
        let o = t.insert(10, "ten".to_string());
        assert_eq!(o.attempts, 1);
        assert!(o.succeeded());
        assert_eq!(t.get(10), Some(&"ten".to_string()));
        *t.get_mut(10).unwrap() = "TEN".to_string();
        assert_eq!(t.get(10), Some(&"TEN".to_string()));

        // Re-inserting an existing key replaces its payload.
        let o = t.insert(10, "x".to_string());
        assert_eq!(o.attempts, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(10), Some(&"x".to_string()));

        assert_eq!(t.remove(10), Some("x".to_string()));
        assert_eq!(t.remove(10), None);
        assert!(t.is_empty());
        assert_eq!(t.get(99), None);
    }

    #[test]
    fn all_inserted_keys_are_retrievable_at_half_occupancy() {
        let (table, keys) = filled_table(3, 1024, 1536, 7); // 50% of 3*1024
        assert_eq!(table.len(), keys.len());
        for &k in &keys {
            assert!(table.contains(k), "lost key {k:#x}");
            assert_eq!(table.get(k), Some(&(k * 2)));
        }
        // Iteration covers exactly the stored keys.
        let iterated: HashSet<u64> = table.iter().map(|(k, _)| k).collect();
        assert_eq!(iterated.len(), keys.len());
        for &k in &keys {
            assert!(iterated.contains(&k));
        }
    }

    #[test]
    fn half_occupancy_insertions_never_fail_for_3_ary_and_wider() {
        // The paper's headline claim (Section 5.1): at <= 50% occupancy,
        // 3-ary and wider cuckoo tables never fail an insertion and average
        // about two attempts or fewer.
        for ways in [3usize, 4, 8] {
            let sets = 4096 / ways.next_power_of_two();
            let sets = sets.next_power_of_two();
            let capacity = ways * sets;
            let target = capacity / 2;
            let mut table: CuckooTable<()> =
                CuckooTable::new(ways, sets, HashKind::Strong, 11).unwrap();
            let mut rng = SplitMix64::new(1234);
            let mut total_attempts = 0u64;
            let mut inserted = 0u64;
            while table.len() < target {
                let key = rng.next_u64() >> 8;
                if table.contains(key) {
                    continue;
                }
                let o = table.insert(key, ());
                assert!(
                    o.succeeded(),
                    "{ways}-ary failed at occupancy {}",
                    table.occupancy()
                );
                total_attempts += u64::from(o.attempts);
                inserted += 1;
            }
            let avg = total_attempts as f64 / inserted as f64;
            assert!(avg < 2.0, "{ways}-ary average attempts {avg} too high");
        }
    }

    #[test]
    fn two_ary_tables_fail_at_high_occupancy() {
        // 2-ary cuckoo hashing cannot reach high occupancy: pushing far past
        // 50% must eventually discard entries (Figure 7, 2-ary curve).
        let mut table: CuckooTable<()> = CuckooTable::new(2, 256, HashKind::Strong, 5).unwrap();
        let mut rng = SplitMix64::new(99);
        let mut failures = 0;
        for _ in 0..table.capacity() {
            let key = rng.next_u64() >> 8;
            if table.contains(key) {
                continue;
            }
            if !table.insert(key, ()).succeeded() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "2-ary table should overflow when driven to 100% load"
        );
    }

    #[test]
    fn attempt_budget_is_respected_and_discard_reported() {
        let mut table: CuckooTable<u32> = CuckooTable::new(2, 2, HashKind::Strong, 17).unwrap();
        table.set_max_attempts(4);
        let mut discarded = Vec::new();
        let mut rng = SplitMix64::new(3);
        for i in 0..64u32 {
            let key = rng.next_u64() >> 8;
            let o = table.insert(key, i);
            assert!(o.attempts <= 4);
            if let Some((k, _)) = o.discarded {
                discarded.push(k);
            }
        }
        assert!(
            !discarded.is_empty(),
            "a 4-entry table driven with 64 keys must discard"
        );
        // Table never exceeds its capacity and its length is consistent.
        assert!(table.len() <= table.capacity());
        assert_eq!(table.iter().count(), table.len());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_attempt_budget_is_rejected() {
        let mut table: CuckooTable<()> = CuckooTable::new(2, 4, HashKind::Strong, 0).unwrap();
        table.set_max_attempts(0);
    }

    #[test]
    fn displacement_preserves_all_entries() {
        // Drive a small table to 80% occupancy with 4 ways and verify no
        // entry silently disappears (every non-discarded key remains
        // retrievable even after long displacement chains).
        let (table, keys) = filled_table(4, 64, 204, 21); // ~80% of 256
        for &k in &keys {
            assert!(table.contains(k), "key {k:#x} lost during displacement");
        }
        assert_eq!(table.len(), keys.len());
    }

    #[test]
    fn occupancy_reports_fraction_of_capacity() {
        let mut t: CuckooTable<()> = CuckooTable::new(4, 64, HashKind::Strong, 1).unwrap();
        assert_eq!(t.occupancy(), 0.0);
        let mut rng = SplitMix64::new(8);
        for _ in 0..64 {
            t.insert(rng.next_u64() >> 8, ());
        }
        assert!((t.occupancy() - 0.25).abs() < 0.01);
    }
}
