//! Runtime-dispatched vector kernels for tag probing.
//!
//! The probe variants of [`crate::table::CuckooTable`] reduce to one
//! primitive: *which bytes of this ≤64-byte tag span equal a needle byte?*
//! This module answers it with the best instruction set the host offers —
//! sse2 (the x86_64 baseline), avx2 (runtime-detected), or neon (the
//! aarch64 baseline) — behind one-time feature detection, with an exact
//! portable byte loop as the fallback and as the Miri path (`cfg(miri)`
//! compiles the intrinsics out entirely, the same pattern as
//! `ccd_common::prefetch`).
//!
//! This is the **only** module in the workspace allowed to use `std::arch`,
//! `is_x86_feature_detected!`, or `#[target_feature]` (plus the prefetch
//! hint in `ccd-common`); ccd-lint's `arch-confinement` rule enforces the
//! boundary.  Every kernel returns the same bit-exact mask as
//! [`eq_mask_portable`], so engine selection can never change behaviour —
//! only how fast the mask is produced.

/// Which vector instruction set the probe kernels run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VectorEngine {
    /// Exact scalar byte loop — always available, and forced under Miri.
    Portable,
    /// 16-byte `_mm_cmpeq_epi8`/`_mm_movemask_epi8` (x86_64 baseline).
    Sse2,
    /// 32-byte `_mm256_cmpeq_epi8` (runtime-detected).
    Avx2,
    /// 16-byte `vceqq_u8` with a bit-position horizontal add (aarch64
    /// baseline).
    Neon,
}

impl VectorEngine {
    /// Selects the best engine for the host CPU.
    ///
    /// The x86_64 check consults `is_x86_feature_detected!` (itself cached
    /// by std) once per call site; tables cache the result in a field, so
    /// detection runs once per table, not per probe.  Under Miri every
    /// intrinsic path is compiled out and the portable loop is selected —
    /// the dispatch decision itself is what the Miri suite exercises.
    #[must_use]
    pub fn detect() -> VectorEngine {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if is_x86_feature_detected!("avx2") {
                return VectorEngine::Avx2;
            }
            return VectorEngine::Sse2;
        }
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        {
            return VectorEngine::Neon;
        }
        #[allow(unreachable_code)]
        VectorEngine::Portable
    }

    /// The engine's spec-string-style name (bench row labels).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VectorEngine::Portable => "portable",
            VectorEngine::Sse2 => "sse2",
            VectorEngine::Avx2 => "avx2",
            VectorEngine::Neon => "neon",
        }
    }

    /// Returns a bitmask with bit `i` set iff `bytes[i] == needle`.
    ///
    /// `bytes` must be at most 64 bytes long (one cache line of tags) so
    /// the mask fits a `u64`; bits at and above `bytes.len()` are zero.
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is longer than 64.
    #[inline]
    #[must_use]
    pub fn eq_mask(self, bytes: &[u8], needle: u8) -> u64 {
        assert!(bytes.len() <= 64, "tag span of {} bytes", bytes.len());
        match self {
            VectorEngine::Portable => eq_mask_portable(bytes, needle),
            VectorEngine::Sse2 => {
                #[cfg(all(target_arch = "x86_64", not(miri)))]
                {
                    return eq_mask_sse2(bytes, needle);
                }
                #[allow(unreachable_code)]
                eq_mask_portable(bytes, needle)
            }
            VectorEngine::Avx2 => {
                #[cfg(all(target_arch = "x86_64", not(miri)))]
                {
                    // SAFETY: the Avx2 engine is only ever constructed by
                    // `detect()` after `is_x86_feature_detected!("avx2")`
                    // confirmed the host supports the avx2 target feature.
                    return unsafe { eq_mask_avx2(bytes, needle) };
                }
                #[allow(unreachable_code)]
                eq_mask_portable(bytes, needle)
            }
            VectorEngine::Neon => {
                #[cfg(all(target_arch = "aarch64", not(miri)))]
                {
                    return eq_mask_neon(bytes, needle);
                }
                #[allow(unreachable_code)]
                eq_mask_portable(bytes, needle)
            }
        }
    }
}

/// The reference kernel: exact byte-by-byte equality mask.
#[inline]
#[must_use]
pub fn eq_mask_portable(bytes: &[u8], needle: u8) -> u64 {
    let mut mask = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        mask |= u64::from(b == needle) << i;
    }
    mask
}

/// sse2 kernel: 16-byte compare + movemask per chunk.  Partial tail chunks
/// go through a zero-padded stack buffer with the pad lanes masked off, so
/// a `needle` of zero cannot over-report.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn eq_mask_sse2(bytes: &[u8], needle: u8) -> u64 {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8};
    let mut mask = 0u64;
    for (chunk_idx, chunk) in bytes.chunks(16).enumerate() {
        let bits = if chunk.len() == 16 {
            // SAFETY: sse2 is part of the x86_64 baseline feature set, and
            // `chunk` is a 16-byte in-bounds slice; `_mm_loadu_si128` has
            // no alignment requirement.
            unsafe {
                let v = _mm_loadu_si128(chunk.as_ptr().cast());
                let eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(needle as i8));
                _mm_movemask_epi8(eq) as u32
            }
        } else {
            let mut buf = [0u8; 16];
            buf[..chunk.len()].copy_from_slice(chunk);
            // SAFETY: as above — baseline sse2 on a 16-byte stack buffer.
            let all = unsafe {
                let v = _mm_loadu_si128(buf.as_ptr().cast());
                let eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(needle as i8));
                _mm_movemask_epi8(eq) as u32
            };
            all & ((1u32 << chunk.len()) - 1)
        };
        mask |= u64::from(bits) << (chunk_idx * 16);
    }
    mask
}

/// avx2 kernel: 32-byte compare + movemask per chunk.  Partial tail chunks
/// go through a zero-padded stack buffer with the pad lanes masked off.
///
/// # Safety
///
/// The caller must have verified that the host supports avx2 (the
/// [`VectorEngine::Avx2`] dispatch path does, via runtime detection).
// SAFETY: the whole body is straight-line intrinsic work over in-bounds
// slices and stack buffers (unaligned loads, no pointer arithmetic); the
// only obligation is the avx2 target feature, which the one construction
// site of `VectorEngine::Avx2` established with runtime detection.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn eq_mask_avx2(bytes: &[u8], needle: u8) -> u64 {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_set1_epi8,
    };
    let splat = _mm256_set1_epi8(needle as i8);
    let mut mask = 0u64;
    for (chunk_idx, chunk) in bytes.chunks(32).enumerate() {
        let bits = if chunk.len() == 32 {
            let eq = _mm256_cmpeq_epi8(_mm256_loadu_si256(chunk.as_ptr().cast()), splat);
            _mm256_movemask_epi8(eq) as u32
        } else {
            let mut buf = [0u8; 32];
            buf[..chunk.len()].copy_from_slice(chunk);
            let eq = _mm256_cmpeq_epi8(_mm256_loadu_si256(buf.as_ptr().cast()), splat);
            (_mm256_movemask_epi8(eq) as u32) & ((1u32 << chunk.len()) - 1)
        };
        mask |= u64::from(bits) << (chunk_idx * 32);
    }
    mask
}

/// neon kernel: 16-byte `vceqq_u8`, then a bit-position AND + horizontal
/// add to emulate movemask (the per-lane bit values are distinct, so the
/// adds cannot carry and the sum *is* the OR).
#[cfg(all(target_arch = "aarch64", not(miri)))]
#[inline]
fn eq_mask_neon(bytes: &[u8], needle: u8) -> u64 {
    use std::arch::aarch64::{
        vaddv_u8, vandq_u8, vceqq_u8, vdupq_n_u8, vget_high_u8, vget_low_u8, vld1q_u8,
    };
    const BIT_POS: [u8; 16] = [1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128];
    let mut mask = 0u64;
    for (chunk_idx, chunk) in bytes.chunks(16).enumerate() {
        let mut buf = [0u8; 16];
        buf[..chunk.len()].copy_from_slice(chunk);
        // SAFETY: neon is part of the aarch64 baseline feature set, and
        // both loads read 16 in-bounds bytes from stack arrays.
        let bits = unsafe {
            let v = vld1q_u8(buf.as_ptr());
            let eq = vceqq_u8(v, vdupq_n_u8(needle));
            let sel = vandq_u8(eq, vld1q_u8(BIT_POS.as_ptr()));
            u32::from(vaddv_u8(vget_low_u8(sel))) | (u32::from(vaddv_u8(vget_high_u8(sel))) << 8)
        };
        let bits = if chunk.len() == 16 {
            bits
        } else {
            bits & ((1u32 << chunk.len()) - 1)
        };
        mask |= u64::from(bits) << (chunk_idx * 16);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64};

    /// Every constructible engine on this host, always including Portable.
    fn engines() -> Vec<VectorEngine> {
        let detected = VectorEngine::detect();
        let mut all = vec![VectorEngine::Portable];
        if detected != VectorEngine::Portable {
            all.push(detected);
            // On x86_64 the sse2 kernel is baseline — exercise it even
            // when detection prefers avx2.
            if detected == VectorEngine::Avx2 {
                all.push(VectorEngine::Sse2);
            }
        }
        all
    }

    #[test]
    fn miri_forces_the_portable_engine() {
        if cfg!(miri) {
            assert_eq!(VectorEngine::detect(), VectorEngine::Portable);
        }
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(VectorEngine::detect(), VectorEngine::detect());
        assert!(!VectorEngine::detect().name().is_empty());
    }

    #[test]
    fn every_engine_matches_the_portable_reference() {
        let mut rng = SplitMix64::new(0x51D);
        let trials = if cfg!(miri) { 50 } else { 2000 };
        for _ in 0..trials {
            let len = (rng.next_u64() % 65) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| (rng.next_u64() % 4) as u8 * 0x40)
                .collect();
            for needle in [0u8, 0x40, 0x80, 0xC0, 0xFF] {
                let want = eq_mask_portable(&bytes, needle);
                for engine in engines() {
                    assert_eq!(
                        engine.eq_mask(&bytes, needle),
                        want,
                        "{} diverged on len {len} needle {needle:#x}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn masks_are_exact_at_the_boundaries() {
        for engine in engines() {
            assert_eq!(engine.eq_mask(&[], 0), 0, "{}", engine.name());
            assert_eq!(engine.eq_mask(&[7], 7), 1, "{}", engine.name());
            let all = vec![0xAAu8; 64];
            assert_eq!(engine.eq_mask(&all, 0xAA), u64::MAX, "{}", engine.name());
            assert_eq!(engine.eq_mask(&all, 0xAB), 0, "{}", engine.name());
            // A zero needle must not match zero padding beyond the span.
            let tail = vec![0u8; 17];
            assert_eq!(engine.eq_mask(&tail, 0), (1 << 17) - 1, "{}", engine.name());
        }
    }

    #[test]
    #[should_panic(expected = "tag span")]
    fn oversized_spans_are_rejected() {
        let _ = VectorEngine::Portable.eq_mask(&[0u8; 65], 0);
    }
}
