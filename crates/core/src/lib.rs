//! The Cuckoo directory — the primary contribution of *Cuckoo Directory: A
//! Scalable Directory for Many-Core Systems* (HPCA 2011).
//!
//! A Cuckoo directory slice is a *d-ary cuckoo hash table* (Fotakis et al.)
//! used as a coherence-directory tag store: `d` direct-mapped ways, each
//! indexed through a different hash function.  Lookups probe all ways in
//! parallel, exactly like a skewed-associative structure, so lookup energy
//! and latency match a conventional 3/4-way set-associative directory.  The
//! difference is the *insertion* procedure (Section 4 of the paper): instead
//! of evicting a victim from the small set of conflicting entries, the
//! Cuckoo directory *displaces* the victim into one of its alternate ways,
//! iterating until some displaced entry lands in a vacant slot.  Below
//! ~50 % occupancy this practically never fails, so the directory avoids the
//! forced invalidations that plague Sparse directories without
//! over-provisioning capacity.
//!
//! The crate provides two layers:
//!
//! * [`CuckooTable`] — the raw d-ary cuckoo hash table (keys plus an
//!   arbitrary payload), exposing insertion-attempt counts and failure
//!   statistics.  This is the structure characterized in Figure 7.
//! * [`CuckooDirectory`] — a full coherence-directory slice built on the
//!   table, implementing the common [`ccd_directory::Directory`] trait so it
//!   can be dropped into the coherence simulator next to the Sparse, Skewed,
//!   Duplicate-Tag, In-Cache and Tagless baselines.
//!
//! # Quick start
//!
//! ```
//! use ccd_common::{CacheId, LineAddr};
//! use ccd_cuckoo::{CuckooConfig, CuckooDirectory};
//! use ccd_directory::Directory;
//! use ccd_sharers::FullBitVector;
//!
//! // The paper's Shared-L2 configuration: a 4-way x 512-set slice (1x
//! // provisioning for a 16-core CMP with 32 L1 caches).
//! let config = CuckooConfig::new(4, 512, 32);
//! let mut dir = CuckooDirectory::<FullBitVector>::new(config)?;
//!
//! let line = LineAddr::from_block_number(0x40_1234);
//! let outcome = dir.add_sharer(line, CacheId::new(7));
//! assert!(outcome.allocated_new_entry);
//! assert_eq!(outcome.insertion_attempts, 1);
//! assert_eq!(dir.sharers(line), Some(vec![CacheId::new(7)]));
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod directory;
pub mod table;

pub use config::CuckooConfig;
pub use directory::CuckooDirectory;
pub use table::{CuckooTable, InsertOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_directory::Directory;
    use ccd_sharers::FullBitVector;

    #[test]
    fn crate_level_wiring_smoke_test() {
        let dir =
            CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 64, 8)).expect("valid");
        assert_eq!(dir.capacity(), 256);
        assert!(dir.is_empty());
    }
}
