//! The Cuckoo directory — the primary contribution of *Cuckoo Directory: A
//! Scalable Directory for Many-Core Systems* (HPCA 2011).
//!
//! A Cuckoo directory slice is a *d-ary cuckoo hash table* (Fotakis et al.)
//! used as a coherence-directory tag store: `d` direct-mapped ways, each
//! indexed through a different hash function.  Lookups probe all ways in
//! parallel, exactly like a skewed-associative structure, so lookup energy
//! and latency match a conventional 3/4-way set-associative directory.  The
//! difference is the *insertion* procedure (Section 4 of the paper): instead
//! of evicting a victim from the small set of conflicting entries, the
//! Cuckoo directory *displaces* the victim into one of its alternate ways,
//! iterating until some displaced entry lands in a vacant slot.  Below
//! ~50 % occupancy this practically never fails, so the directory avoids the
//! forced invalidations that plague Sparse directories without
//! over-provisioning capacity.
//!
//! The crate provides two layers:
//!
//! * [`CuckooTable`] — the raw d-ary cuckoo hash table (keys plus an
//!   arbitrary payload), exposing insertion-attempt counts and failure
//!   statistics.  This is the structure characterized in Figure 7.
//! * [`CuckooDirectory`] — a full coherence-directory slice built on the
//!   table, implementing the common [`ccd_directory::Directory`] trait so it
//!   can be dropped into the coherence simulator next to the Sparse, Skewed,
//!   Duplicate-Tag, In-Cache and Tagless baselines.
//!
//! # Quick start
//!
//! ```
//! use ccd_common::{CacheId, LineAddr};
//! use ccd_cuckoo::{CuckooConfig, CuckooDirectory};
//! use ccd_directory::Directory;
//! use ccd_sharers::FullBitVector;
//!
//! // The paper's Shared-L2 configuration: a 4-way x 512-set slice (1x
//! // provisioning for a 16-core CMP with 32 L1 caches).
//! let config = CuckooConfig::new(4, 512, 32);
//! let mut dir = CuckooDirectory::<FullBitVector>::new(config)?;
//!
//! let line = LineAddr::from_block_number(0x40_1234);
//! let outcome = dir.add_sharer(line, CacheId::new(7));
//! assert!(outcome.allocated_new_entry);
//! assert_eq!(outcome.insertion_attempts, 1);
//! assert_eq!(dir.sharers(line), Some(vec![CacheId::new(7)]));
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod directory;
#[doc(hidden)]
pub mod seed_reference;
pub mod simd;
pub mod table;

pub use config::CuckooConfig;
pub use directory::CuckooDirectory;
pub use simd::VectorEngine;
pub use table::{CuckooTable, FindOrInsert, InsertOutcome, PREFETCH_WINDOW};

use ccd_common::ConfigError;
use ccd_directory::{match_sharer_format, BuilderRegistry, Directory, DirectorySpec};
use ccd_hash::HashKind;

/// The registry builder for `cuckoo-WxS[-hash][-probe][-policy]` specs.
fn build_cuckoo(spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
    let mut config = CuckooConfig::new(spec.ways, spec.sets, spec.caches)
        .with_hash_kind(spec.hash.unwrap_or(HashKind::Skewing))
        .with_insert_policy(spec.policy);
    if let Some(probe) = spec.probe {
        config = config.with_probe(probe);
    }
    Ok(match_sharer_format!(spec.sharers, S => {
        Box::new(CuckooDirectory::<S>::new(config)?)
    }))
}

/// Registers the Cuckoo directory (`cuckoo`) in `registry`.
pub fn register_cuckoo(registry: &mut BuilderRegistry) {
    registry.register("cuckoo", build_cuckoo);
}

/// A [`BuilderRegistry`] covering all six directory organizations of the
/// paper's evaluation: the five baselines plus the Cuckoo directory.
///
/// ```
/// let registry = ccd_cuckoo::standard_registry();
/// let dir = registry.build_str("cuckoo-4x512-skew").unwrap();
/// assert_eq!(dir.capacity(), 2048);
/// ```
#[must_use]
pub fn standard_registry() -> BuilderRegistry {
    let mut registry = BuilderRegistry::with_baselines();
    register_cuckoo(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_directory::Directory;
    use ccd_sharers::FullBitVector;

    #[test]
    fn crate_level_wiring_smoke_test() {
        let dir =
            CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 64, 8)).expect("valid");
        assert_eq!(dir.capacity(), 256);
        assert!(dir.is_empty());
    }

    #[test]
    fn standard_registry_builds_all_six_organizations() {
        let registry = standard_registry();
        for spec in [
            "cuckoo-4x512-skew",
            "sparse-8x256",
            "skewed-4x256",
            "duplicate-tag-2x64",
            "in-cache-16x64",
            "tagless-2x64",
        ] {
            let dir = registry.build_str(spec).expect(spec);
            assert!(dir.capacity() > 0, "{spec}");
        }
        assert_eq!(registry.names().count(), 6);
    }

    #[test]
    fn sharded_cuckoo_aggregates_insertion_failures() {
        use ccd_common::rng::{Rng64, SplitMix64};
        use ccd_common::{CacheId, LineAddr};
        use ccd_directory::ShardedDirectory;

        let registry = standard_registry();
        let slices: Vec<Box<dyn Directory>> = (0..4)
            .map(|_| registry.build_str("cuckoo-2x8-strong-c4").unwrap())
            .collect();
        let mut dir = ShardedDirectory::new(slices).unwrap();
        // Drive far past the 64-entry total capacity so attempt budgets run
        // out and shards discard entries.
        let mut rng = SplitMix64::new(99);
        for _ in 0..600 {
            let line = LineAddr::from_block_number(rng.next_below(100_000));
            dir.add_sharer(line, CacheId::new(rng.next_below(4) as u32));
        }
        let aggregated = dir.stats().insertion_failures.get();
        let per_shard: u64 = dir
            .shards()
            .iter()
            .map(|s| s.stats().insertion_failures.get())
            .sum();
        assert!(per_shard > 0, "test must actually exhaust attempt budgets");
        assert_eq!(
            aggregated, per_shard,
            "wrapper must report the same failures its shards record"
        );
    }

    #[test]
    fn registry_cuckoo_honours_hash_and_sharer_modifiers() {
        let registry = standard_registry();
        let dir = registry
            .build_str("cuckoo-3x8192-strong-c16@coarse")
            .unwrap();
        assert_eq!(dir.organization(), "cuckoo-3x8192-strong");
        assert_eq!(dir.num_caches(), 16);
        let full = registry.build_str("cuckoo-3x8192-strong-c16@full").unwrap();
        assert!(dir.storage_profile().total_bits < full.storage_profile().total_bits);
    }

    #[test]
    fn registry_cuckoo_honours_probe_modifiers() {
        let registry = standard_registry();
        // An explicit probe pin round-trips through the organization label.
        let dir = registry
            .build_str("cuckoo-4x1024-tagalt-localized")
            .unwrap();
        assert_eq!(dir.organization(), "cuckoo-4x1024-tagalt-localized");
        let dir = registry.build_str("cuckoo-4x512-strong-simd-c16").unwrap();
        assert_eq!(dir.organization(), "cuckoo-4x512-strong-simd");
        // Without a pin the label is unchanged from the seed, whatever the
        // table auto-selected.
        let dir = registry.build_str("cuckoo-4x512-skew").unwrap();
        assert_eq!(dir.organization(), "cuckoo-4x512-skewing");
        // Impossible combinations surface the table's validation error.
        assert!(registry.build_str("cuckoo-4x512-strong-localized").is_err());
        assert!(registry.build_str("cuckoo-8x512-tagalt-localized").is_err());
    }

    #[test]
    fn registry_cuckoo_honours_policy_modifiers() {
        let registry = standard_registry();
        // A non-default insertion policy round-trips through the label.
        let dir = registry.build_str("cuckoo-4x64-strong-bfs").unwrap();
        assert_eq!(dir.organization(), "cuckoo-4x64-strong-bfs");
        // It composes with a probe pin (policy after probe, per grammar).
        let dir = registry
            .build_str("cuckoo-4x64-tagalt-localized-bfs-c16")
            .unwrap();
        assert_eq!(dir.organization(), "cuckoo-4x64-tagalt-localized-bfs");
        // The default greedy policy leaves the label unchanged.
        let dir = registry.build_str("cuckoo-4x64-strong-greedy").unwrap();
        assert_eq!(dir.organization(), "cuckoo-4x64-strong");
    }
}
