//! The seed's array-of-structs cuckoo table, kept as a reference model.
//!
//! This is a literal transcription of the original (pre-SoA) table:
//! `Vec<Option<(key, value)>>` storage, branchy `Option` probing,
//! search-then-hash double hashing on insertion.  It is **not** part of the
//! public API surface — it exists so the property suite can drive the
//! SoA/SWAR [`CuckooTable`](crate::CuckooTable) in lockstep against the
//! seed semantics (same attempt counts, same discard choices — the
//! Section 5.2 accounting) and so the `bench_probe` binary can report
//! ns/op against the exact layout the rework replaced.  Keeping the single
//! authoritative transcription here prevents the test model and the bench
//! baseline from drifting apart.

use ccd_common::{ConfigError, LineAddr};
use ccd_hash::{HashFamily, HashKind, IndexHashFamily};

/// The seed's array-of-structs d-ary cuckoo table (reference model).
#[derive(Clone, Debug)]
pub struct AosReferenceTable<V> {
    ways: usize,
    sets: usize,
    hashes: HashFamily,
    slots: Vec<Option<(u64, V)>>,
    valid: usize,
    max_attempts: u32,
    next_start_way: usize,
}

impl<V> AosReferenceTable<V> {
    /// Creates the reference table with the same parameters as
    /// [`CuckooTable::new`](crate::CuckooTable::new) plus an explicit
    /// attempt budget.
    ///
    /// # Errors
    ///
    /// Propagates the hash family's validation errors.
    pub fn new(
        ways: usize,
        sets: usize,
        kind: HashKind,
        seed: u64,
        max_attempts: u32,
    ) -> Result<Self, ConfigError> {
        let hashes = HashFamily::with_seed(kind, ways, sets, seed)?;
        Ok(AosReferenceTable {
            ways,
            sets,
            hashes,
            slots: (0..ways * sets).map(|_| None).collect(),
            valid: 0,
            max_attempts,
            next_start_way: 0,
        })
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// `true` when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    fn slot_index(&self, way: usize, key: u64) -> usize {
        way * self.sets + self.hashes.index(way, LineAddr::from_block_number(key))
    }

    fn find(&self, key: u64) -> Option<usize> {
        (0..self.ways)
            .map(|w| self.slot_index(w, key))
            .find(|&slot| matches!(&self.slots[slot], Some((k, _)) if *k == key))
    }

    fn find_vacant(&self, key: u64) -> Option<usize> {
        (0..self.ways)
            .map(|w| self.slot_index(w, key))
            .find(|&slot| self.slots[slot].is_none())
    }

    /// `true` when `key` is present.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Removes `key`, returning its payload.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.find(key)?;
        let (_, value) = self.slots[slot].take().expect("slot is valid");
        self.valid -= 1;
        Some(value)
    }

    /// Iterates over `(key, &payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Inserts with the seed's exact procedure and accounting: `find` then
    /// `find_vacant` (each hashing every way), then the displacement chain.
    /// Returns `(attempts, discarded)`.
    pub fn insert(&mut self, key: u64, value: V) -> (u32, Option<(u64, V)>) {
        if let Some(slot) = self.find(key) {
            self.slots[slot].as_mut().expect("slot is valid").1 = value;
            return (1, None);
        }
        if let Some(slot) = self.find_vacant(key) {
            self.slots[slot] = Some((key, value));
            self.valid += 1;
            return (1, None);
        }
        let mut attempts: u32 = 1;
        let mut current = (key, value);
        let mut way = self.next_start_way;
        self.valid += 1;
        loop {
            if attempts >= self.max_attempts {
                self.next_start_way = way;
                self.valid -= 1;
                if current.0 == key {
                    let slot = self.slot_index(way, current.0);
                    let victim = self.slots[slot]
                        .replace(current)
                        .expect("displacement only happens into occupied slots");
                    return (attempts, Some(victim));
                }
                return (attempts, Some(current));
            }
            let slot = self.slot_index(way, current.0);
            let displaced = self.slots[slot].replace(current);
            attempts += 1;
            let victim = displaced.expect("displacement only happens into occupied slots");
            if let Some(vacant) = self.find_vacant(victim.0) {
                self.slots[vacant] = Some(victim);
                self.next_start_way = way;
                return (attempts, None);
            }
            current = victim;
            way = (way + 1) % self.ways;
        }
    }
}
