//! Configuration of a Cuckoo directory slice.

use ccd_common::ConfigError;
use ccd_directory::{InsertPolicy, ProbeVariant};
use ccd_hash::HashKind;

/// The insertion-attempt budget used throughout the paper's evaluation
/// ("we allow up to 32 insertion attempts to ensure termination in the
/// unlikely event of a loop", Section 5.2).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 32;

/// Configuration of one Cuckoo directory slice.
///
/// The paper describes slices by `ways × sets` (e.g. the selected `4 × 512`
/// Shared-L2 and `3 × 8192` Private-L2 organizations of Section 5.3) and by
/// a *provisioning factor* relating the capacity to the worst-case number of
/// blocks the slice must track.  [`CuckooConfig::with_provisioning`] builds a
/// configuration directly from that factor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CuckooConfig {
    /// Number of ways (`d` of the d-ary cuckoo hash); the paper uses 3 or 4.
    pub ways: usize,
    /// Entries per way (each way is a direct-mapped table of this size).
    pub sets: usize,
    /// Number of private caches whose blocks the slice tracks (width of the
    /// sharer vectors).
    pub num_caches: usize,
    /// Which hash-function family indexes the ways.  The paper's hardware
    /// uses the skewing functions; the hash-characterization experiments use
    /// strong functions (Sections 5.1, 5.5).
    pub hash_kind: HashKind,
    /// Seed for seedable hash families.
    pub hash_seed: u64,
    /// Maximum number of insertion attempts before the most recently
    /// displaced entry is discarded (forcing invalidations).
    pub max_insertion_attempts: u32,
    /// The tag-probe kernel.  `None` (the default) defers to the `CCD_PROBE`
    /// environment override and then to the table's auto-selection; an
    /// explicit variant pins the kernel and is reflected in the directory's
    /// organization label.
    pub probe: Option<ProbeVariant>,
    /// How the table resolves insertions whose candidate slots are all
    /// occupied: the paper's greedy displacement chain (the default), or
    /// BFS shortest-displacement-path search.  Unlike `probe` this changes
    /// attempt accounting and placements, so a non-default policy is always
    /// reflected in the organization label.
    pub insert_policy: InsertPolicy,
}

impl CuckooConfig {
    /// Creates a configuration with the paper's defaults: skewing hash
    /// functions and a 32-attempt insertion budget.
    #[must_use]
    pub fn new(ways: usize, sets: usize, num_caches: usize) -> Self {
        CuckooConfig {
            ways,
            sets,
            num_caches,
            hash_kind: HashKind::Skewing,
            hash_seed: 0xC0C0_0D15_EC70,
            max_insertion_attempts: DEFAULT_MAX_ATTEMPTS,
            probe: None,
            insert_policy: InsertPolicy::Greedy,
        }
    }

    /// Builds a configuration whose capacity is `factor ×` the worst-case
    /// number of tracked blocks (`tracked_frames`), rounding the per-way set
    /// count up to the next power of two.
    ///
    /// `factor = 1.0` corresponds to the paper's "1×" provisioning (capacity
    /// equal to the number of cache frames mapping to the slice); the paper
    /// selects 1× for the Shared-L2 configuration and 1.5× for Private-L2
    /// (Section 5.2).
    #[must_use]
    pub fn with_provisioning(
        ways: usize,
        tracked_frames: usize,
        factor: f64,
        num_caches: usize,
    ) -> Self {
        let target_capacity = (tracked_frames as f64 * factor).ceil() as usize;
        let sets_exact = target_capacity.div_ceil(ways.max(1));
        let sets = sets_exact.next_power_of_two().max(2);
        CuckooConfig::new(ways, sets, num_caches)
    }

    /// Selects the hash family.
    #[must_use]
    pub fn with_hash_kind(mut self, kind: HashKind) -> Self {
        self.hash_kind = kind;
        self
    }

    /// Sets the hash seed (ignored by the seedless skewing family).
    #[must_use]
    pub fn with_hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Sets the insertion-attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_insertion_attempts = attempts;
        self
    }

    /// Pins the tag-probe kernel (overriding both the `CCD_PROBE`
    /// environment variable and the table's auto-selection).
    #[must_use]
    pub fn with_probe(mut self, probe: ProbeVariant) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Selects the insertion policy (greedy displacement or BFS
    /// shortest-path search).
    #[must_use]
    pub fn with_insert_policy(mut self, policy: InsertPolicy) -> Self {
        self.insert_policy = policy;
        self
    }

    /// Total number of entries (`ways × sets`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ways * self.sets
    }

    /// The provisioning factor relative to `tracked_frames` worst-case
    /// blocks.
    #[must_use]
    pub fn provisioning_factor(&self, tracked_frames: usize) -> f64 {
        if tracked_frames == 0 {
            0.0
        } else {
            self.capacity() as f64 / tracked_frames as f64
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] if any structural parameter is zero,
    /// * [`ConfigError::TooSmall`] if fewer than 2 ways are requested (a
    ///   1-ary cuckoo table cannot displace anywhere),
    /// * [`ConfigError::NotPowerOfTwo`] if `sets` is not a power of two,
    /// * [`ConfigError::Zero`] if the attempt budget is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if self.ways < 2 {
            return Err(ConfigError::TooSmall {
                what: "ways",
                value: self.ways as u64,
                min: 2,
            });
        }
        if self.sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if !ccd_common::is_power_of_two(self.sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: self.sets as u64,
            });
        }
        if self.num_caches == 0 {
            return Err(ConfigError::Zero {
                what: "cache count",
            });
        }
        if self.max_insertion_attempts == 0 {
            return Err(ConfigError::Zero {
                what: "insertion-attempt budget",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CuckooConfig::new(4, 512, 32);
        assert_eq!(c.max_insertion_attempts, 32);
        assert_eq!(c.hash_kind, HashKind::Skewing);
        assert_eq!(c.capacity(), 2048);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn provisioning_factor_round_trip() {
        // Shared-L2, 16 cores: each slice tracks 2048 L1 frames; 1x with 4
        // ways -> 4 x 512.
        let c = CuckooConfig::with_provisioning(4, 2048, 1.0, 32);
        assert_eq!(c.sets, 512);
        assert!((c.provisioning_factor(2048) - 1.0).abs() < 1e-12);

        // Private-L2, 16 cores: 16384 frames per slice; 1.5x with 3 ways ->
        // 3 x 8192.
        let c = CuckooConfig::with_provisioning(3, 16_384, 1.5, 16);
        assert_eq!(c.sets, 8192);
        assert!((c.provisioning_factor(16_384) - 1.5).abs() < 1e-12);

        // Under-provisioned configurations round up to a power of two.
        let c = CuckooConfig::with_provisioning(3, 2048, 0.375, 32);
        assert_eq!(c.sets, 256);
    }

    #[test]
    fn builder_methods_compose() {
        let c = CuckooConfig::new(3, 8192, 16)
            .with_hash_kind(HashKind::Strong)
            .with_hash_seed(99)
            .with_max_attempts(16);
        assert_eq!(c.hash_kind, HashKind::Strong);
        assert_eq!(c.hash_seed, 99);
        assert_eq!(c.max_insertion_attempts, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(CuckooConfig::new(0, 64, 4).validate().is_err());
        assert!(CuckooConfig::new(1, 64, 4).validate().is_err());
        assert!(CuckooConfig::new(4, 0, 4).validate().is_err());
        assert!(CuckooConfig::new(4, 100, 4).validate().is_err());
        assert!(CuckooConfig::new(4, 64, 0).validate().is_err());
        assert!(CuckooConfig::new(4, 64, 4)
            .with_max_attempts(0)
            .validate()
            .is_err());
    }

    #[test]
    fn probe_is_unpinned_by_default_and_composes() {
        let c = CuckooConfig::new(4, 512, 32);
        assert_eq!(c.probe, None);
        let c = c.with_probe(ProbeVariant::Simd);
        assert_eq!(c.probe, Some(ProbeVariant::Simd));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn insert_policy_defaults_to_greedy_and_composes() {
        let c = CuckooConfig::new(4, 512, 32);
        assert_eq!(c.insert_policy, InsertPolicy::Greedy);
        let c = c.with_insert_policy(InsertPolicy::Bfs);
        assert_eq!(c.insert_policy, InsertPolicy::Bfs);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn provisioning_factor_handles_zero_frames() {
        let c = CuckooConfig::new(4, 64, 4);
        assert_eq!(c.provisioning_factor(0), 0.0);
    }
}
