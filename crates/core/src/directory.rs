//! The Cuckoo coherence directory.
//!
//! [`CuckooDirectory`] wraps the raw [`CuckooTable`] with directory
//! semantics — sharer sets per entry, exclusive-request handling, eviction
//! notifications — and implements the workspace-wide
//! [`ccd_directory::Directory`] trait, so the coherence simulator and the
//! benchmark harness can compare it directly against the Sparse, Skewed,
//! Duplicate-Tag, In-Cache and Tagless baselines.
//!
//! The hardware organization follows Figure 6 of the paper: `d` direct-
//! mapped ways, each indexed by its own hash function, with exchange buffers
//! holding the in-flight displaced entry during an insertion chain.  The
//! statistics recorded here (insertion-attempt histogram, forced-invalidation
//! rate, occupancy) are the quantities Figures 8–12 report.

use crate::{config::CuckooConfig, table::CuckooTable};
use ccd_common::{ceil_log2, CacheId, ConfigError, LineAddr};
use ccd_directory::{
    DepthMetrics, Directory, DirectoryOp, DirectoryStats, InsertPolicy, Outcome, ProbeVariant,
    StorageProfile,
};
use ccd_obs::ObsConfig;
use ccd_sharers::SharerSet;

/// A Cuckoo directory slice: a d-ary cuckoo hash table of sharer sets.
#[derive(Clone, Debug)]
pub struct CuckooDirectory<S: SharerSet> {
    config: CuckooConfig,
    table: CuckooTable<S>,
    stats: DirectoryStats,
}

impl<S: SharerSet> CuckooDirectory<S> {
    /// Creates a Cuckoo directory slice from `config`.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] produced by [`CuckooConfig::validate`],
    /// by the hash-family construction, by an invalid probe-variant request
    /// (e.g. `localized` without the `tagalt` family), or by a malformed
    /// `CCD_PROBE` or `CCD_OBS` environment override.
    pub fn new(config: CuckooConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        // Probe resolution: an explicit config pin wins, then the CCD_PROBE
        // environment override, then the table's auto-selection (`None`).
        let probe = match config.probe {
            Some(variant) => Some(variant),
            None => ProbeVariant::from_env()?,
        };
        let mut table = Self::build_table(&config, probe)?;
        // A CCD_OBS override arms the depth distributions at construction.
        // Like CCD_PROBE, it never reaches the organization label or any
        // result-bearing field — armed and unarmed runs stay byte-identical
        // (contract #11).
        if let Some(obs) = ObsConfig::from_env()? {
            table.arm_depth_metrics(obs.sig_bits());
        }
        Ok(CuckooDirectory {
            config,
            table,
            stats: DirectoryStats::new(),
        })
    }

    /// Builds a table for `config` running `probe`, with the attempt budget
    /// and insertion policy applied — shared by construction and live
    /// resize.
    fn build_table(
        config: &CuckooConfig,
        probe: Option<ProbeVariant>,
    ) -> Result<CuckooTable<S>, ConfigError> {
        let mut table = CuckooTable::with_variant(
            config.ways,
            config.sets,
            config.hash_kind,
            config.hash_seed,
            probe,
        )?;
        table.set_max_attempts(config.max_insertion_attempts);
        table.set_insert_policy(config.insert_policy);
        Ok(table)
    }

    /// The configuration this slice was built from.
    #[must_use]
    pub fn config(&self) -> &CuckooConfig {
        &self.config
    }

    /// Number of ways (`d`).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.config.ways
    }

    /// Entries per way.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.config.sets
    }

    /// The tag-probe kernel the underlying table resolved to (explicit pin,
    /// `CCD_PROBE` override, or auto-selection).
    #[must_use]
    pub fn probe_variant(&self) -> ProbeVariant {
        self.table.probe_variant()
    }

    /// Looks `line` up and, if absent, inserts a fresh entry via the cuckoo
    /// displacement procedure, recording hit / allocation / forced-eviction
    /// facts in `out`.  One fused table probe covers the lookup, the vacancy
    /// scan and — on a hit — the payload access: the returned borrow is the
    /// entry's sharer set, which is guaranteed to exist afterwards.
    fn find_or_allocate(&mut self, line: LineAddr, out: &mut Outcome) -> &mut S {
        self.stats.lookups.incr();
        let key = line.block_number();
        let num_caches = self.config.num_caches;
        let capacity = self.config.capacity();
        let len_before = self.table.len();
        let entry = self.table.find_or_insert_with(key, || S::new(num_caches));
        let Some(outcome) = entry.inserted else {
            out.set_hit(true);
            return entry.value;
        };

        out.record_allocation(outcome.attempts);
        let mut forced = 0u64;
        if let Some((victim_key, victim_sharers)) = outcome.discarded {
            // The attempt budget ran out: the entry displaced on the final
            // attempt is discarded and its cached copies must be
            // invalidated.  The table guarantees the *new* key is always
            // stored — the discarded victim is never `line` itself — which
            // is what makes the returned borrow valid after this call.
            out.record_insertion_failure();
            self.stats.insertion_failures.incr();
            let targets =
                out.push_forced_eviction(LineAddr::from_block_number(victim_key), &victim_sharers);
            self.stats.forced_block_invalidations.add(targets as u64);
            forced = 1;
        }
        // A discarding insertion removes one entry for the one it adds, so
        // the table's occupancy after the insertion is derivable without
        // touching the table (whose payload is borrowed by `entry`).
        let len_after = if forced == 1 {
            len_before
        } else {
            len_before + 1
        };
        let occupancy = len_after as f64 / capacity as f64;
        self.stats
            .record_insertion(outcome.attempts, forced, occupancy);
        entry.value
    }
}

impl<S: SharerSet> Directory for CuckooDirectory<S> {
    fn organization(&self) -> String {
        // Only an *explicit* probe pin is part of the organization label: a
        // CCD_PROBE environment override changes the kernel but never the
        // label, so golden result files diff byte-identically under it.
        let mut label = format!(
            "cuckoo-{}x{}-{}",
            self.config.ways, self.config.sets, self.config.hash_kind
        );
        if let Some(probe) = self.config.probe {
            label.push('-');
            label.push_str(&probe.to_string());
        }
        // The insertion policy, unlike the probe kernel, is semantic
        // (attempt counts and placements differ), so a non-default policy is
        // always part of the label.
        if self.config.insert_policy != InsertPolicy::Greedy {
            label.push('-');
            label.push_str(&self.config.insert_policy.to_string());
        }
        label
    }

    fn num_caches(&self) -> usize {
        self.config.num_caches
    }

    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.table.contains(line.block_number())
    }

    // Prefetch the d candidate tag bytes an op for `line` would probe.
    fn prefetch_line(&self, line: LineAddr) {
        self.table.prefetch(line.block_number());
    }

    fn may_hold(&self, line: LineAddr, cache: CacheId) -> bool {
        self.table
            .get(line.block_number())
            .is_some_and(|sharers| sharers.may_contain(cache))
    }

    // Override the default (which repeats the lookup once per cache id)
    // with a single table probe.
    fn sharers(&self, line: LineAddr) -> Option<Vec<CacheId>> {
        self.table
            .get(line.block_number())
            .map(SharerSet::invalidation_targets)
    }

    fn apply(&mut self, op: DirectoryOp, out: &mut Outcome) {
        out.reset();
        match op {
            DirectoryOp::Probe { line } => {
                if let Some(sharers) = self.table.get(line.block_number()) {
                    out.set_hit(true);
                    sharers.extend_targets(out.invalidate_buf());
                }
            }
            DirectoryOp::AddSharer { line, cache } => {
                let entry = self.find_or_allocate(line, out);
                entry.add(cache);
                if out.hit() {
                    self.stats.sharer_adds.incr();
                }
            }
            DirectoryOp::SetExclusive { line, cache } => {
                let entry = self.find_or_allocate(line, out);
                let start = out.invalidate_len();
                entry.extend_targets(out.invalidate_buf());
                out.drop_invalidate_from(start, cache);
                entry.clear();
                entry.add(cache);
                if out.invalidate_len() > start {
                    out.record_invalidate_all();
                    self.stats.invalidate_alls.incr();
                } else if out.hit() {
                    self.stats.sharer_adds.incr();
                }
            }
            DirectoryOp::RemoveSharer { line, cache } => {
                let key = line.block_number();
                let Some(entry) = self.table.get_mut(key) else {
                    return;
                };
                out.set_hit(true);
                self.stats.sharer_removes.incr();
                entry.remove(cache);
                if entry.is_empty() {
                    self.table.remove(key);
                    out.record_removed_entry();
                    self.stats.entry_removes.incr();
                }
            }
            DirectoryOp::RemoveEntry { line } => {
                let Some(entry) = self.table.remove(line.block_number()) else {
                    return;
                };
                out.set_hit(true);
                out.record_removed_entry();
                entry.extend_targets(out.invalidate_buf());
                self.stats.entry_removes.incr();
            }
        }
    }

    fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn arm_depth_metrics(&mut self, sig_bits: u32) -> bool {
        self.table.arm_depth_metrics(sig_bits);
        true
    }

    fn depth_metrics(&self) -> Option<&DepthMetrics> {
        self.table.depth_metrics()
    }

    fn geometry(&self) -> Option<(usize, usize)> {
        Some((self.config.ways, self.config.sets))
    }

    // Online live resize: build a table at the new geometry and migrate
    // every resident entry through its batched insertion path.  The
    // migration itself bypasses the per-insertion statistics — the grown
    // directory must stay semantically comparable to one statically
    // provisioned at the new geometry — except for entries the new geometry
    // cannot re-home, which are folded into the failure statistics exactly
    // like a budget-exhausted insertion (deterministic, and practically
    // never fired by a growth resize).
    fn live_resize(&mut self, ways: usize, sets: usize) -> Result<bool, ConfigError> {
        let mut config = self.config.clone();
        config.ways = ways;
        config.sets = sets;
        config.validate()?;
        // Same probe resolution as construction: config pin, then CCD_PROBE,
        // then auto-selection (the new geometry may legalize or outlaw the
        // localized layout, so the auto choice is re-made).
        let probe = match config.probe {
            Some(variant) => Some(variant),
            None => ProbeVariant::from_env()?,
        };
        let mut table = Self::build_table(&config, probe)?;
        // Like the per-insertion statistics, the depth distributions skip
        // the migration itself: recorded data survives the resize, and the
        // re-homed table stays armed, but migration traffic never lands in
        // the request-path distributions.
        let metrics = self.table.take_depth_metrics();
        for (_victim_key, victim_sharers) in self.table.migrate_into(&mut table) {
            self.stats.insertion_failures.incr();
            let targets = victim_sharers.invalidation_targets().len();
            self.stats.forced_block_invalidations.add(targets as u64);
        }
        self.table = table;
        self.table.restore_depth_metrics(metrics);
        self.config = config;
        Ok(true)
    }

    fn storage_profile(&self) -> StorageProfile {
        let probe = S::new(self.config.num_caches);
        let sharer_bits = probe.storage_bits();
        // The cuckoo indexing folds all address bits into every way's index,
        // so no index bits can be dropped from the tag; we store the block
        // number above the per-way index width, as a skewed structure does.
        let tag_bits = u64::from(
            ccd_common::PHYSICAL_ADDRESS_BITS
                .saturating_sub(ccd_common::BlockGeometry::default().offset_bits())
                .saturating_sub(ceil_log2(self.config.sets as u64)),
        );
        let state_bits = 1;
        let entry_bits = tag_bits + sharer_bits + state_bits;
        StorageProfile {
            total_bits: entry_bits * self.config.capacity() as u64,
            // Lookups read one entry per way (tags + sharer data), exactly
            // like a d-way set-associative structure (Section 4.1: "nearly
            // identical energy and latency per lookup").
            bits_read_per_lookup: self.config.ways as u64 * (tag_bits + probe.access_bits()),
            bits_written_per_update: entry_bits,
            comparators_per_lookup: self.config.ways as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64};
    use ccd_hash::HashKind;
    use ccd_sharers::{CoarseVector, FullBitVector, HierarchicalVector};

    type Dir = CuckooDirectory<FullBitVector>;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    fn dir(ways: usize, sets: usize, caches: usize) -> Dir {
        Dir::new(CuckooConfig::new(ways, sets, caches)).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Dir::new(CuckooConfig::new(1, 64, 4)).is_err());
        assert!(Dir::new(CuckooConfig::new(4, 100, 4)).is_err());
        assert!(Dir::new(CuckooConfig::new(4, 64, 0)).is_err());
        assert!(Dir::new(CuckooConfig::new(3, 8192, 16)).is_ok());
    }

    #[test]
    fn add_query_remove_round_trip() {
        let mut d = dir(4, 64, 8);
        let r = d.add_sharer(line(100), CacheId::new(1));
        assert!(r.allocated_new_entry);
        assert_eq!(r.insertion_attempts, 1);
        d.add_sharer(line(100), CacheId::new(4));
        assert_eq!(
            d.sharers(line(100)),
            Some(vec![CacheId::new(1), CacheId::new(4)])
        );
        assert_eq!(d.len(), 1);
        d.remove_sharer(line(100), CacheId::new(1));
        d.remove_sharer(line(100), CacheId::new(4));
        assert!(!d.contains(line(100)));
        assert_eq!(d.len(), 0);
        assert_eq!(d.stats().entry_removes.get(), 1);
        // Removing a sharer of an unknown line is a no-op.
        d.remove_sharer(line(100), CacheId::new(4));
    }

    #[test]
    fn exclusive_requests_invalidate_other_sharers() {
        let mut d = dir(4, 64, 8);
        for c in 0..5u32 {
            d.add_sharer(line(77), CacheId::new(c));
        }
        let r = d.set_exclusive(line(77), CacheId::new(2));
        let mut inv = r.invalidate;
        inv.sort_unstable();
        assert_eq!(
            inv,
            vec![
                CacheId::new(0),
                CacheId::new(1),
                CacheId::new(3),
                CacheId::new(4)
            ]
        );
        assert_eq!(d.sharers(line(77)), Some(vec![CacheId::new(2)]));
        assert_eq!(d.stats().invalidate_alls.get(), 1);
    }

    #[test]
    fn remove_entry_returns_targets() {
        let mut d = dir(3, 32, 4);
        assert!(d.remove_entry(line(5)).is_none());
        d.add_sharer(line(5), CacheId::new(0));
        d.add_sharer(line(5), CacheId::new(3));
        let targets = d.remove_entry(line(5)).unwrap();
        assert_eq!(targets, vec![CacheId::new(0), CacheId::new(3)]);
        assert!(d.is_empty());
    }

    #[test]
    fn no_forced_invalidations_at_half_occupancy() {
        // The paper's core claim: a Cuckoo directory sized at 2x the tracked
        // blocks (occupancy <= 50%) never invalidates due to conflicts.
        let mut d = dir(4, 512, 32); // capacity 2048
        let mut rng = SplitMix64::new(7);
        let target = d.capacity() / 2;
        let mut inserted = std::collections::HashSet::new();
        while d.len() < target {
            let l = line(rng.next_u64() >> 10);
            if !inserted.insert(l.block_number()) {
                continue;
            }
            let r = d.add_sharer(l, CacheId::new((rng.next_below(32)) as u32));
            assert!(
                r.forced_evictions.is_empty(),
                "forced eviction at occupancy {}",
                d.occupancy()
            );
        }
        assert_eq!(d.stats().forced_evictions.get(), 0);
        assert!(d.stats().avg_insertion_attempts() < 2.0);
        assert!((d.stats().forced_invalidation_rate()).abs() < 1e-12);
    }

    #[test]
    fn cuckoo_beats_sparse_on_conflicting_access_patterns() {
        // Lines sharing low-order index bits thrash a modulo-indexed Sparse
        // directory of the same capacity but are absorbed by the Cuckoo
        // organization.
        let ways = 4;
        let sets = 256;
        let caches = 8;
        let mut sparse =
            ccd_directory::SparseDirectory::<FullBitVector>::new(ways, sets, caches).unwrap();
        let mut cuckoo = dir(ways, sets, caches);
        let mut sparse_forced = 0usize;
        let mut cuckoo_forced = 0usize;
        for i in 0..128u64 {
            let l = line(3 + i * sets as u64);
            sparse_forced += sparse.add_sharer(l, CacheId::new(0)).forced_evictions.len();
            cuckoo_forced += cuckoo.add_sharer(l, CacheId::new(0)).forced_evictions.len();
        }
        assert!(sparse_forced > 0);
        assert_eq!(
            cuckoo_forced, 0,
            "cuckoo at 12.5% occupancy must absorb the conflicting lines"
        );
    }

    #[test]
    fn under_provisioned_directories_fail_gracefully() {
        // Drive a small directory far past its capacity: insertions must
        // keep succeeding (discarding victims), len must never exceed
        // capacity, and the failure statistics must reflect the overflow.
        let mut d = dir(3, 16, 4); // capacity 48
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let l = line(rng.next_u64() >> 12);
            let _ = d.add_sharer(l, CacheId::new((rng.next_below(4)) as u32));
            assert!(d.len() <= d.capacity());
        }
        assert!(d.stats().forced_evictions.get() > 0);
        assert!(d.stats().insertion_failures.get() > 0);
        assert!(d.stats().avg_insertion_attempts() > 1.0);
        assert!(d.occupancy() > 0.8, "the structure should be nearly full");
    }

    #[test]
    fn insertion_attempts_bounded_by_budget() {
        let config = CuckooConfig::new(3, 8, 2).with_max_attempts(8);
        let mut d = CuckooDirectory::<FullBitVector>::new(config).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..500 {
            let l = line(rng.next_u64() >> 16);
            let r = d.add_sharer(l, CacheId::new(0));
            assert!(r.insertion_attempts <= 8 || !r.allocated_new_entry);
        }
        assert!(d.stats().insertion_attempts.max_value() >= 8);
    }

    #[test]
    fn works_with_compressed_sharer_formats() {
        let mut coarse =
            CuckooDirectory::<CoarseVector>::new(CuckooConfig::new(4, 64, 64)).unwrap();
        let mut hier =
            CuckooDirectory::<HierarchicalVector>::new(CuckooConfig::new(4, 64, 64)).unwrap();
        for c in [0u32, 5, 17, 44] {
            coarse.add_sharer(line(9), CacheId::new(c));
            hier.add_sharer(line(9), CacheId::new(c));
        }
        // Both must report a superset of the true sharers.
        for c in [0u32, 5, 17, 44] {
            assert!(coarse.sharers(line(9)).unwrap().contains(&CacheId::new(c)));
            assert!(hier.sharers(line(9)).unwrap().contains(&CacheId::new(c)));
        }
        // Hierarchical is exact.
        assert_eq!(hier.sharers(line(9)).unwrap().len(), 4);
    }

    #[test]
    fn storage_profile_matches_a_4_way_structure() {
        let d = dir(4, 512, 32);
        let p = d.storage_profile();
        assert_eq!(p.comparators_per_lookup, 4);
        // tag = 48 - 6 - 9 = 33 bits, sharers = 32, valid = 1.
        assert_eq!(p.bits_written_per_update, 33 + 32 + 1);
        assert_eq!(p.total_bits, (33 + 32 + 1) * 2048);
        assert_eq!(p.bits_read_per_lookup, 4 * (33 + 32));
    }

    #[test]
    fn organization_name_reflects_configuration() {
        let d = CuckooDirectory::<FullBitVector>::new(
            CuckooConfig::new(3, 8192, 16).with_hash_kind(HashKind::Strong),
        )
        .unwrap();
        assert_eq!(d.organization(), "cuckoo-3x8192-strong");
        assert_eq!(d.ways(), 3);
        assert_eq!(d.sets(), 8192);
        assert_eq!(d.config().num_caches, 16);
    }

    #[test]
    fn live_resize_grows_in_place_and_preserves_entries() {
        let mut d = dir(4, 64, 8);
        let mut rng = SplitMix64::new(0x9E51);
        let mut tracked = Vec::new();
        for _ in 0..180 {
            let l = line(rng.next_u64() >> 10);
            let r = d.add_sharer(l, CacheId::new((rng.next_below(8)) as u32));
            if r.forced_evictions.is_empty() {
                tracked.push(l);
            }
        }
        assert_eq!(d.geometry(), Some((4, 64)));
        let failures_before = d.stats().insertion_failures.get();
        assert!(d.live_resize(4, 128).unwrap());
        assert_eq!(d.geometry(), Some((4, 128)));
        assert_eq!(d.capacity(), 512);
        assert_eq!(d.organization(), "cuckoo-4x128-skewing");
        assert_eq!(
            d.stats().insertion_failures.get(),
            failures_before,
            "a growth migration must not discard"
        );
        for &l in &tracked {
            assert!(d.contains(l), "resize lost {:#x}", l.block_number());
        }
        // The resized directory keeps serving and can re-way too.
        assert!(d.live_resize(8, 64).unwrap());
        assert_eq!(d.geometry(), Some((8, 64)));
        for &l in &tracked {
            assert!(d.contains(l), "re-way lost {:#x}", l.block_number());
        }
    }

    #[test]
    fn live_resize_validates_the_new_geometry() {
        let mut d = dir(4, 64, 8);
        assert!(d.live_resize(4, 100).is_err(), "non-power-of-two sets");
        assert!(d.live_resize(1, 64).is_err(), "1-ary cannot displace");
        assert_eq!(d.geometry(), Some((4, 64)), "failed resize changes nothing");
    }

    #[test]
    fn baseline_directories_report_non_resizable() {
        let mut sparse = ccd_directory::SparseDirectory::<FullBitVector>::new(4, 64, 8).unwrap();
        assert_eq!(sparse.geometry(), None);
        assert!(!sparse.live_resize(4, 128).unwrap());
    }

    #[test]
    fn depth_metrics_arm_record_and_survive_resize() {
        let mut d = dir(4, 64, 8);
        assert!(d.depth_metrics().is_none(), "directories start disarmed");
        assert!(d.arm_depth_metrics(2));
        let mut rng = SplitMix64::new(0x0B5);
        for _ in 0..120 {
            let l = line(rng.next_u64() >> 10);
            d.add_sharer(l, CacheId::new((rng.next_below(8)) as u32));
        }
        let recorded = d.depth_metrics().unwrap().probe_depth.count();
        assert!(recorded > 0, "armed insertions must record probe depths");

        // The migration is not request traffic: a resize preserves what was
        // recorded, records nothing new, and leaves the directory armed.
        assert!(d.live_resize(4, 128).unwrap());
        let metrics = d.depth_metrics().unwrap();
        assert_eq!(metrics.probe_depth.count(), recorded);
        d.add_sharer(line(1), CacheId::new(0));
        assert_eq!(d.depth_metrics().unwrap().probe_depth.count(), recorded + 1);

        // Arming is observational only: an armed and an unarmed twin fed the
        // same requests report identical result-bearing statistics.
        let mut plain = dir(4, 64, 8);
        let mut armed = dir(4, 64, 8);
        assert!(armed.arm_depth_metrics(2));
        let mut rng = SplitMix64::new(0x7777);
        for _ in 0..300 {
            let l = line(rng.next_u64() >> 14);
            let c = CacheId::new((rng.next_below(8)) as u32);
            plain.add_sharer(l, c);
            armed.add_sharer(l, c);
        }
        assert_eq!(plain.stats(), armed.stats());
        assert_eq!(plain.len(), armed.len());
    }

    #[test]
    fn stats_reset() {
        let mut d = dir(4, 64, 4);
        d.add_sharer(line(1), CacheId::new(0));
        assert_eq!(d.stats().insertions.get(), 1);
        d.reset_stats();
        assert_eq!(d.stats().insertions.get(), 0);
        assert!(d.contains(line(1)), "reset clears statistics, not contents");
    }
}
