//! Declarative parameter sweeps.
//!
//! The paper's headline results are all sweeps over the same four axes —
//! directory organization × system configuration × workload × seed — and
//! every figure binary used to hand-roll its own loop over them.
//! [`SweepSpec`] expresses the sweep as *data*: the cross product of the
//! axes becomes a list of pure [`SimJob`]s, the
//! [`ParallelRunner`] fans them across
//! worker threads, and the results come back as [`SweepCell`]s tagged with
//! their axis labels, in axis order, regardless of scheduling.
//!
//! Determinism: every cell's trace seed is a pure function of
//! `(base_seed, system, workload, seed-axis value)` — independent of the
//! organization axis, so competing organizations are compared on
//! *identical* traces — and the runner collects results by input index, so
//! `CCD_WORKERS=1` (serial) and any parallel worker count produce
//! byte-identical outputs.
//!
//! ```no_run
//! use ccd_bench::{RunScale, SweepSpec};
//! use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
//! use ccd_workloads::WorkloadProfile;
//!
//! let results = SweepSpec::new("example")
//!     .system("Shared-L2", SystemConfig::table1(Hierarchy::SharedL2))
//!     .org("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0))
//!     .org("Sparse 2x", DirectorySpec::sparse(8, 2.0))
//!     .workloads(WorkloadProfile::all_paper_workloads())
//!     .scale(RunScale::quick())
//!     .run()
//!     .expect("valid sweep");
//! let cuckoo_rate = results.mean_where(
//!     |c| c.org == "Cuckoo 1x",
//!     |r| r.forced_invalidation_rate(),
//! );
//! assert!(cuckoo_rate < 0.01);
//! ```

use crate::RunScale;
use ccd_coherence::{DirectorySpec, ParallelRunner, SimJob, SimReport, SystemConfig};
use ccd_common::ConfigError;
use ccd_hash::HashKind;
use ccd_workloads::{derive_seed, WorkloadProfile, WorkloadSpec};

/// Default [`SweepSpec::base_seed`].
pub const DEFAULT_BASE_SEED: u64 = 0xCCD5;

/// A declarative parameter sweep: the cross product of four axes.
///
/// Axis nesting order (outer → inner) is systems → organizations →
/// workloads → seeds; [`SweepSpec::run`] returns one [`SweepCell`] per
/// point, in that order.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Title used in banners and error messages.
    pub title: String,
    /// Labelled system configurations.
    pub systems: Vec<(String, SystemConfig)>,
    /// Labelled directory organizations.
    pub orgs: Vec<(String, DirectorySpec)>,
    /// Workloads — paper profiles, scenario specs, or trace replays —
    /// labelled by their own [`WorkloadSpec::label`]s.
    pub workloads: Vec<WorkloadSpec>,
    /// Seed-axis values (replicas per cell).  Defaults to `[0]`.
    pub seeds: Vec<u64>,
    /// Warm-up/measure scale applied to every point.
    pub scale: RunScale,
    /// Root of the per-cell trace-seed derivation.
    pub base_seed: u64,
}

impl SweepSpec {
    /// An empty sweep with the default scale, one seed (`0`), and the
    /// default base seed.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        SweepSpec {
            title: title.into(),
            systems: Vec::new(),
            orgs: Vec::new(),
            workloads: Vec::new(),
            seeds: vec![0],
            scale: RunScale::default_scale(),
            base_seed: DEFAULT_BASE_SEED,
        }
    }

    /// Adds one labelled system configuration.
    #[must_use]
    pub fn system(mut self, label: impl Into<String>, config: SystemConfig) -> Self {
        self.systems.push((label.into(), config));
        self
    }

    /// Adds one directory organization labelled with its own
    /// [`DirectorySpec::label`].
    #[must_use]
    pub fn org_labelled(self, spec: DirectorySpec) -> Self {
        let label = spec.label();
        self.org(label, spec)
    }

    /// Adds one labelled directory organization.
    #[must_use]
    pub fn org(mut self, label: impl Into<String>, spec: DirectorySpec) -> Self {
        self.orgs.push((label.into(), spec));
        self
    }

    /// Adds one workload: a [`WorkloadProfile`], a parsed
    /// [`ScenarioSpec`](ccd_workloads::ScenarioSpec), or any
    /// [`WorkloadSpec`].
    #[must_use]
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Self {
        self.workloads.push(workload.into());
        self
    }

    /// Adds many workloads (see [`SweepSpec::workload`]).
    #[must_use]
    pub fn workloads<W: Into<WorkloadSpec>>(
        mut self,
        workloads: impl IntoIterator<Item = W>,
    ) -> Self {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Adds one workload parsed from a spec string (paper profile name,
    /// scenario spec, or `replay:<path>`; see
    /// [`WorkloadSpec`]).
    ///
    /// # Errors
    ///
    /// The parse error, naming the offending input.
    pub fn workload_str(self, spec: &str) -> Result<Self, ConfigError> {
        Ok(self.workload(spec.parse::<WorkloadSpec>()?))
    }

    /// Replaces the seed axis (replicas per cell).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the warm-up/measure scale.
    #[must_use]
    pub fn scale(mut self, scale: RunScale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the root of the trace-seed derivation.
    #[must_use]
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of points in the cross product.
    #[must_use]
    pub fn len(&self) -> usize {
        self.systems.len() * self.orgs.len() * self.workloads.len() * self.seeds.len()
    }

    /// `true` when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The trace seed of the cell at the given axis coordinates — a pure
    /// function of the spec's `base_seed`, the system, the workload and the
    /// seed-axis value.  Deliberately **independent of the organization
    /// axis**: a trace is a property of the workload, not of the directory
    /// under test, so every organization at the same (system, workload,
    /// seed) point replays the *identical* trace and cross-organization
    /// comparisons (Figures 9 and 12, the hash study) stay trace-paired.
    #[must_use]
    pub fn trace_seed(&self, system: usize, workload: usize, seed: u64) -> u64 {
        let key = ((system as u64) << 42) | workload as u64;
        derive_seed(derive_seed(self.base_seed, key), seed)
    }

    /// Expands the cross product into `(labels, job)` pairs in axis order.
    #[must_use]
    pub fn jobs(&self) -> Vec<(CellKey, SimJob)> {
        let mut jobs = Vec::with_capacity(self.len());
        for (si, (system_label, system)) in self.systems.iter().enumerate() {
            let warmup_refs = self.scale.warmup_refs(system);
            let measure_refs = self.scale.measure_refs(system);
            for (org_label, spec) in &self.orgs {
                for (wi, workload) in self.workloads.iter().enumerate() {
                    for &seed in &self.seeds {
                        let key = CellKey {
                            system: system_label.clone(),
                            org: org_label.clone(),
                            workload: workload.label(),
                            seed,
                        };
                        let job = SimJob {
                            system: system.clone(),
                            spec: spec.clone(),
                            workload: workload.clone(),
                            seed: self.trace_seed(si, wi, seed),
                            warmup_refs,
                            measure_refs,
                        };
                        jobs.push((key, job));
                    }
                }
            }
        }
        jobs
    }

    /// Runs the sweep on `runner`.
    ///
    /// # Errors
    ///
    /// Returns the first (in axis order) configuration error, if any.
    pub fn run_with(&self, runner: &ParallelRunner) -> Result<SweepResults, ConfigError> {
        let (keys, jobs): (Vec<CellKey>, Vec<SimJob>) = self.jobs().into_iter().unzip();
        let reports = runner.run_jobs(&jobs)?;
        let cells = keys
            .into_iter()
            .zip(jobs)
            .zip(reports)
            .map(|((key, job), report)| SweepCell {
                system: key.system,
                org: key.org,
                workload: key.workload,
                seed: key.seed,
                trace_seed: job.seed,
                report,
            })
            .collect();
        Ok(SweepResults {
            title: self.title.clone(),
            cells,
        })
    }

    /// Runs the sweep on the environment-selected runner
    /// ([`ParallelRunner::from_env`]: `CCD_WORKERS=1` forces serial).
    ///
    /// # Errors
    ///
    /// See [`SweepSpec::run_with`]; additionally an invalid `CCD_WORKERS`
    /// value is a named parse error rather than a silent fallback.
    pub fn run(&self) -> Result<SweepResults, ConfigError> {
        self.run_with(&ParallelRunner::from_env()?)
    }
}

/// The axis labels of one sweep point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// System-axis label.
    pub system: String,
    /// Organization-axis label.
    pub org: String,
    /// Workload name.
    pub workload: String,
    /// Seed-axis value.
    pub seed: u64,
}

/// One completed sweep point: its axis labels plus the report.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// System-axis label.
    pub system: String,
    /// Organization-axis label.
    pub org: String,
    /// Workload name.
    pub workload: String,
    /// Seed-axis value.
    pub seed: u64,
    /// The derived trace seed the simulation actually ran with.
    pub trace_seed: u64,
    /// The simulation report.
    pub report: SimReport,
}

/// All cells of one sweep, in axis order.
#[derive(Clone, Debug)]
pub struct SweepResults {
    /// The sweep's title.
    pub title: String,
    /// One cell per point, ordered systems → orgs → workloads → seeds.
    pub cells: Vec<SweepCell>,
}

impl SweepResults {
    /// Iterates over the cells matching `predicate`, in axis order.
    pub fn select<'a>(
        &'a self,
        predicate: impl Fn(&SweepCell) -> bool + 'a,
    ) -> impl Iterator<Item = &'a SweepCell> {
        self.cells.iter().filter(move |c| predicate(c))
    }

    /// The first cell matching the three axis labels (any seed), if any.
    #[must_use]
    pub fn find(&self, system: &str, org: &str, workload: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.org == org && c.workload == workload)
    }

    /// Mean of `metric` over the cells matching `predicate`; 0 when none
    /// match.
    pub fn mean_where(
        &self,
        predicate: impl Fn(&SweepCell) -> bool,
        metric: impl Fn(&SimReport) -> f64,
    ) -> f64 {
        let values: Vec<f64> = self.select(predicate).map(|c| metric(&c.report)).collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

/// The per-slice Cuckoo organizations of Figure 9 for one hierarchy, as
/// `(ways, sets, provisioning)` triples in the figure's order.
///
/// The structured form is exposed (rather than only the labels inside
/// [`fig9_sweep`]) so consumers never have to re-parse display strings.
#[must_use]
pub fn fig9_organizations(
    hierarchy: ccd_coherence::Hierarchy,
) -> &'static [(usize, usize, &'static str)] {
    use ccd_coherence::Hierarchy;
    match hierarchy {
        Hierarchy::SharedL2 => &[
            (4, 1024, "2x"),
            (3, 1024, "1.5x"),
            (4, 512, "1x"),
            (3, 512, "3/4x"),
            (4, 256, "1/2x"),
            (3, 256, "3/8x"),
        ],
        Hierarchy::PrivateL2 => &[
            (4, 8192, "2x"),
            (3, 8192, "1.5x"),
            (8, 2048, "1x"),
            (3, 4096, "3/4x"),
            (8, 1024, "1/2x"),
            (3, 2048, "3/8x"),
        ],
    }
}

/// The canonical organization-axis label for an explicit `ways x sets`
/// Cuckoo geometry, shared by every figure binary that sweeps one (fig9,
/// fig10, fig11) so the labels can never drift apart.
#[must_use]
pub fn cuckoo_org_label(ways: usize, sets: usize) -> String {
    format!("Cuckoo {ways}x{sets}")
}

/// The Figure 9 provisioning sweep: the paper's under- to over-provisioned
/// Cuckoo organizations for one hierarchy, over the full workload suite.
///
/// Shared by the `fig9_provisioning` binary and the `bench_sweep`
/// serial-vs-parallel wall-clock benchmark, so both measure exactly the
/// same job list.
#[must_use]
pub fn fig9_sweep(hierarchy: ccd_coherence::Hierarchy, scale: RunScale) -> SweepSpec {
    let mut sweep = SweepSpec::new(format!("Figure 9 provisioning ({hierarchy})"))
        .system(hierarchy.to_string(), SystemConfig::table1(hierarchy))
        .workloads(WorkloadProfile::all_paper_workloads())
        .scale(scale)
        .base_seed(0xF19);
    for &(ways, sets, _) in fig9_organizations(hierarchy) {
        sweep = sweep.org(
            cuckoo_org_label(ways, sets),
            DirectorySpec::CuckooExplicit {
                ways,
                sets,
                hash: HashKind::Skewing,
            },
        );
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_coherence::Hierarchy;

    fn tiny_sweep() -> SweepSpec {
        SweepSpec::new("tiny")
            .system("Shared-L2", SystemConfig::shared_l2(4))
            .org("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0))
            .org("Sparse 2x", DirectorySpec::sparse(8, 2.0))
            .workload(WorkloadProfile::apache())
            .workload(WorkloadProfile::ocean())
            .seeds([0, 1])
            .scale(RunScale::quick())
    }

    #[test]
    fn cross_product_is_enumerated_in_axis_order() {
        let sweep = tiny_sweep();
        assert_eq!(sweep.len(), 8); // 1 system x 2 orgs x 2 workloads x 2 seeds
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].0.org, "Cuckoo 1x");
        assert_eq!(jobs[0].0.workload, "Apache");
        assert_eq!(jobs[0].0.seed, 0);
        assert_eq!(jobs[1].0.seed, 1);
        assert_eq!(jobs[2].0.workload, "ocean");
        assert_eq!(jobs[4].0.org, "Sparse 2x");
        // Trace seeds are distinct across (workload, seed) points but
        // *shared* across organizations: competing organizations replay
        // identical traces (trace-paired comparisons), and re-expanding the
        // spec reproduces the same seeds.
        let seeds: std::collections::HashSet<u64> = jobs.iter().map(|(_, j)| j.seed).collect();
        assert_eq!(seeds.len(), 4, "2 workloads x 2 seeds");
        for i in 0..4 {
            assert_eq!(
                jobs[i].1.seed,
                jobs[i + 4].1.seed,
                "same (workload, seed) point under the other org"
            );
        }
        assert_eq!(jobs[3].1.seed, sweep.jobs()[3].1.seed);
    }

    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let sweep = tiny_sweep();
        let serial = sweep.run_with(&ParallelRunner::serial()).unwrap();
        let parallel = sweep.run_with(&ParallelRunner::with_workers(8)).unwrap();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(s.org, p.org);
            assert_eq!(s.trace_seed, p.trace_seed);
            assert_eq!(s.report.refs_processed, p.report.refs_processed);
            assert_eq!(s.report.cache_misses, p.report.cache_misses);
            assert_eq!(
                s.report.directory.insertion_attempts,
                p.report.directory.insertion_attempts
            );
        }
    }

    #[test]
    fn selection_helpers_respect_axis_labels() {
        let results = tiny_sweep().run_with(&ParallelRunner::new()).unwrap();
        assert_eq!(results.select(|c| c.org == "Cuckoo 1x").count(), 4);
        assert!(results.find("Shared-L2", "Sparse 2x", "ocean").is_some());
        assert!(results.find("Shared-L2", "Sparse 2x", "nope").is_none());
        let rate = results.mean_where(|c| c.org == "Cuckoo 1x", |r| r.forced_invalidation_rate());
        assert!(rate < 0.05, "{rate}");
        assert_eq!(results.mean_where(|_| false, |r| r.cache_miss_rate()), 0.0);
    }

    #[test]
    fn scenario_workloads_ride_the_workload_axis() {
        let results = SweepSpec::new("scenarios")
            .system("Shared-L2", SystemConfig::shared_l2(4))
            .org("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0))
            .workload_str("migratory-b256")
            .unwrap()
            .workload_str("oracle")
            .unwrap()
            .scale(RunScale::quick())
            .run_with(&ParallelRunner::new())
            .unwrap();
        assert_eq!(results.cells.len(), 2);
        let migratory = results
            .find("Shared-L2", "Cuckoo 1x", "migratory-b256")
            .expect("scenario cell labelled by its spec string");
        assert!(migratory.report.refs_processed > 0);
        assert!(results.find("Shared-L2", "Cuckoo 1x", "Oracle").is_some());

        // Parse errors surface before any simulation runs.
        assert!(SweepSpec::new("bad").workload_str("martian-b2").is_err());
    }

    #[test]
    fn fig9_sweep_covers_six_orgs_and_the_full_suite() {
        for hierarchy in [Hierarchy::SharedL2, Hierarchy::PrivateL2] {
            let sweep = fig9_sweep(hierarchy, RunScale::quick());
            assert_eq!(sweep.orgs.len(), 6);
            assert_eq!(sweep.workloads.len(), 9);
            assert_eq!(sweep.len(), 6 * 9);
        }
    }
}
