//! Headline efficiency ratios quoted in the paper's abstract, introduction
//! and conclusion, derived from the same analytical model as Figures 4/13.

use ccd_bench::{write_json, TextTable};
use ccd_energy::{DirOrg, EnergyModel};

#[derive(Debug)]
struct Ratio {
    claim: String,
    paper_value: String,
    measured: f64,
}
ccd_bench::impl_to_json!(Ratio {
    claim,
    paper_value,
    measured
});

fn main() {
    println!("== Headline efficiency ratios (Sections 1 and 7) ==\n");
    let shared = EnergyModel::shared_l2();
    let private = EnergyModel::private_l2();
    let sparse8 = DirOrg::SparseCoarse {
        ways: 8,
        provisioning: 8.0,
    };

    let ratios = vec![
        Ratio {
            claim: "1024 cores: energy advantage over Tagless (Shared-L2)".to_string(),
            paper_value: "up to 80x".to_string(),
            measured: shared.energy_advantage(
                &DirOrg::cuckoo_coarse_shared(),
                &DirOrg::Tagless,
                1024,
            ),
        },
        Ratio {
            claim: "1024 cores: area advantage over Sparse 8x Coarse (Shared-L2)".to_string(),
            paper_value: "~7x".to_string(),
            measured: shared.area_advantage(&DirOrg::cuckoo_coarse_shared(), &sparse8, 1024),
        },
        Ratio {
            claim: "1024 cores: energy advantage over Sparse 8x Coarse (Shared-L2)".to_string(),
            paper_value: "11-24%".to_string(),
            measured: shared.energy_advantage(&DirOrg::cuckoo_coarse_shared(), &sparse8, 1024),
        },
        Ratio {
            claim: "16 cores: energy advantage over Duplicate-Tag (Private-L2)".to_string(),
            paper_value: "up to 16x".to_string(),
            measured: private.energy_advantage(
                &DirOrg::cuckoo_coarse_private(),
                &DirOrg::DuplicateTag,
                16,
            ),
        },
        Ratio {
            claim: "16 cores: area advantage over Sparse 8x Coarse (Private-L2)".to_string(),
            paper_value: "up to 6x".to_string(),
            measured: private.area_advantage(&DirOrg::cuckoo_coarse_private(), &sparse8, 16),
        },
        Ratio {
            claim: "1024 cores: Cuckoo area as % of L2 (Shared-L2)".to_string(),
            paper_value: "< 3%".to_string(),
            measured: shared
                .evaluate(&DirOrg::cuckoo_coarse_shared(), 1024)
                .area_relative
                * 100.0,
        },
        Ratio {
            claim: "1024 cores: Cuckoo area as % of L2 (Private-L2)".to_string(),
            paper_value: "< 30%".to_string(),
            measured: private
                .evaluate(&DirOrg::cuckoo_coarse_private(), 1024)
                .area_relative
                * 100.0,
        },
    ];

    let mut table = TextTable::new(vec!["claim", "paper", "this model"]);
    for r in &ratios {
        table.add_row(vec![
            r.claim.clone(),
            r.paper_value.clone(),
            format!("{:.1}", r.measured),
        ]);
    }
    table.print();
    write_json("headline_ratios", &ratios);
}
