//! Figure 4 — area and energy scalability of prior directory organizations
//! (the motivation figure: no Cuckoo directory yet).
//!
//! The figure's x-axis counts two caches per core (split I+D L1s) and the
//! legend includes the in-cache design, so this binary uses the Shared-L2
//! analytical model; the same sweep with the Private-L2 model is part of
//! the Figure 13 binary.

use ccd_bench::{write_json, TextTable};
use ccd_energy::{DirOrg, EnergyModel};

#[derive(Debug)]
struct Fig4Series {
    organization: String,
    cores: Vec<usize>,
    energy_percent: Vec<f64>,
    area_percent: Vec<f64>,
}
ccd_bench::impl_to_json!(Fig4Series {
    organization,
    cores,
    energy_percent,
    area_percent
});

fn main() {
    println!(
        "== Figure 4: scalability of prior directory organizations (Shared-L2, I+D L1 caches) =="
    );
    let model = EnergyModel::shared_l2();
    let cores = EnergyModel::paper_core_counts();

    let series: Vec<Fig4Series> = ccd_bench::runner_from_env().map(&DirOrg::figure4_set(), |org| {
        let points = model.sweep(org, &cores);
        Fig4Series {
            organization: org.label(),
            cores: cores.clone(),
            energy_percent: points.iter().map(|p| p.energy_relative * 100.0).collect(),
            area_percent: points.iter().map(|p| p.area_relative * 100.0).collect(),
        }
    });

    for (title, energy) in [
        ("Energy (% of a 1MB L2 tag lookup)", true),
        ("Area (% of a 1MB L2 data array)", false),
    ] {
        println!("\n{title}");
        let mut headers = vec!["organization".to_string()];
        headers.extend(cores.iter().map(|c| format!("{c}")));
        let mut table = TextTable::new(headers);
        for s in &series {
            let values = if energy {
                &s.energy_percent
            } else {
                &s.area_percent
            };
            let mut row = vec![s.organization.clone()];
            row.extend(values.iter().map(|v| format!("{v:.1}")));
            table.add_row(row);
        }
        table.print();
    }

    println!("\nPaper reference (Figure 4): Duplicate-Tag and Tagless energy grows steeply");
    println!("with core count while their area stays small; Sparse designs are energy-flat");
    println!("but area-heavy (In-Cache/full vectors grow with core count, Coarse and");
    println!("Hierarchical are flat only thanks to 8x over-provisioned capacity).");
    write_json("fig4_scalability", &series);
}
