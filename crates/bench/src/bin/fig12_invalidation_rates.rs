//! Figure 12 — forced-invalidation rates of competing directory
//! organizations.
//!
//! For every workload and both system configurations, compares the
//! forced-invalidation rate (forced evictions per directory insertion) of:
//! (a) an 8-way Sparse directory with 2× capacity, (b) an 8-way Sparse with
//! 8× capacity, (c) a 4-way skewed-associative directory with 2× capacity,
//! and (d) the selected Cuckoo directory (1× Shared-L2 / 1.5× Private-L2).

use ccd_bench::{print_system_banner, write_json, RunScale, SweepSpec, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct InvalidationRow {
    configuration: String,
    workload: String,
    sparse_2x_percent: f64,
    sparse_8x_percent: f64,
    skewed_2x_percent: f64,
    cuckoo_percent: f64,
}
ccd_bench::impl_to_json!(InvalidationRow {
    configuration,
    workload,
    sparse_2x_percent,
    sparse_8x_percent,
    skewed_2x_percent,
    cuckoo_percent
});

const ORG_LABELS: [&str; 4] = ["Sparse 2x", "Sparse 8x", "Skewed 2x", "Cuckoo"];

fn main() {
    let scale = RunScale::from_env();
    let mut rows: Vec<InvalidationRow> = Vec::new();

    for hierarchy in [Hierarchy::SharedL2, Hierarchy::PrivateL2] {
        let system = SystemConfig::table1(hierarchy);
        print_system_banner("Figure 12: directory invalidation rates", &system);
        let cuckoo = match hierarchy {
            Hierarchy::SharedL2 => DirectorySpec::cuckoo(4, 1.0),
            Hierarchy::PrivateL2 => DirectorySpec::cuckoo(3, 1.5),
        };

        let results = SweepSpec::new(format!("Figure 12 ({hierarchy})"))
            .system(hierarchy.to_string(), system)
            .org(ORG_LABELS[0], DirectorySpec::sparse(8, 2.0))
            .org(ORG_LABELS[1], DirectorySpec::sparse(8, 8.0))
            .org(ORG_LABELS[2], DirectorySpec::skewed(4, 2.0))
            .org(ORG_LABELS[3], cuckoo)
            .workloads(WorkloadProfile::all_paper_workloads())
            .scale(scale)
            .base_seed(0xF12)
            .run()
            .expect("simulation failed");

        for workload in WorkloadProfile::all_paper_workloads() {
            let rate = |org: &str| {
                results
                    .find(&hierarchy.to_string(), org, workload.name)
                    .expect("sweep covers the full cross product")
                    .report
                    .forced_invalidation_rate()
                    * 100.0
            };
            rows.push(InvalidationRow {
                configuration: hierarchy.to_string(),
                workload: workload.name.to_string(),
                sparse_2x_percent: rate(ORG_LABELS[0]),
                sparse_8x_percent: rate(ORG_LABELS[1]),
                skewed_2x_percent: rate(ORG_LABELS[2]),
                cuckoo_percent: rate(ORG_LABELS[3]),
            });
        }
    }

    for hierarchy in ["Shared-L2", "Private-L2"] {
        println!("\n{hierarchy}");
        let cuckoo_label = if hierarchy == "Shared-L2" {
            "Cuckoo 1x %"
        } else {
            "Cuckoo 1.5x %"
        };
        let mut table = TextTable::new(vec![
            "workload",
            "Sparse 2x %",
            "Sparse 8x %",
            "Skewed 2x %",
            cuckoo_label,
        ]);
        for row in rows.iter().filter(|r| r.configuration == hierarchy) {
            table.add_row(vec![
                row.workload.clone(),
                format!("{:.4}", row.sparse_2x_percent),
                format!("{:.4}", row.sparse_8x_percent),
                format!("{:.4}", row.skewed_2x_percent),
                format!("{:.4}", row.cuckoo_percent),
            ]);
        }
        table.print();
    }

    println!("\nPaper reference (Figure 12): Sparse 2x conflicts on nearly all workloads,");
    println!("Skewed 2x helps mainly the server workloads, Sparse 8x still shows significant");
    println!("rates for many workloads, and the Cuckoo directory is near zero everywhere");
    println!("(ocean at 1.5x Private-L2: 0.08% in the paper).");
    write_json("fig12_invalidation_rates", &rows);
}
