//! `bench_chaos` — fault-recovery overhead and digest-identity of the
//! supervised directory service.
//!
//! Sweeps fault plan × worker count through
//! `ccd_service::DirectoryService`: every cell streams the same
//! deterministic load under an armed `FaultPlan` — scheduled worker
//! crashes (recovered by journal replay), batch stalls, admission-control
//! shedding — and records wall-clock throughput, the recovery counters,
//! and the FNV digest of the sequence-ordered outcome log.  Each cell is
//! **asserted digest-identical to the fault-free serial reference**
//! (`ServiceReport::recovery_semantics`): crashing a worker mid-stream
//! must not change a single byte of what the service computes, only how
//! long it takes.
//!
//! Results land in `BENCH_chaos.json` at the repository root *and* under
//! `results/`.  All fields except the wall-clock ones (`seconds`,
//! `mops_per_sec`) are deterministic, so CI golden-checks the quick-scale
//! output with those two field names filtered out.

use ccd_bench::{write_bench_json, RunScale, TextTable};
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};
use std::time::Instant;

/// Shard organization: a 16 K-entry 4-way cuckoo directory tracking 16
/// caches (the `bench_service` organization, for comparable numbers).
const SPEC: &str = "cuckoo-4x4096-c16";
const CORES: usize = 16;
const SHARDS: usize = 4;
const BASE_SEED: u64 = 0xC4A0;
const WORKLOAD: &str = "migratory-zipf0.9";
const WORKER_AXIS: &[usize] = &[1, 2, 4];

#[derive(Debug)]
struct ChaosRow {
    plan: String,
    workers: usize,
    requests: u64,
    recoveries: u64,
    shed: u64,
    entries: u64,
    invalidations: u64,
    forced_invalidations: u64,
    outcome_digest: String,
    matches_serial: bool,
    seconds: f64,
    mops_per_sec: f64,
}
ccd_bench::impl_to_json!(ChaosRow {
    plan,
    workers,
    requests,
    recoveries,
    shed,
    entries,
    invalidations,
    forced_invalidations,
    outcome_digest,
    matches_serial,
    seconds,
    mops_per_sec,
});

#[derive(Debug)]
struct ChaosBench {
    scale: String,
    spec: String,
    workload: String,
    cores: usize,
    shards: usize,
    requests: u64,
    serial_digest: String,
    rows: Vec<ChaosRow>,
}
ccd_bench::impl_to_json!(ChaosBench {
    scale,
    spec,
    workload,
    cores,
    shards,
    requests,
    serial_digest,
    rows,
});

fn requests_for(scale_name: &str) -> u64 {
    match scale_name {
        "quick" => 100_000,
        "full" => 2_000_000,
        _ => 500_000,
    }
}

/// The fault-plan axis.  Crash triggers scale with the request count so
/// every scale actually exercises recovery (a trigger beyond the stream
/// never fires); worker indices stay within the smallest worker count on
/// the axis so one plan sweeps every topology.
fn plans_for(requests: u64) -> Vec<String> {
    let early = requests / 10;
    let mid = requests / 2;
    let late = requests - requests / 10;
    vec![
        "faults".to_string(), // armed-but-empty: supervision overhead only
        format!("faults-crash@w0:{mid}"),
        format!("faults-crash@w0:{early}-crash@w0:{late}"),
        format!("faults-seed11-crash@w0:{mid}-stall@w0:1ms-shed0.01"),
    ]
}

fn run_cell(workers: usize, plan: &str, load: &LoadSpec) -> (ServiceReport, f64) {
    let config = ServiceConfig::new(SPEC, SHARDS, workers)
        .with_fault_spec(plan)
        .expect("bench fault plan parses");
    let service = DirectoryService::build_standard(config).expect("bench topology builds");
    let start = Instant::now();
    let report = service
        .run_load(load)
        .expect("recoverable bench plan recovers");
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let (_, scale_name) = RunScale::from_env_named();
    let requests = requests_for(scale_name);
    let plans = plans_for(requests);
    println!("== BENCH_chaos: fault injection and recovery determinism ==");
    println!(
        "   spec {SPEC}, {WORKLOAD}, {requests} requests/cell, scale {scale_name}, \
         {} plans x workers {WORKER_AXIS:?}",
        plans.len()
    );

    let load = LoadSpec::parse(WORKLOAD, CORES, BASE_SEED, requests).expect("workload parses");

    // The fault-free digest-identity reference.
    let serial = DirectoryService::build_standard(ServiceConfig::new(SPEC, SHARDS, 1))
        .expect("bench topology builds")
        .run_load_serial(&load)
        .expect("serial reference runs");

    // Untimed warm-up: pay one-time process costs before the timed cells.
    let _ = run_cell(
        *WORKER_AXIS.last().unwrap(),
        &plans[1],
        &LoadSpec::parse(WORKLOAD, CORES, BASE_SEED, requests.min(20_000)).unwrap(),
    );

    let mut rows: Vec<ChaosRow> = Vec::new();
    for plan in &plans {
        for &workers in WORKER_AXIS {
            let (report, seconds) = run_cell(workers, plan, &load);
            let matches_serial = report.recovery_semantics() == serial.recovery_semantics();
            assert!(
                matches_serial,
                "`{plan}` x {workers} workers diverged from the fault-free \
                 serial reference"
            );
            rows.push(ChaosRow {
                plan: plan.clone(),
                workers,
                requests: report.requests,
                recoveries: report.stats.recoveries.get(),
                shed: report.stats.shed.get(),
                entries: report.entries as u64,
                invalidations: report.stats.invalidations.get(),
                forced_invalidations: report.stats.forced_invalidations.get(),
                outcome_digest: format!("{:016x}", report.outcome_digest),
                matches_serial,
                seconds,
                mops_per_sec: report.requests as f64 / seconds.max(1e-9) / 1e6,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "plan",
        "workers",
        "Mreq/s",
        "recoveries",
        "shed",
        "digest",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.plan.clone(),
            row.workers.to_string(),
            format!("{:.2}", row.mops_per_sec),
            row.recoveries.to_string(),
            row.shed.to_string(),
            row.outcome_digest.clone(),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nall {} cells digest-identical to the fault-free serial reference: {}",
        rows.len(),
        rows.iter().all(|r| r.matches_serial)
    );

    let bench = ChaosBench {
        scale: scale_name.to_string(),
        spec: SPEC.to_string(),
        workload: WORKLOAD.to_string(),
        cores: CORES,
        shards: SHARDS,
        requests,
        serial_digest: format!("{:016x}", serial.outcome_digest),
        rows,
    };
    write_bench_json("BENCH_chaos", &bench);
}
