//! Figure 9 — Cuckoo directory insertion attempts and failure rates across
//! provisioning factors.
//!
//! Sweeps the same under- to over-provisioned Cuckoo organizations the paper
//! evaluates for the Shared-L2 and Private-L2 configurations, averaging the
//! insertion attempts and forced-invalidation rates over the full workload
//! suite.

use ccd_bench::{
    parallel_map, print_system_banner, simulate_workload, write_json, RunScale, TextTable,
};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_hash::HashKind;
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct ProvisioningRow {
    configuration: String,
    organization: String,
    provisioning: String,
    avg_insertion_attempts: f64,
    forced_invalidation_rate_percent: f64,
}
ccd_bench::impl_to_json!(ProvisioningRow {
    configuration,
    organization,
    provisioning,
    avg_insertion_attempts,
    forced_invalidation_rate_percent
});

/// The per-slice organizations of Figure 9: (ways, sets, provisioning label).
fn organizations(hierarchy: Hierarchy) -> Vec<(usize, usize, &'static str)> {
    match hierarchy {
        Hierarchy::SharedL2 => vec![
            (4, 1024, "2x"),
            (3, 1024, "1.5x"),
            (4, 512, "1x"),
            (3, 512, "3/4x"),
            (4, 256, "1/2x"),
            (3, 256, "3/8x"),
        ],
        Hierarchy::PrivateL2 => vec![
            (4, 8192, "2x"),
            (3, 8192, "1.5x"),
            (8, 2048, "1x"),
            (3, 4096, "3/4x"),
            (8, 1024, "1/2x"),
            (3, 2048, "3/8x"),
        ],
    }
}

fn main() {
    let scale = RunScale::from_env();
    let workloads = WorkloadProfile::all_paper_workloads();
    let mut rows = Vec::new();

    for hierarchy in [Hierarchy::SharedL2, Hierarchy::PrivateL2] {
        let system = SystemConfig::table1(hierarchy);
        print_system_banner("Figure 9: Cuckoo provisioning sweep", &system);

        for (ways, sets, label) in organizations(hierarchy) {
            let spec = DirectorySpec::CuckooExplicit {
                ways,
                sets,
                hash: HashKind::Skewing,
            };
            let reports = parallel_map(workloads.clone(), |profile| {
                simulate_workload(&system, &spec, profile, scale, 0xF19 + ways as u64)
                    .expect("simulation failed")
            });
            let attempts: f64 = reports
                .iter()
                .map(|r| r.avg_insertion_attempts())
                .sum::<f64>()
                / reports.len() as f64;
            let invalidation_rate: f64 = reports
                .iter()
                .map(|r| r.forced_invalidation_rate())
                .sum::<f64>()
                / reports.len() as f64;
            rows.push(ProvisioningRow {
                configuration: hierarchy.to_string(),
                organization: format!("{ways} x {sets}"),
                provisioning: label.to_string(),
                avg_insertion_attempts: attempts,
                forced_invalidation_rate_percent: invalidation_rate * 100.0,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "configuration",
        "organization",
        "provisioning",
        "avg attempts",
        "forced invalidation %",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.configuration.clone(),
            row.organization.clone(),
            row.provisioning.clone(),
            format!("{:.2}", row.avg_insertion_attempts),
            format!("{:.3}", row.forced_invalidation_rate_percent),
        ]);
    }
    println!();
    table.print();

    println!("\nPaper reference (Figure 9): under-provisioning (< 1x) causes an exponential");
    println!("increase in attempts and failures; 1x suffices for Shared-L2 and 1.5x for");
    println!("Private-L2.");
    write_json("fig9_provisioning", &rows);
}
