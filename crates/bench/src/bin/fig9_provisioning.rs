//! Figure 9 — Cuckoo directory insertion attempts and failure rates across
//! provisioning factors.
//!
//! Sweeps the same under- to over-provisioned Cuckoo organizations the paper
//! evaluates for the Shared-L2 and Private-L2 configurations, averaging the
//! insertion attempts and forced-invalidation rates over the full workload
//! suite.  The sweep itself is the declarative [`fig9_sweep`] spec, fanned
//! across threads by the engine's parallel runner (`CCD_WORKERS=1` forces a
//! serial run with byte-identical output).

use ccd_bench::sweep::{cuckoo_org_label, fig9_organizations};
use ccd_bench::{fig9_sweep, print_system_banner, write_json, RunScale, TextTable};
use ccd_coherence::{Hierarchy, SystemConfig};

#[derive(Debug)]
struct ProvisioningRow {
    configuration: String,
    organization: String,
    provisioning: String,
    avg_insertion_attempts: f64,
    forced_invalidation_rate_percent: f64,
}
ccd_bench::impl_to_json!(ProvisioningRow {
    configuration,
    organization,
    provisioning,
    avg_insertion_attempts,
    forced_invalidation_rate_percent
});

fn main() {
    let scale = RunScale::from_env();
    let mut rows = Vec::new();

    for hierarchy in [Hierarchy::SharedL2, Hierarchy::PrivateL2] {
        let system = SystemConfig::table1(hierarchy);
        print_system_banner("Figure 9: Cuckoo provisioning sweep", &system);

        let results = fig9_sweep(hierarchy, scale)
            .run()
            .expect("simulation failed");
        for &(ways, sets, provisioning) in fig9_organizations(hierarchy) {
            let org_label = cuckoo_org_label(ways, sets);
            let attempts =
                results.mean_where(|c| c.org == org_label, |r| r.avg_insertion_attempts());
            let invalidation_rate =
                results.mean_where(|c| c.org == org_label, |r| r.forced_invalidation_rate());
            rows.push(ProvisioningRow {
                configuration: hierarchy.to_string(),
                organization: format!("{ways} x {sets}"),
                provisioning: provisioning.to_string(),
                avg_insertion_attempts: attempts,
                forced_invalidation_rate_percent: invalidation_rate * 100.0,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "configuration",
        "organization",
        "provisioning",
        "avg attempts",
        "forced invalidation %",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.configuration.clone(),
            row.organization.clone(),
            row.provisioning.clone(),
            format!("{:.2}", row.avg_insertion_attempts),
            format!("{:.3}", row.forced_invalidation_rate_percent),
        ]);
    }
    println!();
    table.print();

    println!("\nPaper reference (Figure 9): under-provisioning (< 1x) causes an exponential");
    println!("increase in attempts and failures; 1x suffices for Shared-L2 and 1.5x for");
    println!("Private-L2.");
    write_json("fig9_provisioning", &rows);
}
