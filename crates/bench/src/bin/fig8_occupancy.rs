//! Figure 8 — average directory occupancy per workload.
//!
//! Runs every paper workload on the 16-core Shared-L2 and Private-L2
//! systems and reports the average directory occupancy *relative to the
//! worst-case tracked blocks* (a 1× capacity directory), which is how the
//! paper motivates that the Shared-L2 configuration needs no
//! over-provisioning while the Private-L2 configuration needs ~1.5×
//! (Section 5.2).

use ccd_bench::{print_system_banner, write_json, RunScale, SweepSpec, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct OccupancyRow {
    workload: String,
    shared_l2_occupancy: f64,
    private_l2_occupancy: f64,
}
ccd_bench::impl_to_json!(OccupancyRow {
    workload,
    shared_l2_occupancy,
    private_l2_occupancy
});

/// Rescales a reported occupancy (relative to the amply provisioned 2x
/// measurement directory) to the worst-case 1x capacity.
fn rescale(system: &SystemConfig, occupancy: f64) -> f64 {
    let capacity_per_slice = 4.0
        * ((system.tracked_frames_per_slice() as f64 * 2.0 / 4.0).ceil() as usize)
            .next_power_of_two() as f64;
    occupancy * capacity_per_slice / system.tracked_frames_per_slice() as f64
}

fn main() {
    let scale = RunScale::from_env();
    let shared = SystemConfig::table1(Hierarchy::SharedL2);
    let private = SystemConfig::table1(Hierarchy::PrivateL2);
    print_system_banner("Figure 8: average directory occupancy", &shared);
    print_system_banner("", &private);
    println!();

    // An amply provisioned (2x) Cuckoo directory, so no forced evictions
    // perturb the measurement; the occupancy is rescaled to 1x below.
    let results = SweepSpec::new("Figure 8 occupancy")
        .system("Shared-L2", shared.clone())
        .system("Private-L2", private.clone())
        .org("Cuckoo 2x", DirectorySpec::cuckoo(4, 2.0))
        .workloads(WorkloadProfile::all_paper_workloads())
        .scale(scale)
        .base_seed(0x0CC)
        .run()
        .expect("simulation failed");

    let rows: Vec<OccupancyRow> = WorkloadProfile::all_paper_workloads()
        .iter()
        .map(|profile| {
            let s = results
                .find("Shared-L2", "Cuckoo 2x", profile.name)
                .expect("shared cell");
            let p = results
                .find("Private-L2", "Cuckoo 2x", profile.name)
                .expect("private cell");
            OccupancyRow {
                workload: profile.name.to_string(),
                shared_l2_occupancy: rescale(&shared, s.report.avg_directory_occupancy),
                private_l2_occupancy: rescale(&private, p.report.avg_directory_occupancy),
            }
        })
        .collect();

    let mut table = TextTable::new(vec![
        "workload",
        "Shared-L2 occupancy %",
        "Private-L2 occupancy %",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            format!("{:.1}", row.shared_l2_occupancy * 100.0),
            format!("{:.1}", row.private_l2_occupancy * 100.0),
        ]);
    }
    table.print();

    println!("\nPaper reference (Figure 8): Shared-L2 occupancy stays well below 100% for all");
    println!("workloads; Private-L2 occupancy approaches 100% for the DSS and scientific");
    println!("workloads (ocean is the extreme with nearly all-private blocks).");
    write_json("fig8_occupancy", &rows);
}
