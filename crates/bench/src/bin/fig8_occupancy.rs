//! Figure 8 — average directory occupancy per workload.
//!
//! Runs every paper workload on the 16-core Shared-L2 and Private-L2
//! systems and reports the average directory occupancy *relative to the
//! worst-case tracked blocks* (a 1× capacity directory), which is how the
//! paper motivates that the Shared-L2 configuration needs no
//! over-provisioning while the Private-L2 configuration needs ~1.5×
//! (Section 5.2).

use ccd_bench::{
    parallel_map, print_system_banner, simulate_workload, write_json, RunScale, TextTable,
};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct OccupancyRow {
    workload: String,
    shared_l2_occupancy: f64,
    private_l2_occupancy: f64,
}
ccd_bench::impl_to_json!(OccupancyRow {
    workload,
    shared_l2_occupancy,
    private_l2_occupancy
});

fn measure(system: &SystemConfig, profile: &WorkloadProfile, scale: RunScale) -> f64 {
    // Use an amply provisioned (2x) Cuckoo directory so no forced evictions
    // perturb the measurement, then rescale the reported occupancy to the
    // worst-case (1x) capacity.
    let spec = DirectorySpec::cuckoo(4, 2.0);
    let report = simulate_workload(
        system,
        &spec,
        profile,
        scale,
        0x0CC + profile.name.len() as u64,
    )
    .expect("simulation failed");
    let capacity_per_slice = 4.0
        * ((system.tracked_frames_per_slice() as f64 * 2.0 / 4.0).ceil() as usize)
            .next_power_of_two() as f64;
    report.avg_directory_occupancy * capacity_per_slice / system.tracked_frames_per_slice() as f64
}

fn main() {
    let scale = RunScale::from_env();
    let shared = SystemConfig::table1(Hierarchy::SharedL2);
    let private = SystemConfig::table1(Hierarchy::PrivateL2);
    print_system_banner("Figure 8: average directory occupancy", &shared);
    print_system_banner("", &private);
    println!();

    let workloads = WorkloadProfile::all_paper_workloads();
    let rows: Vec<OccupancyRow> = parallel_map(workloads, |profile| OccupancyRow {
        workload: profile.name.to_string(),
        shared_l2_occupancy: measure(&shared, profile, scale),
        private_l2_occupancy: measure(&private, profile, scale),
    });

    let mut table = TextTable::new(vec![
        "workload",
        "Shared-L2 occupancy %",
        "Private-L2 occupancy %",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            format!("{:.1}", row.shared_l2_occupancy * 100.0),
            format!("{:.1}", row.private_l2_occupancy * 100.0),
        ]);
    }
    table.print();

    println!("\nPaper reference (Figure 8): Shared-L2 occupancy stays well below 100% for all");
    println!("workloads; Private-L2 occupancy approaches 100% for the DSS and scientific");
    println!("workloads (ocean is the extreme with nearly all-private blocks).");
    write_json("fig8_occupancy", &rows);
}
