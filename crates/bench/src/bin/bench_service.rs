//! `bench_service` — throughput/latency scaling of the concurrent
//! directory service.
//!
//! Sweeps worker count × shard count × workload through
//! `ccd_service::DirectoryService`: every cell streams the same
//! deterministic load (three catalog workloads, seed-paired across all
//! topologies) through the service and records wall-clock throughput,
//! the merged statistics, and the FNV digest of the sequence-ordered
//! outcome log.  Before timing anything, each (workload, shard count)
//! pair is applied through the inline serial reference
//! (`DirectoryService::run_serial`) and **every concurrent cell is
//! asserted bit-identical to it** — the service's core determinism
//! contract, exercised at benchmark scale on every run.
//!
//! A final **resize-armed** section starts the migratory workload on a
//! 4x-undersized shard organization with a live [`ResizePolicy`] armed:
//! every cell must stay bit-identical to the resize-armed serial
//! reference, and — because neither side forces an eviction — its
//! attempt-independent view (`ServiceReport::resize_semantics`) must
//! equal the statically provisioned serial reference at the target
//! geometry.
//!
//! Results land in `BENCH_service.json` at the repository root *and*
//! under `results/` (one code path writes both).  All fields except the
//! wall-clock ones (`seconds`, `mops_per_sec`) are deterministic, so CI
//! golden-checks the quick-scale output with those two field names
//! filtered out.
//!
//! [`ResizePolicy`]: ccd_service::ResizePolicy

use ccd_bench::{write_bench_json, RunScale, TextTable};
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};
use std::time::Instant;

/// Shard organization: a 16 K-entry 4-way cuckoo directory tracking 16
/// caches; the set count divides by every shard count on the axis.
const SPEC: &str = "cuckoo-4x4096-c16";
const CORES: usize = 16;
const BASE_SEED: u64 = 0x5E21;

/// The workload axis: the calibrated Oracle profile plus two scenario
/// families with very different sharing behaviour.
const WORKLOADS: &[&str] = &["oracle", "migratory-zipf0.9", "falseshare"];
const SHARD_AXIS: &[usize] = &[4, 16];
const WORKER_AXIS: &[usize] = &[1, 2, 4];

/// The resize-armed section: a 4x-undersized organization that must grow
/// online to hold the migratory workload's 4096 distinct blocks, and the
/// schedule that grows each of its 4 shards once, well before saturation.
const RESIZE_SPEC: &str = "cuckoo-4x1024-c16";
const RESIZE_POLICY: &str = "resize-grow2@60-every64-max1";
const RESIZE_WORKLOAD: &str = "migratory-zipf0.9";
const RESIZE_SHARDS: usize = 4;

#[derive(Debug)]
struct ServiceRow {
    workload: String,
    shards: usize,
    workers: usize,
    resize: String,
    resizes: u64,
    requests: u64,
    entries: u64,
    insertions: u64,
    invalidations: u64,
    forced_invalidations: u64,
    outcome_digest: String,
    matches_serial: bool,
    seconds: f64,
    mops_per_sec: f64,
}
ccd_bench::impl_to_json!(ServiceRow {
    workload,
    shards,
    workers,
    resize,
    resizes,
    requests,
    entries,
    insertions,
    invalidations,
    forced_invalidations,
    outcome_digest,
    matches_serial,
    seconds,
    mops_per_sec,
});

#[derive(Debug)]
struct ServiceBench {
    scale: String,
    spec: String,
    cores: usize,
    requests: u64,
    rows: Vec<ServiceRow>,
}
ccd_bench::impl_to_json!(ServiceBench {
    scale,
    spec,
    cores,
    requests,
    rows,
});

fn requests_for(scale_name: &str) -> u64 {
    match scale_name {
        "quick" => 150_000,
        "full" => 4_000_000,
        _ => 1_000_000,
    }
}

fn load_for(workload: &str, index: usize, requests: u64) -> LoadSpec {
    // Seeds derive from the workload index only, so every (shards,
    // workers) topology — and the serial reference — streams the same
    // trace for a given workload.
    LoadSpec::parse(workload, CORES, BASE_SEED + index as u64, requests)
        .expect("catalog workload parses")
}

fn run_cell(shards: usize, workers: usize, load: &LoadSpec) -> (ServiceReport, f64) {
    let config = ServiceConfig::new(SPEC, shards, workers);
    let service = DirectoryService::build_standard(config).expect("bench topology builds");
    let start = Instant::now();
    let report = service.run_load(load).expect("bench load runs");
    (report, start.elapsed().as_secs_f64())
}

fn armed_row(workers: usize, report: &ServiceReport, seconds: f64) -> ServiceRow {
    ServiceRow {
        workload: RESIZE_WORKLOAD.to_string(),
        shards: RESIZE_SHARDS,
        workers,
        resize: RESIZE_POLICY.to_string(),
        resizes: report.stats.resizes.get(),
        requests: report.requests,
        entries: report.entries as u64,
        insertions: report.stats.directory.insertions.get(),
        invalidations: report.stats.invalidations.get(),
        forced_invalidations: report.stats.forced_invalidations.get(),
        outcome_digest: format!("{:016x}", report.outcome_digest),
        matches_serial: true,
        seconds,
        mops_per_sec: report.requests as f64 / seconds.max(1e-9) / 1e6,
    }
}

fn main() {
    let (_, scale_name) = RunScale::from_env_named();
    let requests = requests_for(scale_name);
    println!("== BENCH_service: shard-per-worker directory service scaling ==");
    println!(
        "   spec {SPEC}, {CORES} cores, {requests} requests/cell, scale {scale_name}, \
         shards x workers = {SHARD_AXIS:?} x {WORKER_AXIS:?}"
    );

    // Untimed warm-up: pay one-time process costs before the timed cells.
    let _ = run_cell(
        SHARD_AXIS[0],
        *WORKER_AXIS.last().unwrap(),
        &load_for(WORKLOADS[0], 0, requests.min(50_000)),
    );

    let mut rows: Vec<ServiceRow> = Vec::new();
    for (index, workload) in WORKLOADS.iter().enumerate() {
        let load = load_for(workload, index, requests);
        for &shards in SHARD_AXIS {
            // The bit-identity reference for this (workload, shards) pair.
            let serial = DirectoryService::build_standard(ServiceConfig::new(SPEC, shards, 1))
                .expect("bench topology builds")
                .run_load_serial(&load)
                .expect("serial reference runs");
            for &workers in WORKER_AXIS {
                let (report, seconds) = run_cell(shards, workers, &load);
                let matches_serial = report.semantics() == serial.semantics();
                assert!(
                    matches_serial,
                    "{workload} x {shards} shards x {workers} workers diverged \
                     from serial application"
                );
                rows.push(ServiceRow {
                    workload: (*workload).to_string(),
                    shards,
                    workers,
                    resize: "-".to_string(),
                    resizes: 0,
                    requests: report.requests,
                    entries: report.entries as u64,
                    insertions: report.stats.directory.insertions.get(),
                    invalidations: report.stats.invalidations.get(),
                    forced_invalidations: report.stats.forced_invalidations.get(),
                    outcome_digest: format!("{:016x}", report.outcome_digest),
                    matches_serial,
                    seconds,
                    mops_per_sec: report.requests as f64 / seconds.max(1e-9) / 1e6,
                });
            }
        }
    }

    // --- the resize-armed section ------------------------------------
    // Undersized shards plus an armed grow-2x schedule must (a) stay
    // bit-identical to the armed serial reference at every worker count
    // and (b) decide exactly what a statically provisioned serial run at
    // the grown geometry decides (`resize_semantics`, valid because
    // neither side forces an eviction).
    let load = load_for(
        RESIZE_WORKLOAD,
        WORKLOADS
            .iter()
            .position(|w| *w == RESIZE_WORKLOAD)
            .unwrap(),
        requests,
    );
    let armed_config = |workers: usize| {
        ServiceConfig::new(RESIZE_SPEC, RESIZE_SHARDS, workers)
            .with_resize_spec(RESIZE_POLICY)
            .expect("bench resize policy parses")
    };
    let armed_serial = DirectoryService::build_standard(armed_config(1))
        .expect("bench topology builds")
        .run_load_serial(&load)
        .expect("armed serial reference runs");
    let fixed_serial = DirectoryService::build_standard(ServiceConfig::new(SPEC, RESIZE_SHARDS, 1))
        .expect("bench topology builds")
        .run_load_serial(&load)
        .expect("static serial reference runs");
    assert_eq!(
        armed_serial.stats.resizes.get(),
        RESIZE_SHARDS as u64,
        "every undersized shard must grow exactly once"
    );
    for report in [&armed_serial, &fixed_serial] {
        assert_eq!(report.stats.directory.insertion_failures.get(), 0);
    }
    for &workers in WORKER_AXIS {
        let service =
            DirectoryService::build_standard(armed_config(workers)).expect("bench topology builds");
        let start = Instant::now();
        let report = service.run_load(&load).expect("armed bench load runs");
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            report.semantics(),
            armed_serial.semantics(),
            "{workers} armed workers diverged from the armed serial reference"
        );
        assert_eq!(
            report.resize_semantics(),
            fixed_serial.resize_semantics(),
            "{workers} armed workers diverged from the statically provisioned reference"
        );
        rows.push(armed_row(workers, &report, seconds));
    }

    let mut table = TextTable::new(vec![
        "workload",
        "shards",
        "workers",
        "resize",
        "Mreq/s",
        "entries",
        "forced inv",
        "digest",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            row.shards.to_string(),
            row.workers.to_string(),
            if row.resize == "-" {
                "-".to_string()
            } else {
                format!("{} x{}", row.resize, row.resizes)
            },
            format!("{:.2}", row.mops_per_sec),
            row.entries.to_string(),
            row.forced_invalidations.to_string(),
            row.outcome_digest.clone(),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nall {} cells bit-identical to serial application: {}",
        rows.len(),
        rows.iter().all(|r| r.matches_serial)
    );

    let bench = ServiceBench {
        scale: scale_name.to_string(),
        spec: SPEC.to_string(),
        cores: CORES,
        requests,
        rows,
    };
    write_bench_json("BENCH_service", &bench);
}
