//! `bench_service` — throughput/latency scaling of the concurrent
//! directory service.
//!
//! Sweeps worker count × shard count × workload through
//! `ccd_service::DirectoryService`: every cell streams the same
//! deterministic load (three catalog workloads, seed-paired across all
//! topologies) through the service and records wall-clock throughput,
//! the merged statistics, and the FNV digest of the sequence-ordered
//! outcome log.  Before timing anything, each (workload, shard count)
//! pair is applied through the inline serial reference
//! (`DirectoryService::run_serial`) and **every concurrent cell is
//! asserted bit-identical to it** — the service's core determinism
//! contract, exercised at benchmark scale on every run.
//!
//! Results land in `BENCH_service.json` at the repository root *and*
//! under `results/` (one code path writes both).  All fields except the
//! wall-clock ones (`seconds`, `mops_per_sec`) are deterministic, so CI
//! golden-checks the quick-scale output with those two field names
//! filtered out.

use ccd_bench::{write_bench_json, RunScale, TextTable};
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};
use std::time::Instant;

/// Shard organization: a 16 K-entry 4-way cuckoo directory tracking 16
/// caches; the set count divides by every shard count on the axis.
const SPEC: &str = "cuckoo-4x4096-c16";
const CORES: usize = 16;
const BASE_SEED: u64 = 0x5E21;

/// The workload axis: the calibrated Oracle profile plus two scenario
/// families with very different sharing behaviour.
const WORKLOADS: &[&str] = &["oracle", "migratory-zipf0.9", "falseshare"];
const SHARD_AXIS: &[usize] = &[4, 16];
const WORKER_AXIS: &[usize] = &[1, 2, 4];

#[derive(Debug)]
struct ServiceRow {
    workload: String,
    shards: usize,
    workers: usize,
    requests: u64,
    entries: u64,
    insertions: u64,
    invalidations: u64,
    forced_invalidations: u64,
    outcome_digest: String,
    matches_serial: bool,
    seconds: f64,
    mops_per_sec: f64,
}
ccd_bench::impl_to_json!(ServiceRow {
    workload,
    shards,
    workers,
    requests,
    entries,
    insertions,
    invalidations,
    forced_invalidations,
    outcome_digest,
    matches_serial,
    seconds,
    mops_per_sec,
});

#[derive(Debug)]
struct ServiceBench {
    scale: String,
    spec: String,
    cores: usize,
    requests: u64,
    rows: Vec<ServiceRow>,
}
ccd_bench::impl_to_json!(ServiceBench {
    scale,
    spec,
    cores,
    requests,
    rows,
});

fn requests_for(scale_name: &str) -> u64 {
    match scale_name {
        "quick" => 150_000,
        "full" => 4_000_000,
        _ => 1_000_000,
    }
}

fn load_for(workload: &str, index: usize, requests: u64) -> LoadSpec {
    // Seeds derive from the workload index only, so every (shards,
    // workers) topology — and the serial reference — streams the same
    // trace for a given workload.
    LoadSpec::parse(workload, CORES, BASE_SEED + index as u64, requests)
        .expect("catalog workload parses")
}

fn run_cell(shards: usize, workers: usize, load: &LoadSpec) -> (ServiceReport, f64) {
    let config = ServiceConfig::new(SPEC, shards, workers);
    let service = DirectoryService::build_standard(config).expect("bench topology builds");
    let start = Instant::now();
    let report = service.run_load(load).expect("bench load runs");
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let (_, scale_name) = RunScale::from_env_named();
    let requests = requests_for(scale_name);
    println!("== BENCH_service: shard-per-worker directory service scaling ==");
    println!(
        "   spec {SPEC}, {CORES} cores, {requests} requests/cell, scale {scale_name}, \
         shards x workers = {SHARD_AXIS:?} x {WORKER_AXIS:?}"
    );

    // Untimed warm-up: pay one-time process costs before the timed cells.
    let _ = run_cell(
        SHARD_AXIS[0],
        *WORKER_AXIS.last().unwrap(),
        &load_for(WORKLOADS[0], 0, requests.min(50_000)),
    );

    let mut rows: Vec<ServiceRow> = Vec::new();
    for (index, workload) in WORKLOADS.iter().enumerate() {
        let load = load_for(workload, index, requests);
        for &shards in SHARD_AXIS {
            // The bit-identity reference for this (workload, shards) pair.
            let serial = DirectoryService::build_standard(ServiceConfig::new(SPEC, shards, 1))
                .expect("bench topology builds")
                .run_load_serial(&load)
                .expect("serial reference runs");
            for &workers in WORKER_AXIS {
                let (report, seconds) = run_cell(shards, workers, &load);
                let matches_serial = report.semantics() == serial.semantics();
                assert!(
                    matches_serial,
                    "{workload} x {shards} shards x {workers} workers diverged \
                     from serial application"
                );
                rows.push(ServiceRow {
                    workload: (*workload).to_string(),
                    shards,
                    workers,
                    requests: report.requests,
                    entries: report.entries as u64,
                    insertions: report.stats.directory.insertions.get(),
                    invalidations: report.stats.invalidations.get(),
                    forced_invalidations: report.stats.forced_invalidations.get(),
                    outcome_digest: format!("{:016x}", report.outcome_digest),
                    matches_serial,
                    seconds,
                    mops_per_sec: report.requests as f64 / seconds.max(1e-9) / 1e6,
                });
            }
        }
    }

    let mut table = TextTable::new(vec![
        "workload",
        "shards",
        "workers",
        "Mreq/s",
        "entries",
        "forced inv",
        "digest",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            row.shards.to_string(),
            row.workers.to_string(),
            format!("{:.2}", row.mops_per_sec),
            row.entries.to_string(),
            row.forced_invalidations.to_string(),
            row.outcome_digest.clone(),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nall {} cells bit-identical to serial application: {}",
        rows.len(),
        rows.iter().all(|r| r.matches_serial)
    );

    let bench = ServiceBench {
        scale: scale_name.to_string(),
        spec: SPEC.to_string(),
        cores: CORES,
        requests,
        rows,
    };
    write_bench_json("BENCH_service", &bench);
}
