//! Replays a recorded `CCDT` trace against a directory organization.
//!
//! ```text
//! trace_replay <trace.ccdt> [--org SPEC] [--hierarchy shared|private] [--warmup N]
//! ```
//!
//! The system is sized from the trace header's core count; `--org` takes
//! either a paper label shortcut (`cuckoo`, `sparse`, `skewed`) or any
//! `ccd-directory` spec string (`"sharded4:cuckoo-4x512-skew"`).  The first
//! `--warmup` references only warm the caches; the rest are measured.
//! Replaying the same file twice produces byte-identical reports.

use ccd_coherence::{DirectorySpec, Hierarchy, SimJob, SystemConfig};
use ccd_workloads::{TraceReader, WorkloadSpec};
use std::process::ExitCode;

const USAGE: &str =
    "usage: trace_replay <trace.ccdt> [--org SPEC] [--hierarchy shared|private] [--warmup N]";

fn org_spec(name: &str) -> Result<DirectorySpec, String> {
    match name {
        "cuckoo" => Ok(DirectorySpec::cuckoo(4, 1.0)),
        "sparse" => Ok(DirectorySpec::sparse(8, 2.0)),
        "skewed" => Ok(DirectorySpec::skewed(4, 2.0)),
        custom => DirectorySpec::custom(custom).map_err(|e| e.to_string()),
    }
}

fn run() -> Result<(), String> {
    let mut positional = Vec::new();
    let mut org = DirectorySpec::cuckoo(4, 1.0);
    let mut hierarchy = Hierarchy::SharedL2;
    let mut warmup = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--org" => org = org_spec(&flag_value("--org")?)?,
            "--hierarchy" => {
                hierarchy = match flag_value("--hierarchy")?.as_str() {
                    "shared" => Hierarchy::SharedL2,
                    "private" => Hierarchy::PrivateL2,
                    other => return Err(format!("unknown hierarchy `{other}`\n{USAGE}")),
                }
            }
            "--warmup" => {
                warmup = flag_value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            _ => positional.push(arg),
        }
    }
    let [path] = positional.try_into().map_err(|_| USAGE.to_string())?;

    let header = TraceReader::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let cores = header.num_cores() as usize;
    let total = header.record_count();
    if warmup >= total {
        return Err(format!(
            "--warmup {warmup} consumes the whole trace ({total} records)"
        ));
    }

    let job = SimJob {
        system: SystemConfig::shared_l2(cores).with_hierarchy(hierarchy),
        spec: org,
        workload: WorkloadSpec::replay(&path),
        seed: 0, // ignored by replays
        warmup_refs: warmup,
        measure_refs: total - warmup,
    };
    let report = job.run().map_err(|e| e.to_string())?;

    println!("== replayed {path}: {total} refs ({cores} cores, {warmup} warm-up) ==",);
    println!("   organization: {}", report.organization);
    println!("{}", report.summary());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
