//! Serial-vs-parallel sweep wall-clock benchmark.
//!
//! Runs the Figure 9 provisioning sweep — the largest simulation sweep in
//! the suite (2 hierarchies × 6 organizations × 9 workloads) — once on a
//! single worker and once on all available workers, verifies the two runs
//! produce *byte-identical* results, and records both wall-clocks in
//! `results/BENCH_sweep.json`.

use ccd_bench::{fig9_sweep, write_bench_json, ParallelRunner, RunScale, SweepResults, TextTable};
use ccd_coherence::Hierarchy;
use std::time::Instant;

#[derive(Debug)]
struct SweepBench {
    scale: String,
    points: usize,
    refs_processed_total: u64,
    workers: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
    speedup: f64,
    outputs_identical: bool,
}
ccd_bench::impl_to_json!(SweepBench {
    scale,
    points,
    refs_processed_total,
    workers,
    serial_seconds,
    parallel_seconds,
    speedup,
    outputs_identical
});

/// Structural equality of two sweep runs: every cell's axis labels, trace
/// seed and full report (SimReport's derived `PartialEq` covers every
/// counter, histogram bucket and accumulated float bit-exactly).
fn runs_identical(a: &[SweepResults], b: &[SweepResults]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.cells.len() == y.cells.len()
                && x.cells.iter().zip(&y.cells).all(|(c, d)| {
                    (&c.system, &c.org, &c.workload, c.trace_seed, &c.report)
                        == (&d.system, &d.org, &d.workload, d.trace_seed, &d.report)
                })
        })
}

fn run_all(runner: &ParallelRunner, scale: RunScale) -> Vec<SweepResults> {
    [Hierarchy::SharedL2, Hierarchy::PrivateL2]
        .into_iter()
        .map(|h| {
            fig9_sweep(h, scale)
                .run_with(runner)
                .expect("fig9 sweep must build")
        })
        .collect()
}

fn main() {
    let (scale, scale_name) = RunScale::from_env_named();
    let parallel_runner = ccd_bench::runner_from_env();
    println!("== Sweep wall-clock: fig9 provisioning, serial vs parallel ==");
    println!(
        "   scale {scale_name}, parallel workers {}",
        parallel_runner.workers()
    );

    // Untimed warm-up: pay the one-time process costs (page faults,
    // allocator growth, frequency ramp) before either timed run, so the
    // first-timed leg is not systematically penalized.
    let _ = run_all(&ParallelRunner::serial(), RunScale::quick());

    let serial_start = Instant::now();
    let serial = run_all(&ParallelRunner::serial(), scale);
    let serial_seconds = serial_start.elapsed().as_secs_f64();

    let parallel_start = Instant::now();
    let parallel = run_all(&parallel_runner, scale);
    let parallel_seconds = parallel_start.elapsed().as_secs_f64();

    let outputs_identical = runs_identical(&serial, &parallel);
    assert!(
        outputs_identical,
        "serial and parallel sweeps must be byte-identical"
    );

    let points: usize = serial.iter().map(|s| s.cells.len()).sum();
    let refs_processed_total: u64 = serial
        .iter()
        .flat_map(|s| &s.cells)
        .map(|c| c.report.refs_processed)
        .sum();

    let bench = SweepBench {
        scale: scale_name.to_string(),
        points,
        refs_processed_total,
        workers: parallel_runner.workers(),
        serial_seconds,
        parallel_seconds,
        speedup: serial_seconds / parallel_seconds.max(1e-9),
        outputs_identical,
    };

    let mut table = TextTable::new(vec!["metric", "value"]);
    table.add_row(vec!["sweep points".to_string(), bench.points.to_string()]);
    table.add_row(vec![
        "measured refs".to_string(),
        bench.refs_processed_total.to_string(),
    ]);
    table.add_row(vec![
        "serial wall-clock (s)".to_string(),
        format!("{:.2}", bench.serial_seconds),
    ]);
    table.add_row(vec![
        format!("parallel wall-clock (s, {} workers)", bench.workers),
        format!("{:.2}", bench.parallel_seconds),
    ]);
    table.add_row(vec![
        "speedup".to_string(),
        format!("{:.2}x", bench.speedup),
    ]);
    table.add_row(vec![
        "outputs identical".to_string(),
        bench.outputs_identical.to_string(),
    ]);
    println!();
    table.print();

    write_bench_json("BENCH_sweep", &bench);
}
