//! Figure 10 — average insertion attempts per workload for the selected
//! Cuckoo organizations (4×512 Shared-L2, 3×8192 Private-L2).

use ccd_bench::{
    parallel_map, print_system_banner, simulate_workload, write_json, RunScale, TextTable,
};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_hash::HashKind;
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct AttemptsRow {
    workload: String,
    shared_l2_attempts: f64,
    private_l2_attempts: f64,
}
ccd_bench::impl_to_json!(AttemptsRow {
    workload,
    shared_l2_attempts,
    private_l2_attempts
});

fn main() {
    let scale = RunScale::from_env();
    let shared = SystemConfig::table1(Hierarchy::SharedL2);
    let private = SystemConfig::table1(Hierarchy::PrivateL2);
    let shared_spec = DirectorySpec::CuckooExplicit {
        ways: 4,
        sets: 512,
        hash: HashKind::Skewing,
    };
    let private_spec = DirectorySpec::CuckooExplicit {
        ways: 3,
        sets: 8192,
        hash: HashKind::Skewing,
    };
    print_system_banner(
        "Figure 10: Cuckoo average insertion attempts (4x512 / 3x8192)",
        &shared,
    );
    println!();

    let workloads = WorkloadProfile::all_paper_workloads();
    let rows: Vec<AttemptsRow> = parallel_map(workloads, |profile| {
        let s = simulate_workload(&shared, &shared_spec, profile, scale, 0xA10)
            .expect("shared simulation failed");
        let p = simulate_workload(&private, &private_spec, profile, scale, 0xA11)
            .expect("private simulation failed");
        AttemptsRow {
            workload: profile.name.to_string(),
            shared_l2_attempts: s.avg_insertion_attempts(),
            private_l2_attempts: p.avg_insertion_attempts(),
        }
    });

    let mut table = TextTable::new(vec![
        "workload",
        "Shared-L2 attempts",
        "Private-L2 attempts",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            format!("{:.2}", row.shared_l2_attempts),
            format!("{:.2}", row.private_l2_attempts),
        ]);
    }
    table.print();

    println!("\nPaper reference (Figure 10): the average is typically below two attempts,");
    println!("with larger values for the workloads dominated by private blocks.");
    write_json("fig10_insertion_attempts", &rows);
}
