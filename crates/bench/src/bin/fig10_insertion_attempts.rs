//! Figure 10 — average insertion attempts per workload for the selected
//! Cuckoo organizations (4×512 Shared-L2, 3×8192 Private-L2).

use ccd_bench::sweep::cuckoo_org_label;
use ccd_bench::{print_system_banner, write_json, RunScale, SweepSpec, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_hash::HashKind;
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct AttemptsRow {
    workload: String,
    shared_l2_attempts: f64,
    private_l2_attempts: f64,
}
ccd_bench::impl_to_json!(AttemptsRow {
    workload,
    shared_l2_attempts,
    private_l2_attempts
});

/// One sweep per hierarchy, each pairing its own selected Cuckoo geometry;
/// returns the sweep plus the organization label its cells carry, so
/// result lookups can never drift from the spec.
fn sweep_for(hierarchy: Hierarchy, scale: RunScale) -> (SweepSpec, String) {
    let (ways, sets, base_seed) = match hierarchy {
        Hierarchy::SharedL2 => (4usize, 512usize, 0xA10),
        Hierarchy::PrivateL2 => (3, 8192, 0xA11),
    };
    let org_label = cuckoo_org_label(ways, sets);
    let sweep = SweepSpec::new(format!("Figure 10 ({hierarchy})"))
        .system(hierarchy.to_string(), SystemConfig::table1(hierarchy))
        .org(
            org_label.clone(),
            DirectorySpec::CuckooExplicit {
                ways,
                sets,
                hash: HashKind::Skewing,
            },
        )
        .workloads(WorkloadProfile::all_paper_workloads())
        .scale(scale)
        .base_seed(base_seed);
    (sweep, org_label)
}

fn main() {
    let scale = RunScale::from_env();
    let shared = SystemConfig::table1(Hierarchy::SharedL2);
    print_system_banner(
        "Figure 10: Cuckoo average insertion attempts (4x512 / 3x8192)",
        &shared,
    );
    println!();

    let (shared_sweep, shared_org) = sweep_for(Hierarchy::SharedL2, scale);
    let (private_sweep, private_org) = sweep_for(Hierarchy::PrivateL2, scale);
    let shared_results = shared_sweep.run().expect("shared simulation failed");
    let private_results = private_sweep.run().expect("private simulation failed");

    let rows: Vec<AttemptsRow> = WorkloadProfile::all_paper_workloads()
        .iter()
        .map(|profile| {
            let s = shared_results
                .find("Shared-L2", &shared_org, profile.name)
                .expect("shared cell");
            let p = private_results
                .find("Private-L2", &private_org, profile.name)
                .expect("private cell");
            AttemptsRow {
                workload: profile.name.to_string(),
                shared_l2_attempts: s.report.avg_insertion_attempts(),
                private_l2_attempts: p.report.avg_insertion_attempts(),
            }
        })
        .collect();

    let mut table = TextTable::new(vec![
        "workload",
        "Shared-L2 attempts",
        "Private-L2 attempts",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            format!("{:.2}", row.shared_l2_attempts),
            format!("{:.2}", row.private_l2_attempts),
        ]);
    }
    table.print();

    println!("\nPaper reference (Figure 10): the average is typically below two attempts,");
    println!("with larger values for the workloads dominated by private blocks.");
    write_json("fig10_insertion_attempts", &rows);
}
