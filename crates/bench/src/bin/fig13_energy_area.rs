//! Figure 13 — analytical power and area comparison of directory
//! organizations for 16–1024 cores, Shared-L2 and Private-L2.

use ccd_bench::{write_json, TextTable};
use ccd_energy::{DirOrg, EnergyModel};

#[derive(Debug)]
struct Series {
    hierarchy: String,
    organization: String,
    cores: Vec<usize>,
    energy_percent: Vec<f64>,
    area_percent: Vec<f64>,
}
ccd_bench::impl_to_json!(Series {
    hierarchy,
    organization,
    cores,
    energy_percent,
    area_percent
});

fn sweep(hierarchy: &str, model: &EnergyModel, orgs: &[DirOrg]) -> Vec<Series> {
    let cores = EnergyModel::paper_core_counts();
    ccd_bench::runner_from_env().map(orgs, |org| {
        let points = model.sweep(org, &cores);
        Series {
            hierarchy: hierarchy.to_string(),
            organization: org.label(),
            cores: cores.clone(),
            energy_percent: points.iter().map(|p| p.energy_relative * 100.0).collect(),
            area_percent: points.iter().map(|p| p.area_relative * 100.0).collect(),
        }
    })
}

fn print_panel(title: &str, series: &[Series], energy: bool) {
    println!("\n{title}");
    let cores = EnergyModel::paper_core_counts();
    let mut headers = vec!["organization".to_string()];
    headers.extend(cores.iter().map(|c| format!("{c} cores")));
    let mut table = TextTable::new(headers);
    for s in series {
        let values = if energy {
            &s.energy_percent
        } else {
            &s.area_percent
        };
        let mut row = vec![s.organization.clone()];
        row.extend(values.iter().map(|v| format!("{v:.1}%")));
        table.add_row(row);
    }
    table.print();
}

fn main() {
    println!("== Figure 13: directory energy and area vs core count ==");
    println!(
        "   energy relative to one 1MB 16-way L2 tag lookup; area relative to a 1MB L2 data array"
    );

    let shared_model = EnergyModel::shared_l2();
    let private_model = EnergyModel::private_l2();
    let shared = sweep("Shared-L2", &shared_model, &DirOrg::figure13_set(true));
    let private = sweep("Private-L2", &private_model, &DirOrg::figure13_set(false));

    print_panel("Shared-L2: energy per directory operation", &shared, true);
    print_panel("Shared-L2: area per core", &shared, false);
    print_panel("Private-L2: energy per directory operation", &private, true);
    print_panel("Private-L2: area per core", &private, false);

    println!("\nPaper reference (Figure 13): Duplicate-Tag and Tagless energy grows with core");
    println!("count; full-vector and in-cache area grows with core count; Sparse Coarse /");
    println!("Hierarchical are flat but 8x over-provisioned; the Cuckoo organizations are");
    println!("flat in both energy and area.");

    let mut all = shared;
    all.extend(private);
    write_json("fig13_energy_area", &all);
}
