//! Section 5.5 — hash-function selection study.
//!
//! Compares the skewing functions, multiply-shift functions and strong
//! mixers along two axes:
//!
//! 1. raw d-ary cuckoo behaviour at several occupancy targets (average
//!    attempts, failure probability), and
//! 2. the ocean / Private-L2 system simulation at 1.5× provisioning, the
//!    configuration where the paper observed strong hashes eliminating the
//!    residual forced invalidations.

use ccd_bench::{print_system_banner, write_json, RunScale, SweepSpec, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_cuckoo::CuckooTable;
use ccd_hash::HashKind;
use ccd_workloads::{RandomKeyStream, WorkloadProfile};

#[derive(Debug)]
struct TableStudyRow {
    hash: String,
    occupancy_target: f64,
    avg_attempts: f64,
    failure_percent: f64,
}
ccd_bench::impl_to_json!(TableStudyRow {
    hash,
    occupancy_target,
    avg_attempts,
    failure_percent
});

#[derive(Debug)]
struct SimStudyRow {
    hash: String,
    workload: String,
    forced_invalidation_percent: f64,
    avg_attempts: f64,
}
ccd_bench::impl_to_json!(SimStudyRow {
    hash,
    workload,
    forced_invalidation_percent,
    avg_attempts
});

fn table_study(kind: HashKind, target: f64) -> TableStudyRow {
    let mut table: CuckooTable<()> = CuckooTable::new(4, 8192, kind, 7).expect("valid");
    let mut keys = RandomKeyStream::new(0x5EED);
    let mut attempts = 0u64;
    let mut inserts = 0u64;
    let mut failures = 0u64;
    while table.occupancy() < target && inserts < 3 * table.capacity() as u64 {
        let o = table.insert(keys.next_key(), ());
        attempts += u64::from(o.attempts);
        inserts += 1;
        if !o.succeeded() {
            failures += 1;
        }
    }
    TableStudyRow {
        hash: kind.to_string(),
        occupancy_target: target,
        avg_attempts: attempts as f64 / inserts as f64,
        failure_percent: failures as f64 / inserts as f64 * 100.0,
    }
}

fn main() {
    let scale = RunScale::from_env();
    let runner = ccd_bench::runner_from_env();
    println!("== Section 5.5: hash-function selection ==\n");

    // Part 1: raw table behaviour — one characterization per (hash, target)
    // grid point, fanned across the runner's workers.
    let grid: Vec<(HashKind, f64)> = HashKind::all()
        .into_iter()
        .flat_map(|kind| [0.5, 0.75, 0.9].map(|target| (kind, target)))
        .collect();
    let raw_rows = runner.map(&grid, |&(kind, target)| table_study(kind, target));
    let mut table = TextTable::new(vec![
        "hash family",
        "fill target",
        "avg attempts",
        "failure %",
    ]);
    for r in &raw_rows {
        table.add_row(vec![
            r.hash.clone(),
            format!("{:.2}", r.occupancy_target),
            format!("{:.2}", r.avg_attempts),
            format!("{:.2}", r.failure_percent),
        ]);
    }
    table.print();

    // Part 2: ocean on the Private-L2 system at 1.5x provisioning, as a
    // two-organization sweep (one org per hash family).
    let system = SystemConfig::table1(Hierarchy::PrivateL2);
    println!();
    print_system_banner("ocean, Cuckoo 1.5x, skewing vs strong hashes", &system);
    let mut sim_sweep = SweepSpec::new("Section 5.5 hash study")
        .system("Private-L2", system)
        .workload(WorkloadProfile::ocean())
        .scale(scale)
        .base_seed(0x0CEA);
    for kind in [HashKind::Skewing, HashKind::Strong] {
        sim_sweep = sim_sweep.org(
            kind.to_string(),
            DirectorySpec::Cuckoo {
                ways: 3,
                provisioning: 1.5,
                hash: kind,
            },
        );
    }
    let sim_results = sim_sweep.run_with(&runner).expect("simulation failed");
    let sim_rows: Vec<SimStudyRow> = sim_results
        .cells
        .iter()
        .map(|cell| SimStudyRow {
            hash: cell.org.clone(),
            workload: cell.workload.clone(),
            forced_invalidation_percent: cell.report.forced_invalidation_rate() * 100.0,
            avg_attempts: cell.report.avg_insertion_attempts(),
        })
        .collect();
    let mut table = TextTable::new(vec!["hash family", "forced invalidation %", "avg attempts"]);
    for r in &sim_rows {
        table.add_row(vec![
            r.hash.clone(),
            format!("{:.4}", r.forced_invalidation_percent),
            format!("{:.2}", r.avg_attempts),
        ]);
    }
    println!();
    table.print();

    println!("\nPaper reference (Section 5.5): skewing functions match strong hashes at 2x");
    println!("provisioning; strong hashes help only in aggressive/under-provisioned designs");
    println!("(e.g. they remove ocean's residual invalidations at 1.5x), at a hardware cost");
    println!("that is not worth paying.");
    write_json("hash_function_study_raw", &raw_rows);
    write_json("hash_function_study_sim", &sim_rows);
}
