//! `BENCH_probe` — ns/op trajectory of the cuckoo probe/insert hot path.
//!
//! Times the three fundamental table operations — `find_hit`, `find_miss`
//! and `insert` — at occupancies {0.25, 0.5, 0.75, 0.9} for two layouts:
//!
//! * **scalar-AoS (pre)**: a faithful transcription of the seed's
//!   array-of-structs table (`Vec<Option<Slot>>`, branchy `Option` probing,
//!   search-then-hash double hashing on insertion), embedded below as the
//!   baseline;
//! * **SoA-SWAR (post)**: the current [`CuckooTable`] — per-way `u8`
//!   fingerprint tag arrays probed branchlessly, fused hit/vacancy probing,
//!   and (reported separately) the prefetching `probe_batch` /
//!   `apply_batch` entry points.
//!
//! Both layouts implement identical semantics (the property suite proves
//! outcome-for-outcome equivalence), so the delta is purely memory layout
//! and instruction path.  Results are written to `BENCH_probe.json` in the
//! working directory and under the usual results directory.

use ccd_bench::{write_bench_json, TextTable};
use ccd_common::rng::{Rng64, SplitMix64};
use ccd_cuckoo::seed_reference::AosReferenceTable;
use ccd_cuckoo::CuckooTable;
use ccd_hash::HashKind;
use std::hint::black_box;
use std::time::Instant;

/// The benchmarked geometry: the paper's 4-way organization scaled up so
/// the AoS slot array (1.5 MB) spills past L2 the way a real directory
/// slice would, while the tag arrays (64 KB) stay cache-resident.
const WAYS: usize = 4;
const SETS: usize = 16 * 1024;
const HASH: HashKind = HashKind::Skewing;
const SEED: u64 = 0xBE7C4;

const OCCUPANCIES: &[f64] = &[0.25, 0.5, 0.75, 0.9];
/// A directory services its whole resident population, so the probe working
/// set covers (up to) 16 Ki lookups per trial rather than a cache-friendly
/// subsample — small windows would let repeated trials pin the baseline's
/// touched slot lines in cache, which no real reference stream does.
const PROBE_KEYS: usize = 16 * 1024;
const INSERT_KEYS: usize = 2048;
const TRIALS: usize = 9;

#[derive(Debug)]
struct Row {
    occupancy: f64,
    metric: String,
    aos_ns_per_op: f64,
    soa_ns_per_op: f64,
    soa_batch_ns_per_op: f64,
    speedup_scalar: f64,
    speedup_batch: f64,
}
ccd_bench::impl_to_json!(Row {
    occupancy,
    metric,
    aos_ns_per_op,
    soa_ns_per_op,
    soa_batch_ns_per_op,
    speedup_scalar,
    speedup_batch
});

/// Wall time of one invocation of `f`, in nanoseconds per operation.
fn time_once(ops: usize, f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

fn main() {
    println!(
        "== BENCH_probe: cuckoo probe/insert ns-per-op, scalar-AoS (pre) vs SoA-SWAR (post) =="
    );
    println!(
        "   geometry: {WAYS} ways x {SETS} sets ({} entries), {HASH} hashes, best of {TRIALS} trials\n",
        WAYS * SETS
    );

    let mut soa: CuckooTable<u64> = CuckooTable::new(WAYS, SETS, HASH, SEED).expect("geometry");
    let mut aos: AosReferenceTable<u64> =
        AosReferenceTable::new(WAYS, SETS, HASH, SEED, 32).expect("geometry");
    let capacity = WAYS * SETS;

    let mut rng = SplitMix64::new(0xF111);
    let mut resident: Vec<u64> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();

    for &occupancy in OCCUPANCIES {
        // Grow both layouts with the same key stream to the target load.
        let target = (capacity as f64 * occupancy) as usize;
        while soa.len() < target {
            let key = rng.next_u64() >> 8;
            if soa.contains(key) {
                continue;
            }
            let outcome = soa.insert(key, key);
            let (attempts, discarded) = aos.insert(key, key);
            assert_eq!(outcome.attempts, attempts, "layouts diverged while filling");
            assert_eq!(outcome.discarded, discarded);
            resident.push(key);
            if let Some((lost, _)) = outcome.discarded {
                resident.retain(|&k| k != lost);
            }
        }
        assert_eq!(soa.len(), aos.len());

        // Sample the probe working sets.
        let hit_keys: Vec<u64> = (0..PROBE_KEYS)
            .map(|i| resident[(i * 127) % resident.len()])
            .collect();
        let mut miss_keys: Vec<u64> = Vec::with_capacity(PROBE_KEYS);
        while miss_keys.len() < PROBE_KEYS {
            let key = rng.next_u64() >> 8;
            if !soa.contains(key) {
                miss_keys.push(key);
            }
        }
        let fresh_keys: Vec<u64> = {
            let mut fresh = Vec::with_capacity(INSERT_KEYS);
            while fresh.len() < INSERT_KEYS {
                let key = rng.next_u64() >> 8;
                if !soa.contains(key) {
                    fresh.push(key);
                }
            }
            fresh
        };
        let mut hits = vec![false; PROBE_KEYS];
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(INSERT_KEYS);
        let mut outcomes = Vec::with_capacity(INSERT_KEYS);

        for (metric, keys, expect_hit) in [
            ("find_hit", &hit_keys, true),
            ("find_miss", &miss_keys, false),
        ] {
            // Trials interleave the two layouts back to back so a frequency
            // or load shift on the host biases both sides equally.
            let (mut aos_ns, mut soa_ns, mut batch_ns) =
                (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for _ in 0..TRIALS {
                aos_ns = aos_ns.min(time_once(keys.len(), || {
                    let mut found = 0u64;
                    for &k in keys {
                        found += u64::from(aos.contains(k));
                    }
                    assert_eq!(found == keys.len() as u64, expect_hit);
                    black_box(found);
                }));
                soa_ns = soa_ns.min(time_once(keys.len(), || {
                    let mut found = 0u64;
                    for &k in keys {
                        found += u64::from(soa.contains(k));
                    }
                    assert_eq!(found == keys.len() as u64, expect_hit);
                    black_box(found);
                }));
                batch_ns = batch_ns.min(time_once(keys.len(), || {
                    soa.probe_batch(keys, &mut hits);
                    black_box(&hits);
                }));
            }
            rows.push(Row {
                occupancy,
                metric: metric.to_string(),
                aos_ns_per_op: aos_ns,
                soa_ns_per_op: soa_ns,
                soa_batch_ns_per_op: batch_ns,
                speedup_scalar: aos_ns / soa_ns,
                speedup_batch: aos_ns / batch_ns,
            });
        }

        // Insertions: each trial clones the filled tables (outside the
        // timed regions) and inserts the same fresh keys, again interleaving
        // the layouts within each trial.
        let (mut aos_ns, mut soa_ns, mut batch_ns) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..TRIALS {
            let mut aos_clone = aos.clone();
            aos_ns = aos_ns.min(time_once(fresh_keys.len(), || {
                for &k in &fresh_keys {
                    black_box(aos_clone.insert(k, k));
                }
            }));
            let mut soa_clone = soa.clone();
            soa_ns = soa_ns.min(time_once(fresh_keys.len(), || {
                for &k in &fresh_keys {
                    black_box(soa_clone.insert(k, k));
                }
            }));
            let mut batch_clone = soa.clone();
            entries.clear();
            entries.extend(fresh_keys.iter().map(|&k| (k, k)));
            outcomes.clear();
            batch_ns = batch_ns.min(time_once(fresh_keys.len(), || {
                batch_clone.apply_batch(&mut entries, &mut outcomes);
            }));
            black_box(&outcomes);
        }
        rows.push(Row {
            occupancy,
            metric: "insert".to_string(),
            aos_ns_per_op: aos_ns,
            soa_ns_per_op: soa_ns,
            soa_batch_ns_per_op: batch_ns,
            speedup_scalar: aos_ns / soa_ns,
            speedup_batch: aos_ns / batch_ns,
        });
    }

    let mut table = TextTable::new(vec![
        "occupancy",
        "metric",
        "AoS ns/op",
        "SoA ns/op",
        "SoA batch ns/op",
        "speedup",
        "batch speedup",
    ]);
    for row in &rows {
        table.add_row(vec![
            format!("{:.2}", row.occupancy),
            row.metric.clone(),
            format!("{:.2}", row.aos_ns_per_op),
            format!("{:.2}", row.soa_ns_per_op),
            format!("{:.2}", row.soa_batch_ns_per_op),
            format!("{:.2}x", row.speedup_scalar),
            format!("{:.2}x", row.speedup_batch),
        ]);
    }
    table.print();

    // The perf-trajectory acceptance gate: find_miss at 75% occupancy must
    // be at least 2x faster than the seed layout, and nothing may regress.
    let gate = rows
        .iter()
        .find(|r| r.metric == "find_miss" && (r.occupancy - 0.75).abs() < 1e-9)
        .expect("gate row exists");
    println!(
        "\nfind_miss @ 0.75 occupancy: {:.2}x over the seed AoS probe (target >= 2x)",
        gate.speedup_scalar
    );

    write_bench_json("BENCH_probe", &rows);
}
