//! `BENCH_probe` — ns/op trajectory of the cuckoo probe/insert hot path.
//!
//! Three sections, one result file:
//!
//! **Layout** (`layout` rows): times `find_hit`, `find_miss` and `insert`
//! at occupancies {0.25, 0.5, 0.75, 0.9} for two layouts —
//!
//! * **scalar-AoS (pre)**: a faithful transcription of the seed's
//!   array-of-structs table (`Vec<Option<Slot>>`, branchy `Option` probing,
//!   search-then-hash double hashing on insertion), embedded as
//!   [`AosReferenceTable`];
//! * **SoA-SWAR (post)**: the current [`CuckooTable`] — per-way `u8`
//!   fingerprint tag arrays probed branchlessly, fused hit/vacancy probing,
//!   and (reported separately) the prefetching `probe_batch` /
//!   `apply_batch` entry points.
//!
//! **Variants** (`variants` rows): sweeps every [`ProbeVariant`] tag-probe
//! kernel — `scalar`, `swar`, `simd`, `localized` — over a tagalt table at
//! occupancies {0.5, 0.75, 0.85, 0.9}.  At the default scale the tag
//! arrays (4 MB) spill L2 but still fit the LLC, so this sweep reports the
//! cache-resident regime: the kernels are near parity here because the
//! per-way byte loads overlap freely in the load buffers.  Informational.
//!
//! **Spill** (`spill` rows): the gate section.  The same kernels over a
//! tagalt table whose tag arrays are sized *past* the LLC (512 MiB at the
//! default scale), filled in bulk to 0.85 occupancy — the regime a real
//! directory slice lives in, where coherence traffic probes a structure
//! far larger than any cache.  Here every probe runs at memory latency and
//! the line count per probe dominates: the per-way layouts touch `ways`
//! tag cache lines per miss, while `localized` reads one vector-wide tag
//! block.  The perf gate requires the best vector path to beat SWAR by
//! ≥ 1.3× on `find_miss` at ≥ 0.85 occupancy (enforced at the default and
//! full scales; informational at `quick`, where the spill table is tiny).
//!
//! Every kernel is outcome-identical (the lockstep property suite proves
//! it), so all deltas are purely memory layout and instruction path.
//! Results are written to `BENCH_probe.json` at the repository root *and*
//! under the results directory; CI golden-checks the quick-scale output
//! with the wall-clock-derived fields filtered out.

use ccd_bench::{write_bench_json, TextTable};
use ccd_common::rng::{Rng64, SplitMix64};
use ccd_cuckoo::seed_reference::AosReferenceTable;
use ccd_cuckoo::CuckooTable;
use ccd_directory::ProbeVariant;
use ccd_hash::HashKind;
use std::hint::black_box;
use std::time::Instant;

/// The paper's 4-way organization throughout.
const WAYS: usize = 4;
const SEED: u64 = 0xBE7C4;

/// Work shaping for this binary, selected by `CCD_SCALE` (the sweep scales
/// in `RunScale` are simulator reference counts, which do not apply here).
struct ProbeScale {
    /// Sets for the AoS-vs-SoA layout section (skewing hashes, as seeded).
    layout_sets: usize,
    /// Sets for the cache-resident probe-variant sweep (tagalt hashes).
    /// The default puts the tag arrays at 4 MB — past L2, inside the LLC.
    variant_sets: usize,
    /// Sets for the LLC-spilling gate section.  The default puts the tag
    /// arrays at 512 MiB — past this host class's LLC — so every probe
    /// runs at DRAM latency and the tag-lines-per-probe count is what the
    /// clock measures.  Values are `()` (a directory tag check carries no
    /// payload) and the fill goes through `apply_batch`, so the bulk fill
    /// stays in the minutes even at half a billion entries.
    spill_sets: usize,
    /// Lookups per timed trial (covers the resident population rather than
    /// a cache-friendly subsample).
    probe_keys: usize,
    /// Insertions per timed trial.
    insert_keys: usize,
    /// Trials per cell (best-of, interleaved across layouts/variants).
    trials: usize,
    /// Whether the ≥ 1.3× find_miss gate aborts the run when missed.
    enforce_gate: bool,
}

impl ProbeScale {
    fn from_env() -> (Self, &'static str) {
        match std::env::var("CCD_SCALE").as_deref() {
            Ok("quick") => (
                ProbeScale {
                    layout_sets: 4 * 1024,
                    variant_sets: 4 * 1024,
                    spill_sets: 4 * 1024,
                    probe_keys: 8 * 1024,
                    insert_keys: 1024,
                    trials: 3,
                    enforce_gate: false,
                },
                "quick",
            ),
            Ok("full") => (
                ProbeScale {
                    layout_sets: 16 * 1024,
                    variant_sets: 2 * 1024 * 1024,
                    spill_sets: 128 * 1024 * 1024,
                    probe_keys: 256 * 1024,
                    insert_keys: 4096,
                    trials: 9,
                    enforce_gate: true,
                },
                "full",
            ),
            _ => (
                ProbeScale {
                    layout_sets: 16 * 1024,
                    variant_sets: 1024 * 1024,
                    spill_sets: 128 * 1024 * 1024,
                    probe_keys: 256 * 1024,
                    insert_keys: 4096,
                    trials: 5,
                    enforce_gate: true,
                },
                "default",
            ),
        }
    }
}

#[derive(Debug)]
struct LayoutRow {
    occupancy: f64,
    metric: String,
    aos_ns_per_op: f64,
    soa_ns_per_op: f64,
    soa_batch_ns_per_op: f64,
    speedup_scalar: f64,
    speedup_batch: f64,
}
ccd_bench::impl_to_json!(LayoutRow {
    occupancy,
    metric,
    aos_ns_per_op,
    soa_ns_per_op,
    soa_batch_ns_per_op,
    speedup_scalar,
    speedup_batch
});

#[derive(Debug)]
struct VariantRow {
    spec: String,
    variant: String,
    occupancy: f64,
    metric: String,
    ns_per_op: f64,
    vs_swar: f64,
}
ccd_bench::impl_to_json!(VariantRow {
    spec,
    variant,
    occupancy,
    metric,
    ns_per_op,
    vs_swar
});

#[derive(Debug)]
struct Gate {
    metric: String,
    min_occupancy: f64,
    target_vs_swar: f64,
    best_variant: String,
    achieved_vs_swar: f64,
    enforced: bool,
}
ccd_bench::impl_to_json!(Gate {
    metric,
    min_occupancy,
    target_vs_swar,
    best_variant,
    achieved_vs_swar,
    enforced
});

#[derive(Debug)]
struct BenchProbe {
    scale: String,
    engine: String,
    layout: Vec<LayoutRow>,
    variants: Vec<VariantRow>,
    spill: Vec<VariantRow>,
    gate: Gate,
}
ccd_bench::impl_to_json!(BenchProbe {
    scale,
    engine,
    layout,
    variants,
    spill,
    gate
});

/// Human-readable tag-array size for the section headings.
fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else {
        format!("{} KiB", bytes >> 10)
    }
}

/// Wall time of one invocation of `f`, in nanoseconds per operation.
fn time_once(ops: usize, f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

/// Grows `table` to `target` entries with fresh keys from `rng`, keeping
/// `resident` in sync (discards are rare below the 4-ary threshold but must
/// not leave phantom hit keys behind).
fn fill_to(
    table: &mut CuckooTable<u64>,
    target: usize,
    rng: &mut SplitMix64,
    resident: &mut Vec<u64>,
) {
    while table.len() < target {
        let key = rng.next_u64() >> 8;
        if table.contains(key) {
            continue;
        }
        let outcome = table.insert(key, key);
        resident.push(key);
        if let Some((lost, _)) = outcome.discarded {
            resident.retain(|&k| k != lost);
        }
    }
}

/// Samples `count` resident keys (strided, so repeats only when the
/// population is smaller than the window) and `count` guaranteed misses.
fn probe_sets(
    table: &CuckooTable<u64>,
    resident: &[u64],
    count: usize,
    rng: &mut SplitMix64,
) -> (Vec<u64>, Vec<u64>) {
    let hits: Vec<u64> = (0..count)
        .map(|i| resident[(i * 127) % resident.len()])
        .collect();
    let mut misses: Vec<u64> = Vec::with_capacity(count);
    while misses.len() < count {
        let key = rng.next_u64() >> 8;
        if !table.contains(key) {
            misses.push(key);
        }
    }
    (hits, misses)
}

/// Best-of-`trials` ns/op for a plain `contains` loop over `keys`.
fn time_contains<V>(table: &CuckooTable<V>, keys: &[u64], expect_hit: bool, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        best = best.min(time_once(keys.len(), || {
            let mut found = 0u64;
            for &k in keys {
                found += u64::from(table.contains(k));
            }
            assert_eq!(found == keys.len() as u64, expect_hit);
            black_box(found);
        }));
    }
    best
}

/// Best-of-`trials` ns/op for inserting `keys` into a clone of `table`
/// (clones are taken outside the timed region).
fn time_inserts(table: &CuckooTable<u64>, keys: &[u64], trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut clone = table.clone();
        best = best.min(time_once(keys.len(), || {
            for &k in keys {
                black_box(clone.insert(k, k));
            }
        }));
    }
    best
}

/// The AoS-vs-SoA layout section (the seed-versus-current comparison the
/// file has always reported).
fn layout_section(scale: &ProbeScale) -> Vec<LayoutRow> {
    const OCCUPANCIES: &[f64] = &[0.25, 0.5, 0.75, 0.9];
    let sets = scale.layout_sets;
    let mut soa: CuckooTable<u64> =
        CuckooTable::new(WAYS, sets, HashKind::Skewing, SEED).expect("geometry");
    let mut aos: AosReferenceTable<u64> =
        AosReferenceTable::new(WAYS, sets, HashKind::Skewing, SEED, 32).expect("geometry");
    let capacity = WAYS * sets;

    let mut rng = SplitMix64::new(0xF111);
    let mut resident: Vec<u64> = Vec::new();
    let mut rows: Vec<LayoutRow> = Vec::new();

    for &occupancy in OCCUPANCIES {
        // Grow both layouts with the same key stream to the target load.
        let target = (capacity as f64 * occupancy) as usize;
        while soa.len() < target {
            let key = rng.next_u64() >> 8;
            if soa.contains(key) {
                continue;
            }
            let outcome = soa.insert(key, key);
            let (attempts, discarded) = aos.insert(key, key);
            assert_eq!(outcome.attempts, attempts, "layouts diverged while filling");
            assert_eq!(outcome.discarded, discarded);
            resident.push(key);
            if let Some((lost, _)) = outcome.discarded {
                resident.retain(|&k| k != lost);
            }
        }
        assert_eq!(soa.len(), aos.len());

        let (hit_keys, miss_keys) = probe_sets(&soa, &resident, scale.probe_keys, &mut rng);
        let fresh_keys: Vec<u64> = {
            let mut fresh = Vec::with_capacity(scale.insert_keys);
            while fresh.len() < scale.insert_keys {
                let key = rng.next_u64() >> 8;
                if !soa.contains(key) {
                    fresh.push(key);
                }
            }
            fresh
        };
        let mut hits = vec![false; scale.probe_keys];
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(scale.insert_keys);
        let mut outcomes = Vec::with_capacity(scale.insert_keys);

        for (metric, keys, expect_hit) in [
            ("find_hit", &hit_keys, true),
            ("find_miss", &miss_keys, false),
        ] {
            // Trials interleave the two layouts back to back so a frequency
            // or load shift on the host biases both sides equally.
            let (mut aos_ns, mut soa_ns, mut batch_ns) =
                (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for _ in 0..scale.trials {
                aos_ns = aos_ns.min(time_once(keys.len(), || {
                    let mut found = 0u64;
                    for &k in keys {
                        found += u64::from(aos.contains(k));
                    }
                    assert_eq!(found == keys.len() as u64, expect_hit);
                    black_box(found);
                }));
                soa_ns = soa_ns.min(time_once(keys.len(), || {
                    let mut found = 0u64;
                    for &k in keys {
                        found += u64::from(soa.contains(k));
                    }
                    assert_eq!(found == keys.len() as u64, expect_hit);
                    black_box(found);
                }));
                batch_ns = batch_ns.min(time_once(keys.len(), || {
                    soa.probe_batch(keys, &mut hits);
                    black_box(&hits);
                }));
            }
            rows.push(LayoutRow {
                occupancy,
                metric: metric.to_string(),
                aos_ns_per_op: aos_ns,
                soa_ns_per_op: soa_ns,
                soa_batch_ns_per_op: batch_ns,
                speedup_scalar: aos_ns / soa_ns,
                speedup_batch: aos_ns / batch_ns,
            });
        }

        // Insertions: each trial clones the filled tables (outside the
        // timed regions) and inserts the same fresh keys, again interleaving
        // the layouts within each trial.
        let (mut aos_ns, mut soa_ns, mut batch_ns) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..scale.trials {
            let mut aos_clone = aos.clone();
            aos_ns = aos_ns.min(time_once(fresh_keys.len(), || {
                for &k in &fresh_keys {
                    black_box(aos_clone.insert(k, k));
                }
            }));
            let mut soa_clone = soa.clone();
            soa_ns = soa_ns.min(time_once(fresh_keys.len(), || {
                for &k in &fresh_keys {
                    black_box(soa_clone.insert(k, k));
                }
            }));
            let mut batch_clone = soa.clone();
            entries.clear();
            entries.extend(fresh_keys.iter().map(|&k| (k, k)));
            outcomes.clear();
            batch_ns = batch_ns.min(time_once(fresh_keys.len(), || {
                batch_clone.apply_batch(&mut entries, &mut outcomes);
            }));
            black_box(&outcomes);
        }
        rows.push(LayoutRow {
            occupancy,
            metric: "insert".to_string(),
            aos_ns_per_op: aos_ns,
            soa_ns_per_op: soa_ns,
            soa_batch_ns_per_op: batch_ns,
            speedup_scalar: aos_ns / soa_ns,
            speedup_batch: aos_ns / batch_ns,
        });
    }
    rows
}

/// The cache-resident probe-variant sweep: every kernel over the same
/// tagalt geometry and key stream (outcome-identical by the lockstep
/// contract, so each variant can fill its own table independently and
/// still hold identical contents).  Informational — in this regime the
/// per-way byte loads pipeline freely and the kernels sit near parity.
fn variant_section(scale: &ProbeScale) -> Vec<VariantRow> {
    const OCCUPANCIES: &[f64] = &[0.5, 0.75, 0.85, 0.9];
    const VARIANTS: &[ProbeVariant] = &[
        ProbeVariant::Swar,
        ProbeVariant::Scalar,
        ProbeVariant::Simd,
        ProbeVariant::Localized,
    ];
    let sets = scale.variant_sets;
    let capacity = WAYS * sets;
    let mut rows: Vec<VariantRow> = Vec::new();
    // SWAR runs first and anchors the `vs_swar` column.
    let mut swar_ns: Vec<(usize, &str, f64)> = Vec::new();

    for &variant in VARIANTS {
        let mut table: CuckooTable<u64> =
            CuckooTable::with_variant(WAYS, sets, HashKind::TagAlt, SEED, Some(variant))
                .expect("geometry");
        let spec = format!("cuckoo-{WAYS}x{sets}-tagalt-{variant}");
        let mut rng = SplitMix64::new(0xF222);
        let mut resident: Vec<u64> = Vec::new();

        for (occ_idx, &occupancy) in OCCUPANCIES.iter().enumerate() {
            fill_to(
                &mut table,
                (capacity as f64 * occupancy) as usize,
                &mut rng,
                &mut resident,
            );
            let (hit_keys, miss_keys) = probe_sets(&table, &resident, scale.probe_keys, &mut rng);
            let fresh_keys: Vec<u64> = {
                let mut fresh = Vec::with_capacity(scale.insert_keys);
                while fresh.len() < scale.insert_keys {
                    let key = rng.next_u64() >> 8;
                    if !table.contains(key) {
                        fresh.push(key);
                    }
                }
                fresh
            };

            for (metric, ns) in [
                (
                    "find_hit",
                    time_contains(&table, &hit_keys, true, scale.trials),
                ),
                (
                    "find_miss",
                    time_contains(&table, &miss_keys, false, scale.trials),
                ),
                ("insert", time_inserts(&table, &fresh_keys, scale.trials)),
            ] {
                let baseline = if variant == ProbeVariant::Swar {
                    swar_ns.push((occ_idx, metric, ns));
                    ns
                } else {
                    swar_ns
                        .iter()
                        .find(|(i, m, _)| *i == occ_idx && *m == metric)
                        .map(|(_, _, b)| *b)
                        .expect("swar baseline measured first")
                };
                rows.push(VariantRow {
                    spec: spec.clone(),
                    variant: variant.to_string(),
                    occupancy,
                    metric: metric.to_string(),
                    ns_per_op: ns,
                    vs_swar: baseline / ns,
                });
            }
        }
    }

    rows
}

/// The LLC-spilling gate section.  Tag arrays sized past the last-level
/// cache, values `()`, bulk-filled with `apply_batch` to 0.85 occupancy,
/// then timed on plain `find_hit`/`find_miss` loops and the prefetching
/// `probe_batch` miss path.  Scalar is omitted: the gate compares the
/// vector paths against the SWAR baseline, and a fourth multi-minute fill
/// would buy no information the cache-resident sweep doesn't already have.
fn spill_section(scale: &ProbeScale) -> (Vec<VariantRow>, Gate) {
    const OCCUPANCY: f64 = 0.85;
    const VARIANTS: &[ProbeVariant] = &[
        ProbeVariant::Swar,
        ProbeVariant::Simd,
        ProbeVariant::Localized,
    ];
    let sets = scale.spill_sets;
    let target = (WAYS as f64 * sets as f64 * OCCUPANCY) as usize;
    let mut rows: Vec<VariantRow> = Vec::new();
    let mut swar_ns: Vec<(&str, f64)> = Vec::new();

    for &variant in VARIANTS {
        let mut table: CuckooTable<()> =
            CuckooTable::with_variant(WAYS, sets, HashKind::TagAlt, SEED, Some(variant))
                .expect("geometry");
        let spec = format!("cuckoo-{WAYS}x{sets}-tagalt-{variant}");
        let mut rng = SplitMix64::new(0xF333);

        // Bulk fill.  A strided sample of the drawn key stream doubles as
        // the hit pool (filtered afterwards — displacement can discard a
        // key, and duplicate draws land as updates that `len()` ignores).
        let mut hit_pool: Vec<u64> = Vec::new();
        let mut entries: Vec<(u64, ())> = Vec::with_capacity(1 << 16);
        let mut outcomes = Vec::with_capacity(1 << 16);
        let mut drawn = 0usize;
        while table.len() < target {
            entries.clear();
            for _ in 0..(1usize << 16).min(target - table.len()) {
                let key = rng.next_u64() >> 8;
                if drawn.is_multiple_of(997) {
                    hit_pool.push(key);
                }
                drawn += 1;
                entries.push((key, ()));
            }
            outcomes.clear();
            table.apply_batch(&mut entries, &mut outcomes);
        }
        hit_pool.retain(|&k| table.contains(k));

        let hit_keys: Vec<u64> = (0..scale.probe_keys)
            .map(|i| hit_pool[(i * 127) % hit_pool.len()])
            .collect();
        let mut miss_keys: Vec<u64> = Vec::with_capacity(scale.probe_keys);
        while miss_keys.len() < scale.probe_keys {
            let key = rng.next_u64() >> 8;
            if !table.contains(key) {
                miss_keys.push(key);
            }
        }

        let mut hits = vec![false; scale.probe_keys];
        let mut batch_ns = f64::INFINITY;
        for _ in 0..scale.trials {
            batch_ns = batch_ns.min(time_once(miss_keys.len(), || {
                table.probe_batch(&miss_keys, &mut hits);
                black_box(&hits);
            }));
        }

        for (metric, ns) in [
            (
                "find_hit",
                time_contains(&table, &hit_keys, true, scale.trials),
            ),
            (
                "find_miss",
                time_contains(&table, &miss_keys, false, scale.trials),
            ),
            ("find_miss_batch", batch_ns),
        ] {
            let baseline = if variant == ProbeVariant::Swar {
                swar_ns.push((metric, ns));
                ns
            } else {
                swar_ns
                    .iter()
                    .find(|(m, _)| *m == metric)
                    .map(|(_, b)| *b)
                    .expect("swar baseline measured first")
            };
            rows.push(VariantRow {
                spec: spec.clone(),
                variant: variant.to_string(),
                occupancy: OCCUPANCY,
                metric: metric.to_string(),
                ns_per_op: ns,
                vs_swar: baseline / ns,
            });
        }
    }

    // The perf gate: once probes run at memory latency, the best vector
    // path must beat SWAR by >= 1.3x on the plain find_miss loop (the
    // prefetched batch path clears it by more; it is reported, not gated).
    let best = rows
        .iter()
        .filter(|r| r.metric == "find_miss" && (r.variant == "simd" || r.variant == "localized"))
        .max_by(|a, b| a.vs_swar.total_cmp(&b.vs_swar))
        .expect("vector find_miss rows exist");
    let gate = Gate {
        metric: "find_miss".to_string(),
        min_occupancy: OCCUPANCY,
        target_vs_swar: 1.3,
        best_variant: best.variant.clone(),
        achieved_vs_swar: best.vs_swar,
        enforced: scale.enforce_gate,
    };
    (rows, gate)
}

fn main() {
    let (scale, scale_name) = ProbeScale::from_env();
    let engine = CuckooTable::<u64>::with_variant(WAYS, 64, HashKind::TagAlt, SEED, None)
        .expect("geometry")
        .vector_engine();

    println!("== BENCH_probe: cuckoo probe/insert ns-per-op ==");
    println!(
        "   scale {scale_name}; vector engine {}; best of {} trials\n",
        engine.name(),
        scale.trials
    );

    println!(
        "-- layout: scalar-AoS (pre) vs SoA-SWAR (post), {WAYS} ways x {} sets, skewing hashes --",
        scale.layout_sets
    );
    let layout = layout_section(&scale);
    let mut table = TextTable::new(vec![
        "occupancy",
        "metric",
        "AoS ns/op",
        "SoA ns/op",
        "SoA batch ns/op",
        "speedup",
        "batch speedup",
    ]);
    for row in &layout {
        table.add_row(vec![
            format!("{:.2}", row.occupancy),
            row.metric.clone(),
            format!("{:.2}", row.aos_ns_per_op),
            format!("{:.2}", row.soa_ns_per_op),
            format!("{:.2}", row.soa_batch_ns_per_op),
            format!("{:.2}x", row.speedup_scalar),
            format!("{:.2}x", row.speedup_batch),
        ]);
    }
    table.print();
    let legacy_gate = layout
        .iter()
        .find(|r| r.metric == "find_miss" && (r.occupancy - 0.75).abs() < 1e-9)
        .expect("gate row exists");
    println!(
        "\nfind_miss @ 0.75 occupancy: {:.2}x over the seed AoS probe (target >= 2x)\n",
        legacy_gate.speedup_scalar
    );

    println!(
        "-- variants (cache-resident): probe kernels over tagalt, {WAYS} ways x {} sets ({} tags) --",
        scale.variant_sets,
        fmt_bytes(WAYS * scale.variant_sets)
    );
    let variants = variant_section(&scale);
    let mut table = TextTable::new(vec!["occupancy", "metric", "variant", "ns/op", "vs swar"]);
    for row in &variants {
        table.add_row(vec![
            format!("{:.2}", row.occupancy),
            row.metric.clone(),
            row.variant.clone(),
            format!("{:.2}", row.ns_per_op),
            format!("{:.2}x", row.vs_swar),
        ]);
    }
    table.print();

    println!(
        "\n-- spill (past the LLC): probe kernels over tagalt, {WAYS} ways x {} sets ({} tags), occupancy 0.85 --",
        scale.spill_sets,
        fmt_bytes(WAYS * scale.spill_sets)
    );
    let (spill, gate) = spill_section(&scale);
    let mut table = TextTable::new(vec!["occupancy", "metric", "variant", "ns/op", "vs swar"]);
    for row in &spill {
        table.add_row(vec![
            format!("{:.2}", row.occupancy),
            row.metric.clone(),
            row.variant.clone(),
            format!("{:.2}", row.ns_per_op),
            format!("{:.2}x", row.vs_swar),
        ]);
    }
    table.print();
    println!(
        "\nfind_miss @ >= {:.2} occupancy: {} reaches {:.2}x over swar (target >= {:.1}x{})",
        gate.min_occupancy,
        gate.best_variant,
        gate.achieved_vs_swar,
        gate.target_vs_swar,
        if gate.enforced {
            ""
        } else {
            "; informational at quick scale"
        }
    );

    let report = BenchProbe {
        scale: scale_name.to_string(),
        engine: engine.name().to_string(),
        layout,
        variants,
        spill,
        gate,
    };
    write_bench_json("BENCH_probe", &report);

    if report.gate.enforced && report.gate.achieved_vs_swar < report.gate.target_vs_swar {
        eprintln!(
            "error: probe perf gate missed — best vector path {:.2}x < {:.1}x over swar",
            report.gate.achieved_vs_swar, report.gate.target_vs_swar
        );
        std::process::exit(1);
    }
}
