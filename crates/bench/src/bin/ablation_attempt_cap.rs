//! Ablation — insertion-attempt budget.
//!
//! The paper fixes the insertion-attempt cap at 32 (Section 5.2).  This
//! ablation sweeps the cap to show where the knee is: a tiny budget discards
//! entries it could have placed, while anything beyond ~16 attempts changes
//! nothing at practical occupancies.

use ccd_bench::{write_json, TextTable};
use ccd_cuckoo::CuckooTable;
use ccd_hash::HashKind;
use ccd_workloads::RandomKeyStream;

#[derive(Debug)]
struct CapRow {
    max_attempts: u32,
    occupancy_target: f64,
    avg_attempts: f64,
    discard_percent: f64,
}
ccd_bench::impl_to_json!(CapRow {
    max_attempts,
    occupancy_target,
    avg_attempts,
    discard_percent
});

fn run(cap: u32, target: f64) -> CapRow {
    let mut table: CuckooTable<()> =
        CuckooTable::new(4, 4096, HashKind::Skewing, 11).expect("valid");
    table.set_max_attempts(cap);
    let mut keys = RandomKeyStream::new(0xAB1A);
    let (mut attempts, mut inserts, mut discards) = (0u64, 0u64, 0u64);
    while table.occupancy() < target && inserts < 3 * table.capacity() as u64 {
        let o = table.insert(keys.next_key(), ());
        attempts += u64::from(o.attempts);
        inserts += 1;
        if !o.succeeded() {
            discards += 1;
        }
    }
    CapRow {
        max_attempts: cap,
        occupancy_target: target,
        avg_attempts: attempts as f64 / inserts as f64,
        discard_percent: discards as f64 / inserts as f64 * 100.0,
    }
}

fn main() {
    println!("== Ablation: insertion-attempt budget (4-way, skewing hashes) ==\n");
    let grid: Vec<(f64, u32)> = [0.5, 0.75, 0.9]
        .into_iter()
        .flat_map(|target| [2u32, 4, 8, 16, 32, 64].map(|cap| (target, cap)))
        .collect();
    let rows = ccd_bench::runner_from_env().map(&grid, |&(target, cap)| run(cap, target));
    let mut table = TextTable::new(vec![
        "fill target",
        "attempt cap",
        "avg attempts",
        "discard %",
    ]);
    for r in &rows {
        table.add_row(vec![
            format!("{:.2}", r.occupancy_target),
            r.max_attempts.to_string(),
            format!("{:.2}", r.avg_attempts),
            format!("{:.3}", r.discard_percent),
        ]);
    }
    table.print();
    write_json("ablation_attempt_cap", &rows);
}
