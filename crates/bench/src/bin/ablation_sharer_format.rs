//! Ablation — sharer-vector format under the Cuckoo tag organization.
//!
//! Section 6 notes the Cuckoo organization composes with any entry format;
//! this ablation quantifies the area/energy trade-off of the four formats
//! implemented in `ccd-sharers` at 64 and 1024 cores (Shared-L2 model).

use ccd_bench::{write_json, TextTable};
use ccd_energy::{DirOrg, EnergyModel};
use ccd_sharers::SharerFormat;

#[derive(Debug)]
struct FormatRow {
    format: String,
    cores: usize,
    entry_bits: u64,
    energy_percent: Option<f64>,
    area_percent: Option<f64>,
}
ccd_bench::impl_to_json!(FormatRow {
    format,
    cores,
    entry_bits,
    energy_percent,
    area_percent
});

/// The analytical-model organization corresponding to a 4-way, 1x Cuckoo tag
/// store with the given entry format; `None` for formats the scaling model
/// does not plot (limited pointers appear only via their entry width).
fn org_for(format: SharerFormat) -> Option<DirOrg> {
    match format {
        SharerFormat::FullVector => Some(DirOrg::SparseFullVector {
            ways: 4,
            provisioning: 1.0,
        }),
        SharerFormat::LimitedPointer => None,
        SharerFormat::Coarse => Some(DirOrg::cuckoo_coarse_shared()),
        SharerFormat::Hierarchical => Some(DirOrg::CuckooHierarchical {
            ways: 4,
            provisioning: 1.0,
        }),
    }
}

fn main() {
    println!("== Ablation: sharer-vector format on a 4-way 1x Cuckoo tag store (Shared-L2) ==\n");
    let model = EnergyModel::shared_l2();
    let grid: Vec<(usize, SharerFormat)> = [64usize, 1024]
        .into_iter()
        .flat_map(|cores| SharerFormat::all().map(|format| (cores, format)))
        .collect();
    let rows = ccd_bench::runner_from_env().map(&grid, |&(cores, format)| {
        let caches = 2 * cores;
        let point = org_for(format).map(|org| model.evaluate(&org, cores));
        FormatRow {
            format: format.to_string(),
            cores,
            entry_bits: format.entry_bits(caches),
            energy_percent: point.map(|p| p.energy_relative * 100.0),
            area_percent: point.map(|p| p.area_relative * 100.0),
        }
    });
    let mut table = TextTable::new(vec![
        "cores",
        "sharer format",
        "sharer bits/entry",
        "energy %",
        "area %",
    ]);
    let fmt =
        |v: Option<f64>, digits: usize| v.map_or("-".to_string(), |x| format!("{x:.digits$}"));
    for r in &rows {
        table.add_row(vec![
            r.cores.to_string(),
            r.format.clone(),
            r.entry_bits.to_string(),
            fmt(r.energy_percent, 1),
            fmt(r.area_percent, 2),
        ]);
    }
    table.print();
    println!("\nFull vectors (and limited pointers that must broadcast) stop scaling past a");
    println!("few hundred caches; the coarse and hierarchical formats keep the Cuckoo entry");
    println!("nearly constant, which is why the paper pairs the Cuckoo tag store with them.");
    write_json("ablation_sharer_format", &rows);
}
