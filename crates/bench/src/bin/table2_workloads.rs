//! Table 2 — workload parameters.
//!
//! Prints the synthetic stand-ins for the paper's workload suite: the
//! footprint and access-mix parameters each generator is calibrated to
//! (see `ccd-workloads` and ARCHITECTURE.md for the substitution rationale).

use ccd_bench::{write_json, TextTable};
use ccd_workloads::WorkloadProfile;

fn main() {
    println!("== Table 2: synthetic workload parameters (stand-ins for the paper's suite) ==\n");
    let workloads = WorkloadProfile::all_paper_workloads();
    let mut table = TextTable::new(vec![
        "workload",
        "class",
        "shared code (blocks)",
        "shared data (blocks)",
        "private/core (blocks)",
        "ifetch %",
        "write %",
        "shared-data %",
    ]);
    for w in &workloads {
        table.add_row(vec![
            w.name.to_string(),
            w.category.to_string(),
            w.shared_code_blocks.to_string(),
            w.shared_data_blocks.to_string(),
            w.private_data_blocks.to_string(),
            format!("{:.0}", w.ifetch_fraction * 100.0),
            format!("{:.0}", w.write_fraction * 100.0),
            format!("{:.0}", w.shared_data_fraction * 100.0),
        ]);
    }
    table.print();
    println!("\nOriginal applications (Table 2 of the paper): TPC-C on DB2 v8 and Oracle 10g,");
    println!("TPC-H queries 2/16/17 on DB2, SPECweb99 on Apache 2.0 and Zeus 4.3, em3d and");
    println!("ocean; all replaced here by calibrated synthetic generators.");
    write_json("table2_workloads", &workloads);
}
