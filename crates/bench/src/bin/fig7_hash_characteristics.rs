//! Figure 7 — d-ary cuckoo hash characteristics.
//!
//! Reproduces both panels of Figure 7: the average number of insertion
//! attempts (left) and the insertion-failure probability (right) as a
//! function of occupancy, for 2-, 3-, 4- and 8-ary cuckoo tables indexed by
//! strong hash functions, driven with uniformly random values exactly as in
//! Section 5.1 — once per insertion policy, so the BFS shortest-path
//! engine's occupancy-vs-attempts trade-off sits next to the paper's
//! greedy displacement chain in the same report.

use ccd_bench::{write_json, TextTable};
use ccd_cuckoo::CuckooTable;
use ccd_directory::InsertPolicy;
use ccd_hash::HashKind;
use ccd_workloads::RandomKeyStream;

/// Occupancy bucket width of the reported curves.
const BUCKET: f64 = 0.05;

#[derive(Debug)]
struct CurvePoint {
    occupancy: f64,
    avg_attempts: f64,
    failure_probability: f64,
}
ccd_bench::impl_to_json!(CurvePoint {
    occupancy,
    avg_attempts,
    failure_probability
});

#[derive(Debug)]
struct Curve {
    arity: usize,
    policy: String,
    points: Vec<CurvePoint>,
}
ccd_bench::impl_to_json!(Curve {
    arity,
    policy,
    points
});

fn characterize(arity: usize, sets: usize, seed: u64, policy: InsertPolicy) -> Curve {
    let mut table: CuckooTable<()> =
        CuckooTable::new(arity, sets, HashKind::Strong, seed).expect("valid geometry");
    table.set_insert_policy(policy);
    let mut keys = RandomKeyStream::new(seed ^ 0xF167);
    let capacity = table.capacity();

    let buckets = (1.0 / BUCKET) as usize;
    let mut attempts_sum = vec![0u64; buckets + 1];
    let mut inserts = vec![0u64; buckets + 1];
    let mut failures = vec![0u64; buckets + 1];

    // Drive the table towards full; at high occupancy discarded entries keep
    // the occupancy from advancing, so also bound the number of insertions.
    let max_inserts = capacity * 3;
    let mut performed = 0usize;
    while table.occupancy() < 0.98 && performed < max_inserts {
        let bucket = ((table.occupancy() / BUCKET) as usize).min(buckets);
        let outcome = table.insert(keys.next_key(), ());
        attempts_sum[bucket] += u64::from(outcome.attempts);
        inserts[bucket] += 1;
        if !outcome.succeeded() {
            failures[bucket] += 1;
        }
        performed += 1;
    }

    let points = (0..=buckets)
        .filter(|&b| inserts[b] > 0)
        .map(|b| CurvePoint {
            occupancy: b as f64 * BUCKET,
            avg_attempts: attempts_sum[b] as f64 / inserts[b] as f64,
            failure_probability: failures[b] as f64 / inserts[b] as f64,
        })
        .collect();
    Curve {
        arity,
        policy: policy.to_string(),
        points,
    }
}

fn print_policy_table(arities: &[usize], curves: &[Curve]) {
    let mut headers = vec!["occupancy".to_string()];
    for d in arities {
        headers.push(format!("{d}-ary attempts"));
        headers.push(format!("{d}-ary fail%"));
    }
    let mut table = TextTable::new(headers);
    let steps = (1.0 / BUCKET) as usize;
    for b in 0..=steps {
        let occ = b as f64 * BUCKET;
        let mut row = vec![format!("{occ:.2}")];
        for curve in curves {
            match curve
                .points
                .iter()
                .find(|p| (p.occupancy - occ).abs() < 1e-9)
            {
                Some(p) => {
                    row.push(format!("{:.2}", p.avg_attempts));
                    row.push(format!("{:.1}", p.failure_probability * 100.0));
                }
                None => {
                    row.push("-".to_string());
                    row.push("-".to_string());
                }
            }
        }
        table.add_row(row);
    }
    table.print();
}

fn main() {
    println!("== Figure 7: d-ary cuckoo hash characteristics (strong hash functions) ==");
    println!("   100k+ random values per arity, 32-attempt budget, independent of capacity\n");

    // Each (arity, policy) characterization is independent; fan them across
    // the engine runner's workers (results stay in case order either way).
    let arities = [2usize, 3, 4, 8];
    let policies = [InsertPolicy::Greedy, InsertPolicy::Bfs];
    let cases: Vec<(usize, InsertPolicy)> = policies
        .iter()
        .flat_map(|&policy| arities.iter().map(move |&d| (d, policy)))
        .collect();
    let curves: Vec<Curve> = ccd_bench::runner_from_env().map(&cases, |&(d, policy)| {
        characterize(
            d,
            32 * 1024 / d.next_power_of_two(),
            0xC0FFEE + d as u64,
            policy,
        )
    });

    for (p, policy) in policies.iter().enumerate() {
        println!("-- insertion policy: {policy} --");
        print_policy_table(
            &arities,
            &curves[p * arities.len()..(p + 1) * arities.len()],
        );
        println!();
    }

    println!("Paper reference (Section 5.1): below 50% occupancy, 3-ary and wider tables");
    println!("succeed immediately or with a single displacement, and no failures occur");
    println!("up to ~65% occupancy.  The BFS panel pays the same attempt budget for");
    println!("shortest displacement paths, pushing the failure knee to higher occupancy.");
    write_json("fig7_hash_characteristics", &curves);
}
