//! Scenario-catalog sweep: every sharing-pattern family × three directory
//! organizations, plus a record→replay fidelity check.
//!
//! The paper's figures exercise the directories under the Table 2 workload
//! stand-ins only; this binary crosses the five classic sharing-pattern
//! families (read-mostly, producer–consumer, migratory, false sharing,
//! streaming scans — see `ccd_workloads::scenario`) with the Cuckoo,
//! Sparse and Skewed organizations on the Shared-L2 system, with the
//! calibrated Oracle profile as the baseline column.  One cell (Cuckoo ×
//! migratory) is additionally recorded to a `CCDT` trace file and replayed
//! — serially and in parallel — asserting the replayed `SimReport`s are
//! **byte-identical** to the live generation.
//!
//! Results land in `results/BENCH_scenarios.json`; the output is fully
//! deterministic (no wall-clocks), so the quick-scale run is golden-checked
//! in CI.

use ccd_bench::{write_bench_json, ParallelRunner, RunScale, SweepSpec, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SimJob, SimReport, SystemConfig};
use ccd_workloads::{record_trace, WorkloadSpec};

/// The workload axis: the Oracle baseline plus the five scenario families
/// (defaults, with one tuned variant to exercise the knob grammar).
const WORKLOADS: &[&str] = &[
    "oracle",
    "readmostly",
    "prodcons",
    "migratory-zipf0.9",
    "falseshare",
    "stream",
];

#[derive(Debug)]
struct ScenarioRow {
    workload: String,
    org: String,
    refs_processed: u64,
    cache_miss_rate: f64,
    coherence_invalidations_per_kref: f64,
    forced_invalidation_rate: f64,
    avg_directory_occupancy: f64,
}
ccd_bench::impl_to_json!(ScenarioRow {
    workload,
    org,
    refs_processed,
    cache_miss_rate,
    coherence_invalidations_per_kref,
    forced_invalidation_rate,
    avg_directory_occupancy,
});

#[derive(Debug)]
struct ScenarioBench {
    scale: String,
    replay_workload: String,
    replay_identical_serial: bool,
    replay_identical_parallel: bool,
    rows: Vec<ScenarioRow>,
}
ccd_bench::impl_to_json!(ScenarioBench {
    scale,
    replay_workload,
    replay_identical_serial,
    replay_identical_parallel,
    rows,
});

/// The scenario-catalog sweep this binary (and its golden test) runs.
fn scenario_sweep(scale: RunScale) -> SweepSpec {
    let mut sweep = SweepSpec::new("Scenario catalog (Shared-L2)")
        .system("Shared-L2", SystemConfig::table1(Hierarchy::SharedL2))
        .org("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0))
        .org("Sparse 2x", DirectorySpec::sparse(8, 2.0))
        .org("Skewed 2x", DirectorySpec::skewed(4, 2.0))
        .scale(scale)
        .base_seed(0x5CE0);
    for spec in WORKLOADS {
        sweep = sweep.workload_str(spec).expect("catalog specs parse");
    }
    sweep
}

/// Records the live stream of one sweep cell and replays it through the
/// same simulation, returning the live report and the replayed reports
/// produced by a serial and a parallel runner.
fn record_replay_check(sweep: &SweepSpec, workload_index: usize) -> (SimReport, Vec<SimReport>) {
    let system = sweep.systems[0].1.clone();
    let spec = sweep.orgs[0].1.clone();
    let workload: WorkloadSpec = WORKLOADS[workload_index].parse().expect("catalog spec");
    let seed = sweep.trace_seed(0, workload_index, sweep.seeds[0]);
    let warmup_refs = sweep.scale.warmup_refs(&system);
    let measure_refs = sweep.scale.measure_refs(&system);

    // Process-unique name: concurrent runs (two scales in two terminals,
    // parallel CI jobs on one runner) must not race on the same file.
    let path = std::env::temp_dir().join(format!(
        "ccd-bench-scenarios-replay-{}.ccdt",
        std::process::id()
    ));
    let stream = workload
        .stream(system.num_cores, seed)
        .expect("catalog workload builds");
    let written = record_trace(
        &path,
        system.num_cores as u32,
        stream,
        warmup_refs + measure_refs,
    )
    .expect("trace records");
    assert_eq!(written, warmup_refs + measure_refs);

    let live = SimJob {
        system,
        spec,
        workload,
        seed,
        warmup_refs,
        measure_refs,
    };
    let replay = SimJob {
        workload: WorkloadSpec::replay(path.to_string_lossy()),
        ..live.clone()
    };

    let live_report = live.run().expect("live job runs");
    let replays: Vec<SimReport> = [ParallelRunner::serial(), ParallelRunner::with_workers(4)]
        .iter()
        .flat_map(|runner| {
            runner
                .run_jobs(std::slice::from_ref(&replay))
                .expect("replay runs")
        })
        .collect();
    std::fs::remove_file(&path).ok();
    (live_report, replays)
}

fn main() {
    let (scale, scale_name) = RunScale::from_env_named();
    let sweep = scenario_sweep(scale);
    ccd_bench::print_system_banner(&sweep.title, &sweep.systems[0].1);
    println!(
        "   {} workloads x {} organizations, scale {scale_name}",
        sweep.workloads.len(),
        sweep.orgs.len()
    );

    let results = sweep.run().expect("scenario sweep runs");

    let rows: Vec<ScenarioRow> = results
        .cells
        .iter()
        .map(|cell| ScenarioRow {
            workload: cell.workload.clone(),
            org: cell.org.clone(),
            refs_processed: cell.report.refs_processed,
            cache_miss_rate: cell.report.cache_miss_rate(),
            coherence_invalidations_per_kref: cell.report.coherence_invalidations as f64 * 1000.0
                / cell.report.refs_processed.max(1) as f64,
            forced_invalidation_rate: cell.report.forced_invalidation_rate(),
            avg_directory_occupancy: cell.report.avg_directory_occupancy,
        })
        .collect();

    // Record→replay fidelity on the Cuckoo × migratory cell.
    let migratory_index = WORKLOADS
        .iter()
        .position(|w| w.starts_with("migratory"))
        .expect("catalog has a migratory scenario");
    let (live, replays) = record_replay_check(&sweep, migratory_index);
    let identical: Vec<bool> = replays.iter().map(|r| *r == live).collect();
    assert!(
        identical.iter().all(|&ok| ok),
        "record->replay must reproduce the live SimReport byte-identically"
    );

    let mut table = TextTable::new(vec![
        "workload",
        "org",
        "miss rate",
        "coh inv/kref",
        "forced inv rate",
        "occupancy",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            row.org.clone(),
            format!("{:.4}", row.cache_miss_rate),
            format!("{:.2}", row.coherence_invalidations_per_kref),
            format!("{:.5}", row.forced_invalidation_rate),
            format!("{:.4}", row.avg_directory_occupancy),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nrecord->replay ({}) identical: serial {}, parallel {}",
        WORKLOADS[migratory_index], identical[0], identical[1]
    );

    let bench = ScenarioBench {
        scale: scale_name.to_string(),
        replay_workload: WORKLOADS[migratory_index].to_string(),
        replay_identical_serial: identical[0],
        replay_identical_parallel: identical[1],
        rows,
    };
    write_bench_json("BENCH_scenarios", &bench);
}
