//! Records a synthetic workload into a `CCDT` trace file.
//!
//! ```text
//! trace_record <workload-spec> <out.ccdt> [--cores N] [--refs N] [--seed N]
//! ```
//!
//! `<workload-spec>` is anything [`ccd_workloads::WorkloadSpec`] parses: a
//! paper profile name (`oracle`), a scenario spec (`migratory-zipf0.9`), or
//! even another recording (`replay:old.ccdt`, producing a re-encoded
//! copy).  The recording can then be replayed bit-identically by
//! `trace_replay` or by any sweep via the `replay:<path>` workload spec.

use ccd_workloads::{record_trace, WorkloadSpec};
use std::process::ExitCode;

const USAGE: &str =
    "usage: trace_record <workload-spec> <out.ccdt> [--cores N] [--refs N] [--seed N]";

struct Args {
    workload: WorkloadSpec,
    out: String,
    cores: usize,
    refs: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut cores = 16usize;
    let mut refs = 200_000u64;
    let mut seed = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--cores" => {
                cores = flag_value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?;
            }
            "--refs" => {
                refs = flag_value("--refs")?
                    .parse()
                    .map_err(|e| format!("--refs: {e}"))?;
            }
            "--seed" => {
                seed = flag_value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            _ => positional.push(arg),
        }
    }

    let [workload, out] = positional.try_into().map_err(|_| USAGE.to_string())?;
    let workload: WorkloadSpec = workload.parse().map_err(|e| format!("{e}"))?;
    Ok(Args {
        workload,
        out,
        cores,
        refs,
        seed,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let stream = match args.workload.stream(args.cores, args.seed) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match record_trace(&args.out, args.cores as u32, stream, args.refs) {
        Ok(written) => {
            let bytes = std::fs::metadata(&args.out).map(|m| m.len()).unwrap_or(0);
            println!(
                "recorded {written} refs of `{}` ({} cores, seed {}) to {} ({bytes} bytes, {:.2} B/ref)",
                args.workload.label(),
                args.cores,
                args.seed,
                args.out,
                bytes as f64 / written.max(1) as f64,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: could not record {}: {e}", args.out);
            ExitCode::FAILURE
        }
    }
}
