//! Figure 11 — worst-case insertion-attempt distributions.
//!
//! Reports the full insertion-attempt histogram for the two worst-case
//! combinations the paper identifies: OLTP Oracle on the Shared-L2
//! configuration and ocean on the Private-L2 configuration, using the
//! selected 4×512 and 3×8192 Cuckoo organizations.

use ccd_bench::sweep::cuckoo_org_label;
use ccd_bench::{print_system_banner, write_json, RunScale, SweepCell, SweepSpec, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_hash::HashKind;
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct Distribution {
    label: String,
    /// `percent[a]` = share of insert operations that took `a` attempts.
    percent_by_attempts: Vec<(u64, f64)>,
}
ccd_bench::impl_to_json!(Distribution {
    label,
    percent_by_attempts
});

fn distribution(label: &str, cell: &SweepCell) -> Distribution {
    let hist = &cell.report.directory.insertion_attempts;
    let percent_by_attempts = (0..=hist.max_value())
        .map(|a| (a, hist.fraction(a) * 100.0))
        .filter(|&(a, pct)| a > 0 && (pct > 0.0 || a <= 8))
        .collect();
    Distribution {
        label: label.to_string(),
        percent_by_attempts,
    }
}

/// The worst-case point of one hierarchy as a single-cell sweep.
fn worst_case_sweep(hierarchy: Hierarchy, scale: RunScale) -> SweepSpec {
    let (ways, sets, profile) = match hierarchy {
        Hierarchy::SharedL2 => (4usize, 512usize, WorkloadProfile::oracle()),
        Hierarchy::PrivateL2 => (3, 8192, WorkloadProfile::ocean()),
    };
    SweepSpec::new(format!("Figure 11 ({hierarchy})"))
        .system(hierarchy.to_string(), SystemConfig::table1(hierarchy))
        .org(
            cuckoo_org_label(ways, sets),
            DirectorySpec::CuckooExplicit {
                ways,
                sets,
                hash: HashKind::Skewing,
            },
        )
        .workload(profile)
        .scale(scale)
        .base_seed(0xF11)
}

fn main() {
    let scale = RunScale::from_env();
    let shared = SystemConfig::table1(Hierarchy::SharedL2);
    print_system_banner(
        "Figure 11: worst-case insertion-attempt distributions",
        &shared,
    );
    println!();

    let shared_results = worst_case_sweep(Hierarchy::SharedL2, scale)
        .run()
        .expect("simulation failed");
    let private_results = worst_case_sweep(Hierarchy::PrivateL2, scale)
        .run()
        .expect("simulation failed");

    // Each worst-case sweep is a single cell by construction.
    assert_eq!(shared_results.cells.len(), 1);
    assert_eq!(private_results.cells.len(), 1);
    let oracle = distribution("OLTP Oracle (Shared-L2, 4x512)", &shared_results.cells[0]);
    let ocean = distribution("ocean (Private-L2, 3x8192)", &private_results.cells[0]);

    for dist in [&oracle, &ocean] {
        println!("{}", dist.label);
        let mut table = TextTable::new(vec!["insertion attempts", "% of insert operations"]);
        for (attempts, pct) in &dist.percent_by_attempts {
            table.add_row(vec![attempts.to_string(), format!("{pct:.2}")]);
        }
        table.print();
        println!();
    }

    println!("Paper reference (Figure 11): ~85% (Oracle) and ~73% (ocean) of insertions");
    println!("complete in one attempt; each additional attempt is exponentially rarer and");
    println!("the 32-attempt cap is essentially never reached (no peak at 32).");
    write_json("fig11_attempt_distribution", &vec![oracle, ocean]);
}
