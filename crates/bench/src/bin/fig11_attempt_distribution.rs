//! Figure 11 — worst-case insertion-attempt distributions.
//!
//! Reports the full insertion-attempt histogram for the two worst-case
//! combinations the paper identifies: OLTP Oracle on the Shared-L2
//! configuration and ocean on the Private-L2 configuration, using the
//! selected 4×512 and 3×8192 Cuckoo organizations.

use ccd_bench::{print_system_banner, simulate_workload, write_json, RunScale, TextTable};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_hash::HashKind;
use ccd_workloads::WorkloadProfile;

#[derive(Debug)]
struct Distribution {
    label: String,
    /// `percent[a]` = share of insert operations that took `a` attempts.
    percent_by_attempts: Vec<(u64, f64)>,
}
ccd_bench::impl_to_json!(Distribution {
    label,
    percent_by_attempts
});

fn distribution(
    label: &str,
    system: &SystemConfig,
    spec: &DirectorySpec,
    profile: &WorkloadProfile,
    scale: RunScale,
) -> Distribution {
    let report = simulate_workload(system, spec, profile, scale, 0xF11).expect("simulation failed");
    let hist = &report.directory.insertion_attempts;
    let percent_by_attempts = (0..=hist.max_value())
        .map(|a| (a, hist.fraction(a) * 100.0))
        .filter(|&(a, pct)| a > 0 && (pct > 0.0 || a <= 8))
        .collect();
    Distribution {
        label: label.to_string(),
        percent_by_attempts,
    }
}

fn main() {
    let scale = RunScale::from_env();
    let shared = SystemConfig::table1(Hierarchy::SharedL2);
    let private = SystemConfig::table1(Hierarchy::PrivateL2);
    print_system_banner(
        "Figure 11: worst-case insertion-attempt distributions",
        &shared,
    );
    println!();

    let oracle = distribution(
        "OLTP Oracle (Shared-L2, 4x512)",
        &shared,
        &DirectorySpec::CuckooExplicit {
            ways: 4,
            sets: 512,
            hash: HashKind::Skewing,
        },
        &WorkloadProfile::oracle(),
        scale,
    );
    let ocean = distribution(
        "ocean (Private-L2, 3x8192)",
        &private,
        &DirectorySpec::CuckooExplicit {
            ways: 3,
            sets: 8192,
            hash: HashKind::Skewing,
        },
        &WorkloadProfile::ocean(),
        scale,
    );

    for dist in [&oracle, &ocean] {
        println!("{}", dist.label);
        let mut table = TextTable::new(vec!["insertion attempts", "% of insert operations"]);
        for (attempts, pct) in &dist.percent_by_attempts {
            table.add_row(vec![attempts.to_string(), format!("{pct:.2}")]);
        }
        table.print();
        println!();
    }

    println!("Paper reference (Figure 11): ~85% (Oracle) and ~73% (ocean) of insertions");
    println!("complete in one attempt; each additional attempt is exponentially rarer and");
    println!("the 32-attempt cap is essentially never reached (no peak at 32).");
    write_json("fig11_attempt_distribution", &vec![oracle, ocean]);
}
