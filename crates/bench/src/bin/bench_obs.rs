//! `bench_obs` — cost and invariance of the deterministic observability
//! layer.
//!
//! Runs the calibrated Oracle workload through the concurrent directory
//! service twice per worker count: **dark** (no observability) and
//! **armed** (depth metrics + flight recorder + spans,
//! `obs-ring4096-spans`).  Every armed cell is asserted bit-identical to
//! its dark twin — contract #11, exercised at benchmark scale — and every
//! armed cell's merged metric snapshot must render byte-identically to
//! the armed serial reference's (the snapshot is worker-count invariant).
//!
//! The headline number is the **armed overhead**: the relative throughput
//! cost of observation, best-of-N per cell to damp scheduler noise.  At
//! the default and full scales the run *fails* if the worst armed cell
//! costs more than [`GATE`] (5%); the quick scale records the numbers
//! without gating, because CI timing is too noisy to assert on.
//!
//! Two flight-recording files land under the results directory
//! (`obs_trace_router.bin`, `obs_trace_worker0.bin`) so the `trace_dump`
//! reader can be smoke-tested against real recordings.
//!
//! Results land in `BENCH_obs.json` at the repository root *and* under
//! `results/` (one code path writes both).  All fields except the
//! wall-clock ones (`seconds`, `mops_per_sec`, `overhead`) are
//! deterministic, so CI golden-checks the quick-scale output with those
//! field names filtered out.

use ccd_bench::{results_dir, write_bench_json, RunScale, TextTable};
use ccd_obs::expo::render_json;
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};
use std::time::Instant;

/// Shard organization: a 16 K-entry 4-way cuckoo directory tracking 16
/// caches, split across 8 address-interleaved shards.
const SPEC: &str = "cuckoo-4x4096-c16";
const CORES: usize = 16;
const SHARDS: usize = 8;
const SEED: u64 = 0x0B5E;
const WORKLOAD: &str = "oracle";
const OBS: &str = "obs-ring4096-spans";
const WORKER_AXIS: &[usize] = &[1, 2, 4];

/// The armed-overhead gate: observation may cost at most this fraction of
/// dark throughput (asserted at non-quick scales).
const GATE: f64 = 0.05;

#[derive(Debug)]
struct ObsRow {
    workers: usize,
    armed: String,
    requests: u64,
    entries: u64,
    outcome_digest: String,
    matches_dark: bool,
    probe_count: u64,
    probe_p50: u64,
    probe_p99: u64,
    probe_max: u64,
    chain_count: u64,
    chain_p50: u64,
    chain_p99: u64,
    chain_max: u64,
    seconds: f64,
    mops_per_sec: f64,
    overhead: f64,
}
ccd_bench::impl_to_json!(ObsRow {
    workers,
    armed,
    requests,
    entries,
    outcome_digest,
    matches_dark,
    probe_count,
    probe_p50,
    probe_p99,
    probe_max,
    chain_count,
    chain_p50,
    chain_p99,
    chain_max,
    seconds,
    mops_per_sec,
    overhead,
});

#[derive(Debug)]
struct ObsBench {
    scale: String,
    spec: String,
    workload: String,
    obs: String,
    cores: usize,
    shards: usize,
    requests: u64,
    snapshot_invariant: bool,
    overhead: f64,
    rows: Vec<ObsRow>,
}
ccd_bench::impl_to_json!(ObsBench {
    scale,
    spec,
    workload,
    obs,
    cores,
    shards,
    requests,
    snapshot_invariant,
    overhead,
    rows,
});

fn requests_for(scale_name: &str) -> u64 {
    match scale_name {
        "quick" => 150_000,
        "full" => 4_000_000,
        _ => 1_000_000,
    }
}

fn config(workers: usize, armed: bool) -> ServiceConfig {
    let config = ServiceConfig::new(SPEC, SHARDS, workers);
    if armed {
        config.with_obs_spec(OBS).expect("bench obs spec parses")
    } else {
        config
    }
}

/// Runs one cell `reps` times and keeps the best wall-clock time (the
/// reports are deterministic, so any rep's report will do).
fn timed_run(workers: usize, armed: bool, load: &LoadSpec, reps: usize) -> (ServiceReport, f64) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let service = DirectoryService::build_standard(config(workers, armed))
            .expect("bench topology builds");
        let start = Instant::now();
        let run = service.run_load(load).expect("bench load runs");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(run);
    }
    (report.expect("at least one rep ran"), best)
}

/// `(count, p50, p99, max)` of one named histogram in the armed
/// snapshot; all zeros for a dark report.
fn depth_summary(report: &ServiceReport, name: &str) -> (u64, u64, u64, u64) {
    let Some(obs) = report.obs.as_ref() else {
        return (0, 0, 0, 0);
    };
    let h = obs
        .metrics
        .histograms
        .iter()
        .find(|h| h.name == name)
        .unwrap_or_else(|| panic!("armed snapshot must carry `{name}`"));
    (h.count, h.p50, h.p99, h.max)
}

fn row(
    workers: usize,
    armed: bool,
    report: &ServiceReport,
    seconds: f64,
    dark_mops: f64,
) -> ObsRow {
    let mops = report.requests as f64 / seconds.max(1e-9) / 1e6;
    let (probe_count, probe_p50, probe_p99, probe_max) = depth_summary(report, "probe_depth");
    let (chain_count, chain_p50, chain_p99, chain_max) =
        depth_summary(report, "displacement_chain");
    ObsRow {
        workers,
        armed: if armed {
            OBS.to_string()
        } else {
            "-".to_string()
        },
        requests: report.requests,
        entries: report.entries as u64,
        outcome_digest: format!("{:016x}", report.outcome_digest),
        matches_dark: true,
        probe_count,
        probe_p50,
        probe_p99,
        probe_max,
        chain_count,
        chain_p50,
        chain_p99,
        chain_max,
        seconds,
        mops_per_sec: mops,
        overhead: if armed { 1.0 - mops / dark_mops } else { 0.0 },
    }
}

fn dump_recordings(report: &ServiceReport) {
    let obs = report
        .obs
        .as_ref()
        .expect("armed report carries recordings");
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return;
    }
    let dumps = [
        ("obs_trace_router.bin", obs.router.as_ref()),
        ("obs_trace_worker0.bin", obs.workers.first()),
    ];
    for (name, recording) in dumps {
        let Some(recording) = recording else { continue };
        let path = dir.join(name);
        match std::fs::write(&path, recording.to_bytes()) {
            Ok(()) => println!(
                "   wrote {} ({} events)",
                path.display(),
                recording.events.len()
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

fn main() {
    let (_, scale_name) = RunScale::from_env_named();
    let requests = requests_for(scale_name);
    let reps = if scale_name == "quick" { 1 } else { 3 };
    println!("== BENCH_obs: observability layer cost and invariance ==");
    println!(
        "   spec {SPEC}, {CORES} cores, {SHARDS} shards, workload {WORKLOAD}, \
         {requests} requests/cell, scale {scale_name}, obs {OBS}"
    );

    let load = LoadSpec::parse(WORKLOAD, CORES, SEED, requests).expect("catalog workload parses");

    // Untimed warm-up: pay one-time process costs before the timed cells.
    let _ = timed_run(*WORKER_AXIS.last().unwrap(), true, &load, 1);

    // The armed serial reference anchors the snapshot-invariance check.
    let serial = DirectoryService::build_standard(config(1, true))
        .expect("bench topology builds")
        .run_load_serial(&load)
        .expect("armed serial reference runs");
    let reference_json = render_json(
        &serial
            .obs
            .as_ref()
            .expect("armed serial reports obs")
            .metrics,
    );

    let mut rows: Vec<ObsRow> = Vec::new();
    let mut snapshot_invariant = true;
    let mut worst_overhead = 0.0f64;
    for &workers in WORKER_AXIS {
        let (dark, dark_seconds) = timed_run(workers, false, &load, reps);
        let (armed, armed_seconds) = timed_run(workers, true, &load, reps);
        // Contract #11 at benchmark scale: observation never perturbs.
        assert_eq!(
            armed.semantics(),
            dark.semantics(),
            "{workers} armed workers diverged from their dark twin"
        );
        assert_eq!(armed.outcome_digest, dark.outcome_digest);
        // Snapshot invariance: byte-identical to the serial reference.
        let armed_json = render_json(&armed.obs.as_ref().expect("armed obs").metrics);
        snapshot_invariant &= armed_json == reference_json;
        assert!(
            snapshot_invariant,
            "{workers} armed workers rendered a different metric snapshot"
        );
        let dark_mops = dark.requests as f64 / dark_seconds.max(1e-9) / 1e6;
        rows.push(row(workers, false, &dark, dark_seconds, dark_mops));
        let armed_row = row(workers, true, &armed, armed_seconds, dark_mops);
        worst_overhead = worst_overhead.max(armed_row.overhead);
        rows.push(armed_row);
        if workers == 2 {
            dump_recordings(&armed);
        }
    }

    let mut table = TextTable::new(vec![
        "workers",
        "obs",
        "Mreq/s",
        "overhead",
        "probe p50",
        "probe p99",
        "chain p99",
        "digest",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workers.to_string(),
            row.armed.clone(),
            format!("{:.2}", row.mops_per_sec),
            if row.armed == "-" {
                "-".to_string()
            } else {
                format!("{:+.1}%", row.overhead * 100.0)
            },
            row.probe_p50.to_string(),
            row.probe_p99.to_string(),
            row.chain_p99.to_string(),
            row.outcome_digest.clone(),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nworst armed overhead: {:+.2}% (gate {:.0}% at non-quick scales); \
         snapshot worker-count invariant: {snapshot_invariant}",
        worst_overhead * 100.0,
        GATE * 100.0
    );
    if scale_name != "quick" {
        assert!(
            worst_overhead <= GATE,
            "armed observation cost {:.2}% exceeds the {:.0}% gate",
            worst_overhead * 100.0,
            GATE * 100.0
        );
    }

    let bench = ObsBench {
        scale: scale_name.to_string(),
        spec: SPEC.to_string(),
        workload: WORKLOAD.to_string(),
        obs: OBS.to_string(),
        cores: CORES,
        shards: SHARDS,
        requests,
        snapshot_invariant,
        overhead: worst_overhead,
        rows,
    };
    write_bench_json("BENCH_obs", &bench);
}
