//! Shared harness utilities for the experiment binaries and the Criterion
//! micro-benchmarks.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in this crate (see the READMEs reproducing-the-figures walkthrough for the index).  All binaries
//! share the plumbing here:
//!
//! * [`RunScale`] — how many references to warm up and measure per
//!   simulation, scaled to the tracked-cache capacity and overridable with
//!   the `CCD_SCALE` environment variable (`quick`, `default`, `full`),
//! * [`SweepSpec`] — declarative parameter sweeps (organizations × systems
//!   × workloads × seeds) fanned across threads by the engine's
//!   [`ParallelRunner`] with deterministic results,
//! * [`simulate_workload`] — build + warm + measure one (system, directory,
//!   workload) combination,
//! * [`TextTable`] — fixed-width table printing for the figure data,
//! * [`write_json`] — persist results under `results/` for EXPERIMENTS.md,
//! * [`write_bench_json`] — persist the headline `BENCH_*` files to the
//!   repository root *and* `results/` from one render (CI diffs the two).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod sweep;

use ccd_coherence::{CmpSimulator, DirectorySpec, SimReport, SystemConfig};
use ccd_common::ConfigError;
use ccd_workloads::{TraceGenerator, WorkloadProfile};
use json::{Json, ToJson};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub use ccd_coherence::{ParallelRunner, SimJob};
pub use sweep::{fig9_sweep, SweepCell, SweepResults, SweepSpec};

impl_to_json!(WorkloadProfile {
    name,
    shared_code_blocks,
    shared_data_blocks,
    private_data_blocks,
    ifetch_fraction,
    write_fraction,
    shared_data_fraction,
    shared_skew,
    private_skew,
});

/// How much work each simulation performs, expressed as multiples of the
/// aggregate tracked-cache capacity (so Private-L2 runs, whose caches are
/// 16× larger, automatically warm longer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunScale {
    /// Warm-up references per tracked cache frame.
    pub warmup_per_frame: f64,
    /// Measured references per tracked cache frame.
    pub measure_per_frame: f64,
}

impl RunScale {
    /// Quick smoke-test scale (used by CI and the integration tests).
    #[must_use]
    pub const fn quick() -> Self {
        RunScale {
            warmup_per_frame: 4.0,
            measure_per_frame: 2.0,
        }
    }

    /// The default scale used by the figure binaries.
    #[must_use]
    pub const fn default_scale() -> Self {
        RunScale {
            warmup_per_frame: 16.0,
            measure_per_frame: 8.0,
        }
    }

    /// A long, publication-quality run.
    #[must_use]
    pub const fn full() -> Self {
        RunScale {
            warmup_per_frame: 48.0,
            measure_per_frame: 24.0,
        }
    }

    /// Reads the scale from the `CCD_SCALE` environment variable
    /// (`quick` / `default` / `full`); unknown values fall back to the
    /// default scale.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_named().0
    }

    /// Like [`RunScale::from_env`], but also returns the canonical name of
    /// the selected scale (for result files that record how they were run).
    #[must_use]
    pub fn from_env_named() -> (Self, &'static str) {
        match std::env::var("CCD_SCALE").as_deref() {
            Ok("quick") => (Self::quick(), "quick"),
            Ok("full") => (Self::full(), "full"),
            _ => (Self::default_scale(), "default"),
        }
    }

    /// Warm-up reference count for `system`.
    #[must_use]
    pub fn warmup_refs(&self, system: &SystemConfig) -> u64 {
        (system.total_tracked_frames() as f64 * self.warmup_per_frame) as u64
    }

    /// Measured reference count for `system`.
    #[must_use]
    pub fn measure_refs(&self, system: &SystemConfig) -> u64 {
        (system.total_tracked_frames() as f64 * self.measure_per_frame) as u64
    }
}

impl Default for RunScale {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// Runs one (system, directory, workload) simulation: warm up, reset
/// statistics, measure, report.
///
/// # Errors
///
/// Propagates configuration errors from the simulator construction.
pub fn simulate_workload(
    system: &SystemConfig,
    spec: &DirectorySpec,
    profile: &WorkloadProfile,
    scale: RunScale,
    seed: u64,
) -> Result<SimReport, ConfigError> {
    let mut trace = TraceGenerator::new(profile.clone(), system.num_cores, seed);
    CmpSimulator::run_workload(
        system.clone(),
        spec,
        &mut trace,
        scale.warmup_refs(system),
        scale.measure_refs(system),
    )
}

/// A fixed-width text table, printed the way the figure data is reported in
/// EXPERIMENTS.md.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded or truncated to the header width).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, width) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:width$}  ");
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders and prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The environment-selected [`ParallelRunner`], for binaries: exits with a
/// readable message (naming the offending `CCD_WORKERS` token) instead of
/// a panic backtrace when the variable is invalid.
#[must_use]
pub fn runner_from_env() -> ParallelRunner {
    match ParallelRunner::from_env() {
        Ok(runner) => runner,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Directory where the figure binaries persist their JSON results.
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var("CCD_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Serializes `value` as pretty JSON under [`results_dir`]`/name.json`.
/// Failures are reported to stderr but do not abort the experiment.
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    write_json_text(
        &results_dir().join(format!("{name}.json")),
        &value.to_json().to_pretty(),
    );
}

/// Schema version of the headline `BENCH_*` result files.  Stamped into
/// every file [`write_bench_json`] writes as a leading `schema` field, so
/// downstream readers can detect shape changes; bump it whenever the
/// structure of any headline file changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Serializes `value` as pretty JSON to **both** `BENCH` locations —
/// [`results_dir`]`/name.json` and `./name.json` at the repository root —
/// from one render, so the two tracked copies can never drift (CI diffs
/// them byte-for-byte).  Use this for the headline `BENCH_*` result files;
/// per-figure results stay under [`write_json`].
///
/// A `schema` field carrying [`BENCH_SCHEMA_VERSION`] is injected at the
/// head of the top-level object (values that are not objects are written
/// unchanged).
pub fn write_bench_json<T: ToJson>(name: &str, value: &T) {
    let mut json = value.to_json();
    if let Json::Obj(fields) = &mut json {
        let schema = ("schema".to_string(), Json::Num(BENCH_SCHEMA_VERSION as f64));
        fields.insert(0, schema);
    }
    let rendered = json.to_pretty();
    write_json_text(&results_dir().join(format!("{name}.json")), &rendered);
    write_json_text(Path::new(&format!("{name}.json")), &rendered);
}

/// Writes pre-rendered JSON, creating parent directories; failures are
/// reported to stderr but do not abort the experiment.
fn write_json_text(path: &Path, rendered: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: could not create {}: {e}", parent.display());
                return;
            }
        }
    }
    if let Err(e) = std::fs::write(path, rendered) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Prints the Table 1 system parameters the experiment runs under, so every
/// binary's output is self-describing.
pub fn print_system_banner(title: &str, system: &SystemConfig) {
    println!("== {title} ==");
    println!(
        "   system: {} cores, {} hierarchy, {} tracked caches of {} KB ({}-way), 64B blocks",
        system.num_cores,
        system.hierarchy,
        system.num_private_caches(),
        system.tracked_cache().capacity_bytes() / 1024,
        system.tracked_cache().ways,
    );
    println!(
        "   per-slice worst case: {} tracked blocks across {} slices",
        system.tracked_frames_per_slice(),
        system.num_slices()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_coherence::Hierarchy;

    #[test]
    fn run_scale_scales_with_the_tracked_cache() {
        let shared = SystemConfig::table1(Hierarchy::SharedL2);
        let private = SystemConfig::table1(Hierarchy::PrivateL2);
        let scale = RunScale::quick();
        assert_eq!(scale.warmup_refs(&shared), 4 * 32 * 1024);
        assert!(scale.warmup_refs(&private) > scale.warmup_refs(&shared));
        assert!(scale.measure_refs(&shared) < scale.warmup_refs(&shared));
        assert_eq!(RunScale::default(), RunScale::default_scale());
    }

    #[test]
    fn text_table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["workload", "rate"]);
        t.add_row(vec!["DB2", "0.01"]);
        t.add_row(vec!["ocean"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("workload"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("DB2"));
        assert!(lines[3].contains("ocean"));
    }

    #[test]
    fn bench_json_schema_field_leads_the_object() {
        struct Bench {
            scale: String,
        }
        impl_to_json!(Bench { scale });
        let mut json = Bench {
            scale: "quick".into(),
        }
        .to_json();
        // Mirror `write_bench_json`'s injection without touching the
        // filesystem.
        if let Json::Obj(fields) = &mut json {
            fields.insert(
                0,
                ("schema".to_string(), Json::Num(BENCH_SCHEMA_VERSION as f64)),
            );
        }
        let rendered = json.to_pretty();
        let schema_line = format!("\"schema\": {BENCH_SCHEMA_VERSION}");
        assert!(rendered.lines().nth(1).unwrap().contains(&schema_line));
    }

    #[test]
    fn quick_simulation_round_trips() {
        let system = SystemConfig {
            num_cores: 4,
            ..SystemConfig::shared_l2(4)
        };
        let report = simulate_workload(
            &system,
            &DirectorySpec::cuckoo(4, 1.0),
            &WorkloadProfile::apache(),
            RunScale::quick(),
            1,
        )
        .unwrap();
        assert!(report.refs_processed > 0);
        assert!(report.avg_directory_occupancy > 0.0);
    }
}
