//! Dependency-free JSON serialization for the experiment result files.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so the figure
//! binaries serialize their row structs through this small [`ToJson`] trait
//! instead.  [`crate::impl_to_json!`] generates the field-by-field impl for
//! a plain struct in one line.

use std::fmt::{self, Write as _};

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized without a trailing `.0` for integral values).
    Num(f64),
    /// A string (escaped on rendering).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_num(n: f64, out: &mut String) {
        if n.is_finite() {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                let _ = write!(out, "{}", n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        } else {
            // JSON has no NaN/Inf; mirror serde_json's lossy convention.
            out.push_str("null");
        }
    }

    fn render(&self, indent: usize, out: &mut String) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => Self::write_num(*n, out),
            Json::Str(s) => Self::write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    item.render(indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    Self::write_escaped(key, out);
                    out.push_str(": ");
                    value.render(indent + 1, out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Renders the value as pretty-printed JSON.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

macro_rules! impl_num {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        })+
    };
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Implements [`ToJson`] for a plain struct by listing its fields:
///
/// ```
/// struct Row {
///     workload: String,
///     rate: f64,
/// }
/// ccd_bench::impl_to_json!(Row { workload, rate });
/// # let row = Row { workload: "DB2".into(), rate: 0.5 };
/// # use ccd_bench::json::ToJson;
/// # assert!(row.to_json().to_pretty().contains("\"workload\""));
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_strings() {
        assert_eq!(3u32.to_json().to_pretty(), "3");
        assert_eq!(2.5f64.to_json().to_pretty(), "2.5");
        assert_eq!(true.to_json().to_pretty(), "true");
        assert_eq!("a\"b".to_json().to_pretty(), "\"a\\\"b\"");
        assert_eq!(Option::<u32>::None.to_json().to_pretty(), "null");
        assert_eq!(f64::NAN.to_json().to_pretty(), "null");
    }

    #[test]
    fn renders_nested_structures() {
        struct Row {
            name: String,
            values: Vec<(u64, f64)>,
        }
        impl_to_json!(Row { name, values });
        let row = Row {
            name: "x".into(),
            values: vec![(1, 0.5)],
        };
        let text = vec![row].to_json().to_pretty();
        assert!(text.starts_with('['));
        assert!(text.contains("\"name\": \"x\""));
        assert!(text.contains('['));
        // Integral floats render without a fraction.
        assert!(text.contains('1'));
    }
}
