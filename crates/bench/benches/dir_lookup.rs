//! Criterion micro-benchmark: sharer-lookup throughput of each directory
//! organization at 50% occupancy, comparing the zero-allocation `Probe`
//! path against the legacy allocating `sharers()` query.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{CacheId, LineAddr};
use ccd_cuckoo::standard_registry;
use ccd_directory::{Directory, DirectoryOp, Outcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SPECS: &[&str] = &[
    "cuckoo-4x512-skew",
    "sparse-8x512",
    "skewed-4x1024",
    "duplicate-tag-2x32",
    "tagless-2x32",
];

fn filled_directory(spec: &str) -> (Box<dyn Directory>, Vec<LineAddr>) {
    let mut dir = standard_registry().build_str(spec).expect("valid spec");
    let mut rng = SplitMix64::new(42);
    let mut out = Outcome::new();
    let mut lines = Vec::new();
    let target = dir.capacity() / 2;
    while dir.len() < target {
        let line = LineAddr::from_block_number(rng.next_u64() >> 22);
        let cache = CacheId::new(rng.next_below(32) as u32);
        dir.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
        lines.push(line);
    }
    (dir, lines)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dir_lookup");
    for &spec in SPECS {
        let (mut dir, lines) = filled_directory(spec);
        let mut out = Outcome::new();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("probe", spec), |b| {
            b.iter(|| {
                i = (i + 1) % lines.len();
                dir.apply(DirectoryOp::Probe { line: lines[i] }, &mut out);
                out.sharers().len()
            });
        });
        group.bench_function(BenchmarkId::new("sharers_alloc", spec), |b| {
            b.iter(|| {
                i = (i + 1) % lines.len();
                std::hint::black_box(dir.sharers(lines[i]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
