//! Criterion micro-benchmark: sharer-lookup throughput of each directory
//! organization at 50% occupancy.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{CacheId, LineAddr};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use ccd_directory::Directory;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn filled_directory(spec: &DirectorySpec) -> (Box<dyn Directory>, Vec<LineAddr>) {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let mut dir = spec.build_slice(&system).expect("valid spec");
    let mut rng = SplitMix64::new(42);
    let mut lines = Vec::new();
    let target = dir.capacity() / 2;
    while dir.len() < target {
        let line = LineAddr::from_block_number(rng.next_u64() >> 22);
        dir.add_sharer(line, CacheId::new((rng.next_below(32)) as u32));
        lines.push(line);
    }
    (dir, lines)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dir_lookup");
    let specs = [
        ("cuckoo-4x512", DirectorySpec::cuckoo(4, 1.0)),
        ("sparse-8x-2x", DirectorySpec::sparse(8, 2.0)),
        ("skewed-4x-2x", DirectorySpec::skewed(4, 2.0)),
        ("duplicate-tag", DirectorySpec::DuplicateTag),
        ("tagless", DirectorySpec::tagless()),
    ];
    for (name, spec) in specs {
        let (dir, lines) = filled_directory(&spec);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                i = (i + 1) % lines.len();
                std::hint::black_box(dir.sharers(lines[i]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
