//! Criterion micro-benchmark: end-to-end simulator throughput (references
//! processed per second) for the main directory organizations.

use ccd_coherence::{CmpSimulator, DirectorySpec, Hierarchy, SystemConfig};
use ccd_workloads::{TraceGenerator, WorkloadProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence_step");
    group.throughput(Throughput::Elements(1));
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let specs = [
        ("cuckoo", DirectorySpec::cuckoo(4, 1.0)),
        ("sparse-8x", DirectorySpec::sparse(8, 8.0)),
        ("duplicate-tag", DirectorySpec::DuplicateTag),
    ];
    for (name, spec) in specs {
        let mut sim = CmpSimulator::new(system.clone(), &spec).expect("valid config");
        let mut trace = TraceGenerator::new(WorkloadProfile::oracle(), system.num_cores, 1);
        // Warm the caches so the steady-state mix of hits and misses is
        // benchmarked rather than the cold-start flood of insertions.
        sim.run(&mut trace, 200_000);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let r = trace.next_ref();
                sim.process(r);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
