//! Criterion micro-benchmark: entry insertion + removal throughput of each
//! directory organization at steady 50% occupancy.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{CacheId, LineAddr};
use ccd_coherence::{DirectorySpec, Hierarchy, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::VecDeque;

fn bench_insert(c: &mut Criterion) {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let mut group = c.benchmark_group("dir_insert_remove");
    let specs = [
        ("cuckoo-4x512", DirectorySpec::cuckoo(4, 1.0)),
        ("sparse-8x-2x", DirectorySpec::sparse(8, 2.0)),
        ("skewed-4x-2x", DirectorySpec::skewed(4, 2.0)),
        ("duplicate-tag", DirectorySpec::DuplicateTag),
    ];
    for (name, spec) in specs {
        let mut dir = spec.build_slice(&system).expect("valid spec");
        let mut rng = SplitMix64::new(7);
        let cache = CacheId::new(0);
        // Pre-fill to 50% and keep a FIFO of resident lines so the benchmark
        // body inserts one new entry and retires the oldest, holding
        // occupancy constant.
        let mut resident: VecDeque<LineAddr> = VecDeque::new();
        while dir.len() < dir.capacity() / 2 {
            let line = LineAddr::from_block_number(rng.next_u64() >> 22);
            dir.add_sharer(line, cache);
            resident.push_back(line);
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let line = LineAddr::from_block_number(rng.next_u64() >> 22);
                dir.add_sharer(line, cache);
                resident.push_back(line);
                if let Some(old) = resident.pop_front() {
                    dir.remove_sharer(old, cache);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
