//! Criterion micro-benchmark: entry insertion + removal throughput of each
//! directory organization at steady 50% occupancy, on the zero-allocation
//! `apply` path with a reused `Outcome` buffer.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{CacheId, LineAddr};
use ccd_cuckoo::standard_registry;
use ccd_directory::{DirectoryOp, Outcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::VecDeque;

/// The paper's Shared-L2 slice geometries (1x cuckoo, 2x sparse/skewed, the
/// mirrored duplicate-tag), as runtime spec strings.
const SPECS: &[&str] = &[
    "cuckoo-4x512-skew",
    "sparse-8x512",
    "skewed-4x1024",
    "duplicate-tag-2x32",
];

fn bench_insert(c: &mut Criterion) {
    let registry = standard_registry();
    let mut group = c.benchmark_group("dir_insert_remove");
    for &spec in SPECS {
        let mut dir = registry.build_str(spec).expect("valid spec");
        let mut rng = SplitMix64::new(7);
        let cache = CacheId::new(0);
        let mut out = Outcome::new();
        // Pre-fill to 50% and keep a FIFO of resident lines so the benchmark
        // body inserts one new entry and retires the oldest, holding
        // occupancy constant.
        let mut resident: VecDeque<LineAddr> = VecDeque::new();
        while dir.len() < dir.capacity() / 2 {
            let line = LineAddr::from_block_number(rng.next_u64() >> 22);
            dir.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
            resident.push_back(line);
        }
        group.bench_function(BenchmarkId::from_parameter(spec), |b| {
            b.iter(|| {
                let line = LineAddr::from_block_number(rng.next_u64() >> 22);
                dir.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
                resident.push_back(line);
                if let Some(old) = resident.pop_front() {
                    dir.apply(DirectoryOp::RemoveSharer { line: old, cache }, &mut out);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
