//! Criterion micro-benchmark: cuckoo-table insertion cost as a function of
//! occupancy (the displacement chains get longer as the table fills).

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_cuckoo::CuckooTable;
use ccd_hash::HashKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::VecDeque;

fn bench_occupancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo_insert_by_occupancy");
    for occupancy_percent in [25u32, 50, 75, 90] {
        let mut table: CuckooTable<()> =
            CuckooTable::new(4, 8192, HashKind::Skewing, 3).expect("valid");
        let mut rng = SplitMix64::new(11);
        let target = table.capacity() * occupancy_percent as usize / 100;
        let mut resident: VecDeque<u64> = VecDeque::new();
        while table.len() < target {
            let key = rng.next_u64() >> 22;
            if table.insert(key, ()).succeeded() {
                resident.push_back(key);
            }
        }
        group.bench_function(BenchmarkId::from_parameter(occupancy_percent), |b| {
            b.iter(|| {
                let key = rng.next_u64() >> 22;
                let outcome = table.insert(key, ());
                resident.push_back(key);
                if let Some((lost, _)) = outcome.discarded {
                    resident.retain(|&k| k != lost);
                }
                // Retire the oldest resident key to hold occupancy constant.
                if let Some(old) = resident.pop_front() {
                    table.remove(old);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_occupancy);
criterion_main!(benches);
