//! Criterion micro-benchmark: add/remove/invalidation-target operations on
//! each sharer-set representation at 1024 caches.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::CacheId;
use ccd_sharers::{CoarseVector, FullBitVector, HierarchicalVector, LimitedPointer, SharerSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const CACHES: usize = 1024;

fn bench_format<S: SharerSet>(c: &mut Criterion, name: &str) {
    let mut group = c.benchmark_group(format!("sharers_{name}"));
    let mut rng = SplitMix64::new(5);

    group.bench_function(BenchmarkId::new("add_remove", CACHES), |b| {
        let mut set = S::new(CACHES);
        b.iter(|| {
            let cache = CacheId::new(rng.next_below(CACHES as u64) as u32);
            set.add(cache);
            set.remove(cache);
        });
    });

    group.bench_function(BenchmarkId::new("invalidation_targets", CACHES), |b| {
        let mut set = S::new(CACHES);
        for i in (0..CACHES as u32).step_by(37) {
            set.add(CacheId::new(i));
        }
        b.iter(|| std::hint::black_box(set.invalidation_targets()));
    });
    group.finish();
}

fn bench_sharers(c: &mut Criterion) {
    bench_format::<FullBitVector>(c, "full_vector");
    bench_format::<CoarseVector>(c, "coarse");
    bench_format::<HierarchicalVector>(c, "hierarchical");
    bench_format::<LimitedPointer>(c, "limited_pointer");
}

criterion_group!(benches, bench_sharers);
criterion_main!(benches);
