//! Criterion micro-benchmark: multi-slice (sharded) directory scaling.
//!
//! Sweeps the slice count of an address-interleaved Cuckoo directory at
//! constant total capacity and measures per-operation cost of a mixed
//! add/remove/probe stream on the `apply` path.  This tracks the overhead
//! of the `ShardedDirectory` routing layer (the NUCA/multi-slice scenario):
//! the slice count should change per-op cost only marginally, while each
//! slice's working set shrinks.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{CacheId, LineAddr};
use ccd_cuckoo::standard_registry;
use ccd_directory::{DirectoryOp, Outcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Total capacity 16384 entries, split over 1..=16 slices.
const SLICE_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

fn bench_sharded(c: &mut Criterion) {
    let registry = standard_registry();
    let mut group = c.benchmark_group("sharded_scaling");
    group.throughput(Throughput::Elements(1));
    for &slices in SLICE_COUNTS {
        let spec = if slices == 1 {
            "cuckoo-4x4096-skew".to_string()
        } else {
            format!("sharded{slices}:cuckoo-4x4096-skew")
        };
        let mut dir = registry.build_str(&spec).expect("valid spec");
        let mut rng = SplitMix64::new(0x5CA1E);
        let mut out = Outcome::new();
        // Warm to 50% occupancy.
        let target = dir.capacity() / 2;
        let mut resident = Vec::new();
        while dir.len() < target {
            let line = LineAddr::from_block_number(rng.next_u64() >> 22);
            let cache = CacheId::new(rng.next_below(32) as u32);
            dir.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
            resident.push(line);
        }
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(slices), |b| {
            b.iter(|| {
                i = (i + 1) % resident.len();
                let line = resident[i];
                let cache = CacheId::new((i % 32) as u32);
                // Mixed stream: probe, add, remove — the simulator's steady
                // state per miss.
                dir.apply(DirectoryOp::Probe { line }, &mut out);
                dir.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
                dir.apply(DirectoryOp::RemoveSharer { line, cache }, &mut out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
