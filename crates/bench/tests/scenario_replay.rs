//! Record→replay fidelity and scenario-sweep determinism.
//!
//! The contract the workload subsystem makes: a recorded trace replayed
//! through the simulator produces a `SimReport` **byte-identical** to the
//! live generation it was recorded from — serially, in parallel, and when
//! the replay rides the sweep harness's workload axis.

use ccd_bench::{ParallelRunner, RunScale, SweepSpec};
use ccd_coherence::{DirectorySpec, SimJob, SystemConfig};
use ccd_workloads::{record_trace, WorkloadSpec};
use std::path::PathBuf;

fn temp_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ccd-scenario-replay-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn live_job(workload: &str, spec: DirectorySpec) -> SimJob {
    SimJob {
        system: SystemConfig::shared_l2(4),
        spec,
        workload: workload.parse().expect("valid workload spec"),
        seed: 0xFEED,
        warmup_refs: 20_000,
        measure_refs: 20_000,
    }
}

/// Records the exact reference window a job consumes and returns the
/// replay twin of the job.
fn record_twin(job: &SimJob, file: &str) -> SimJob {
    let path = temp_trace(file);
    let stream = job
        .workload
        .stream(job.system.num_cores, job.seed)
        .expect("live stream builds");
    let written = record_trace(
        &path,
        job.system.num_cores as u32,
        stream,
        job.warmup_refs + job.measure_refs,
    )
    .expect("recording succeeds");
    assert_eq!(written, job.warmup_refs + job.measure_refs);
    SimJob {
        workload: WorkloadSpec::replay(path.to_string_lossy()),
        ..job.clone()
    }
}

#[test]
fn replayed_traces_reproduce_live_reports_byte_identically() {
    // One scenario family and one paper profile, across two organizations:
    // the recording must be a perfect stand-in for the generator.
    for (workload, file) in [
        ("migratory-b512-zipf0.8", "migratory.ccdt"),
        ("oracle", "oracle.ccdt"),
    ] {
        for spec in [DirectorySpec::cuckoo(4, 1.0), DirectorySpec::sparse(8, 2.0)] {
            let live = live_job(workload, spec);
            let replay = record_twin(&live, file);

            let live_report = live.run().expect("live job runs");

            // Serial and parallel replay runs are both byte-identical to
            // the live generation (SimReport's derived PartialEq covers
            // every counter, histogram bucket and float bit).
            let serial = ParallelRunner::serial()
                .run_jobs(std::slice::from_ref(&replay))
                .expect("serial replay runs");
            let parallel = ParallelRunner::with_workers(4)
                .run_jobs(&[replay.clone(), replay.clone()])
                .expect("parallel replay runs");
            assert_eq!(serial[0], live_report, "{workload}: serial replay");
            assert_eq!(parallel[0], live_report, "{workload}: parallel replay");
            assert_eq!(parallel[1], live_report, "{workload}: replay is repeatable");
        }
    }
}

#[test]
fn replay_rides_the_sweep_workload_axis() {
    // Record one migratory window, then cross the *same* trace with two
    // organizations through the sweep harness: both cells replay the
    // identical stream, so their reference counts match exactly and the
    // run is schedule-independent.  The recording must cover the sweep's
    // full warm-up + measure window — SimJob::validate rejects shorter
    // recordings rather than truncating (asserted below).
    let system = SystemConfig::shared_l2(4);
    let scale = RunScale::quick();
    let sweep_refs = scale.warmup_refs(&system) + scale.measure_refs(&system);
    let mut probe = live_job("migratory-b512", DirectorySpec::cuckoo(4, 1.0));
    probe.warmup_refs = scale.warmup_refs(&system);
    probe.measure_refs = scale.measure_refs(&system);
    let twin = record_twin(&probe, "sweep-axis.ccdt");
    let path = match &twin.workload {
        WorkloadSpec::Replay { path } => path.clone(),
        other => panic!("expected replay twin, got {other:?}"),
    };

    // A job demanding more references than the recording holds fails
    // validation up front instead of silently truncating its measurement.
    let mut short = twin.clone();
    short.measure_refs = sweep_refs; // total now exceeds the recording
    assert!(short.validate().is_err(), "short recordings are rejected");

    let sweep = SweepSpec::new("replay sweep")
        .system("Shared-L2", system)
        .org("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0))
        .org("Sparse 2x", DirectorySpec::sparse(8, 2.0))
        .workload_str(&format!("replay:{path}"))
        .expect("replay spec parses")
        .scale(RunScale::quick());

    let serial = sweep.run_with(&ParallelRunner::serial()).expect("serial");
    let parallel = sweep
        .run_with(&ParallelRunner::with_workers(8))
        .expect("parallel");
    assert_eq!(serial.cells.len(), 2);
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.report, p.report, "schedule independence");
        assert_eq!(s.workload, format!("replay:{path}"), "axis label");
    }
    // Both organizations consumed the identical recorded stream.
    assert_eq!(
        serial.cells[0].report.refs_processed,
        serial.cells[1].report.refs_processed
    );
}

#[test]
fn scenario_sweeps_are_schedule_independent() {
    let sweep = SweepSpec::new("scenario determinism")
        .system("Shared-L2", SystemConfig::shared_l2(4))
        .org("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0))
        .org("Skewed 2x", DirectorySpec::skewed(4, 2.0))
        .workload_str("readmostly-b1024")
        .unwrap()
        .workload_str("prodcons-b256-e32")
        .unwrap()
        .workload_str("falseshare")
        .unwrap()
        .workload_str("stream-b2048")
        .unwrap()
        .seeds([0, 1])
        .scale(RunScale::quick());

    let serial = sweep.run_with(&ParallelRunner::serial()).expect("serial");
    let parallel = sweep
        .run_with(&ParallelRunner::with_workers(8))
        .expect("parallel");
    assert_eq!(serial.cells.len(), 2 * 4 * 2);
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.org, p.org);
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.trace_seed, p.trace_seed);
        assert_eq!(s.report, p.report, "{}/{}", s.org, s.workload);
    }
    // Competing organizations stay trace-paired on the scenario axis too.
    for cell in &serial.cells {
        let twin = serial
            .cells
            .iter()
            .find(|c| c.org != cell.org && c.workload == cell.workload && c.seed == cell.seed)
            .expect("other org at the same point");
        assert_eq!(cell.trace_seed, twin.trace_seed);
    }
}
