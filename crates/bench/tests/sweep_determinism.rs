//! Property test: a parallel sweep is indistinguishable from a serial one.
//!
//! For randomly generated sweep specifications — always spanning at least
//! two directory organizations — the parallel runner must produce
//! [`SimReport`]s *identical* (full structural equality, histograms and
//! accumulated floats included) to a single-worker serial run with the same
//! seeds.  This is the load-bearing property behind the byte-identical
//! fig7/fig10/fig11 outputs and the CI golden files.

use ccd_bench::{ParallelRunner, RunScale, SweepSpec};
use ccd_coherence::{DirectorySpec, SystemConfig};
use ccd_common::rng::{Rng64, SplitMix64};
use ccd_workloads::WorkloadProfile;

/// The organization pool random sweeps draw from.
fn org_pool() -> Vec<(&'static str, DirectorySpec)> {
    vec![
        ("Cuckoo 1x", DirectorySpec::cuckoo(4, 1.0)),
        ("Cuckoo 3-way 1.5x", DirectorySpec::cuckoo(3, 1.5)),
        ("Sparse 2x", DirectorySpec::sparse(8, 2.0)),
        ("Skewed 2x", DirectorySpec::skewed(4, 2.0)),
        ("Duplicate-Tag", DirectorySpec::DuplicateTag),
    ]
}

fn random_sweep(rng: &mut SplitMix64, case: usize) -> SweepSpec {
    let orgs = org_pool();
    let workloads = WorkloadProfile::all_paper_workloads();

    // At least two organizations per sweep, random beyond that.
    let num_orgs = 2 + (rng.next_u64() % (orgs.len() as u64 - 1)) as usize;
    let first_org = (rng.next_u64() % orgs.len() as u64) as usize;
    let num_workloads = 1 + (rng.next_u64() % 3) as usize;
    let first_workload = (rng.next_u64() % workloads.len() as u64) as usize;
    let num_seeds = 1 + (rng.next_u64() % 3) as usize;

    let mut sweep = SweepSpec::new(format!("property case {case}"))
        .system("Shared-L2 (small)", SystemConfig::shared_l2(4))
        .seeds((0..num_seeds as u64).map(|i| rng.next_u64() ^ i))
        .scale(RunScale::quick())
        .base_seed(rng.next_u64());
    for i in 0..num_orgs {
        let (label, spec) = &orgs[(first_org + i) % orgs.len()];
        sweep = sweep.org(*label, spec.clone());
    }
    for i in 0..num_workloads {
        sweep = sweep.workload(workloads[(first_workload + i) % workloads.len()].clone());
    }
    sweep
}

#[test]
fn parallel_sweeps_reproduce_serial_reports_exactly() {
    let mut rng = SplitMix64::new(0x5EED_CA5E);
    for case in 0..6 {
        let sweep = random_sweep(&mut rng, case);
        assert!(sweep.orgs.len() >= 2, "property requires ≥ 2 organizations");

        let serial = sweep
            .run_with(&ParallelRunner::serial())
            .expect("serial run");
        let parallel = sweep
            .run_with(&ParallelRunner::with_workers(8))
            .expect("parallel run");

        assert_eq!(serial.cells.len(), sweep.len(), "case {case}");
        assert_eq!(serial.cells.len(), parallel.cells.len(), "case {case}");
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                (&s.system, &s.org, &s.workload, s.seed, s.trace_seed),
                (&p.system, &p.org, &p.workload, p.seed, p.trace_seed),
                "cell keys must line up in axis order (case {case})"
            );
            // Full structural equality: every counter, histogram bucket and
            // accumulated float — not just summary statistics.
            assert_eq!(
                s.report, p.report,
                "case {case}: {}/{}/{} seed {}",
                s.system, s.org, s.workload, s.seed
            );
        }
    }
}

#[test]
fn rerunning_the_same_sweep_is_reproducible_across_runner_shapes() {
    // The same spec re-run with a different (but >1) worker count must also
    // match — scheduling is not allowed to leak into results.
    let mut rng = SplitMix64::new(7);
    let sweep = random_sweep(&mut rng, 99);
    let two = sweep.run_with(&ParallelRunner::with_workers(2)).unwrap();
    let many = sweep.run_with(&ParallelRunner::with_workers(16)).unwrap();
    for (a, b) in two.cells.iter().zip(&many.cells) {
        assert_eq!(a.report, b.report);
    }
}
