//! Software-prefetch hints for batched probe loops.
//!
//! A d-ary cuckoo probe touches `d` independent cache lines, and a batch of
//! probes touches `d × batch` of them; issuing prefetches for a window of
//! upcoming operations overlaps those misses instead of serializing them.
//! The hint is semantically a no-op — correctness never depends on it — so
//! on targets without a stable prefetch intrinsic it compiles to nothing.

/// Hints the CPU to bring the cache line containing `ptr` into the nearest
/// data-cache level for a future read.
///
/// Safe to call with any pointer value, including dangling or unaligned
/// pointers: prefetch instructions never fault and the pointee is never
/// dereferenced by this function.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    // Miri has no model for the prefetch intrinsic; the hint is a
    // semantic no-op anyway, so it simply disappears under `cfg(miri)`.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `_mm_prefetch` is a hint instruction; it performs no memory
    // access and cannot fault, regardless of the pointer's validity.
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr.cast::<i8>(), std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(any(not(target_arch = "x86_64"), miri))]
    {
        let _ = ptr;
    }
}

/// Prefetches element `index` of `slice` for a future read, if it exists.
///
/// Bounds-checked so callers can speculate on indices without care; an
/// out-of-range index simply skips the hint.
#[inline(always)]
pub fn prefetch_slice_element<T>(slice: &[T], index: usize) {
    if index < slice.len() {
        prefetch_read(&slice[index]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_semantic_noop() {
        let data = vec![1u64, 2, 3];
        prefetch_read(&data[0]);
        prefetch_slice_element(&data, 2);
        prefetch_slice_element(&data, 10_000); // out of range: skipped
        assert_eq!(data, vec![1, 2, 3]);
    }
}
