//! Strongly-typed identifiers for cores, caches and directory slices.
//!
//! The paper's system interleaves the directory across the tiles of the CMP
//! (Figure 2): each tile owns one L2 bank and one *directory slice*, and each
//! core owns one or two private caches (split I/D L1s in the Shared-L2
//! configuration, a unified private L2 in the Private-L2 configuration).
//!
//! Keeping the three identifier spaces as distinct types prevents the classic
//! "indexed the sharer vector with a tile id" class of bug.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $display:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates a new identifier from a raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u32`.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a processing core (tile) in the CMP.
    CoreId,
    "core"
);

id_type!(
    /// Identifier of one private cache tracked by the directory.
    ///
    /// In the Shared-L2 configuration each core contributes two caches
    /// (split I and D L1s); in the Private-L2 configuration each core
    /// contributes one (its private L2).  Sharer vectors are indexed by
    /// `CacheId`.
    CacheId,
    "cache"
);

id_type!(
    /// Identifier of an address-interleaved directory slice / L2 bank (tile).
    SliceId,
    "slice"
);

/// Helpers enumerating identifier ranges.
pub fn all_cores(count: usize) -> impl Iterator<Item = CoreId> {
    (0..count as u32).map(CoreId::new)
}

/// Enumerates `count` cache identifiers starting at zero.
pub fn all_caches(count: usize) -> impl Iterator<Item = CacheId> {
    (0..count as u32).map(CacheId::new)
}

/// Enumerates `count` slice identifiers starting at zero.
pub fn all_slices(count: usize) -> impl Iterator<Item = SliceId> {
    (0..count as u32).map(SliceId::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_and_display() {
        let c = CoreId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.raw(), 7);
        assert_eq!(format!("{c}"), "core7");
        assert_eq!(format!("{c:?}"), "core7");

        let k = CacheId::from(3usize);
        assert_eq!(usize::from(k), 3);
        assert_eq!(format!("{k}"), "cache3");

        let s = SliceId::from(11u32);
        assert_eq!(format!("{s}"), "slice11");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; at runtime we just make sure the
        // enumerators produce the expected ranges.
        let cores: Vec<_> = all_cores(4).collect();
        assert_eq!(cores.len(), 4);
        assert_eq!(cores[3], CoreId::new(3));

        let caches: HashSet<_> = all_caches(8).collect();
        assert_eq!(caches.len(), 8);

        let slices: Vec<_> = all_slices(2).collect();
        assert_eq!(slices, vec![SliceId::new(0), SliceId::new(1)]);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(CacheId::new(0) < CacheId::new(31));
    }
}
