//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in this workspace — the synthetic workload
//! generators, the random-value streams used to reproduce the hash
//! characterization of Figure 7, and the property-based test helpers — is
//! driven by the small, fully deterministic generators in this module, so
//! that every experiment is reproducible from a single seed.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit-state generator, primarily used for seed
//!   expansion and as a high-quality integer mixer,
//! * [`Xoshiro256`] — `xoshiro256**`, the workhorse generator used by the
//!   workload generators.
//!
//! Both implement the local [`Rng64`] trait, which offers the handful of
//! sampling primitives the simulators need (uniform ranges, floats,
//! Bernoulli draws and slice shuffles).

use std::fmt;

/// Minimal random-number-generator interface used throughout the workspace.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's nearly-divisionless method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only loop when low < bound and below threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniformly distributed value in the inclusive range
    /// `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    fn next_in_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "empty range");
        let span = high - low;
        if span == u64::MAX {
            self.next_u64()
        } else {
            low + self.next_below(span + 1)
        }
    }

    /// Shuffles `slice` in place with a Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.next_below(slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }
}

/// SplitMix64: a tiny, fast, statistically strong 64-bit generator.
///
/// Primarily used to expand a user-provided seed into the larger state of
/// [`Xoshiro256`] and as a standalone generator in unit tests.
///
/// ```
/// use ccd_common::rng::{Rng64, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl fmt::Debug for SplitMix64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SplitMix64 {{ state: {:#x} }}", self.state)
    }
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Applies the SplitMix64 finalizer to a single value.
    ///
    /// This is a high-quality 64-bit mixing function in its own right and is
    /// used by the "strong" hash functions of the `ccd-hash` crate.
    #[must_use]
    pub const fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256**` — the default generator for workload synthesis.
///
/// ```
/// use ccd_common::rng::{Rng64, Xoshiro256};
/// let mut rng = Xoshiro256::new(7);
/// let x = rng.next_below(100);
/// assert!(x < 100);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl fmt::Debug for Xoshiro256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Xoshiro256 {{ s: [{:#x}, {:#x}, {:#x}, {:#x}] }}",
            self.s[0], self.s[1], self.s[2], self.s[3]
        )
    }
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// [`SplitMix64`], as recommended by the xoshiro authors.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Guard against the (astronomically unlikely) all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Creates `n` statistically independent generators from one seed, one
    /// per simulated core.
    #[must_use]
    pub fn streams(seed: u64, n: usize) -> Vec<Self> {
        let mut sm = SplitMix64::new(seed);
        (0..n).map(|_| Xoshiro256::new(sm.next_u64())).collect()
    }
}

impl Rng64 for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(0xdead_beef);
        let mut b = SplitMix64::new(0xdead_beef);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the canonical SplitMix64
        // implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_streams_differ() {
        let streams = Xoshiro256::streams(1, 8);
        let firsts: Vec<u64> = streams.into_iter().map(|mut s| s.next_u64()).collect();
        for i in 0..firsts.len() {
            for j in (i + 1)..firsts.len() {
                assert_ne!(firsts[i], firsts[j]);
            }
        }
    }

    /// Full statistical coverage natively; a reduced round count under
    /// Miri, which interprets a few orders of magnitude slower.
    const fn rounds(native: usize) -> usize {
        if cfg!(miri) {
            native / 20
        } else {
            native
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::new(3);
        let mut seen = [false; 10];
        for _ in 0..rounds(10_000) {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(11);
        for _ in 0..rounds(10_000) {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_rate_is_close() {
        let mut rng = Xoshiro256::new(17);
        // The tolerance tracks the sample count (~7 standard errors).
        let (n, tol) = if cfg!(miri) {
            (2_000, 0.05)
        } else {
            (100_000, 0.01)
        };
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < tol, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SplitMix64::new(9);
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn next_in_range_inclusive_bounds() {
        let mut rng = Xoshiro256::new(31);
        for _ in 0..rounds(10_000) {
            let v = rng.next_in_range(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(rng.next_in_range(7, 7), 7);
    }
}
