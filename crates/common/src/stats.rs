//! Light-weight statistics primitives.
//!
//! The evaluation of the paper is entirely expressed in terms of counts and
//! distributions gathered while the directories run: insertion attempts
//! (Figures 7, 9, 10, 11), forced-invalidation rates (Figures 9, 12),
//! occupancy (Figure 8) and the event mix that weights the energy model
//! (footnote 1 of Section 5.6).  This module provides the counters,
//! histograms and running means those experiments are built from.

/// A saturating event counter.
///
/// ```
/// use ccd_common::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Merges another counter into this one (saturating), so per-worker
    /// counters can be reduced into one aggregate regardless of merge order.
    pub fn merge(&mut self, other: &Counter) {
        self.0 = self.0.saturating_add(other.0);
    }

    /// Returns this count as a fraction of `denom`, or 0 when `denom` is 0.
    #[must_use]
    pub fn fraction_of(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

/// An incremental FNV-1a digest over 64-bit words.
///
/// The workspace's determinism contracts are proven by folding observable
/// results (outcome records, recovery checkpoints) into one order-sensitive
/// fingerprint and comparing it across configurations: equal digests mean
/// bit-identical observable streams.  FNV-1a is used because it is tiny,
/// has no dependencies, and — critically — is fully specified here, so the
/// fingerprint can never drift with a standard-library hasher change (the
/// same reason the `no-default-hasher` lint rule exists).
///
/// ```
/// use ccd_common::stats::Fnv64;
/// let mut a = Fnv64::new();
/// a.fold(1).fold(2);
/// let mut b = Fnv64::new();
/// b.fold(2).fold(1);
/// assert_ne!(a.finish(), b.finish(), "the digest is order-sensitive");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// The FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a digest at the offset basis.
    #[must_use]
    pub const fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Folds one 64-bit word into the digest, byte by byte in little-endian
    /// order, returning `self` for chaining.
    pub fn fold(&mut self, value: u64) -> &mut Self {
        let mut hash = self.0;
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.0 = hash;
        self
    }

    /// The current digest value.
    #[must_use]
    pub const fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A bounded histogram of small non-negative integer observations.
///
/// Observations larger than the configured bound are accumulated in the
/// overflow bucket (the last bucket), matching how the paper caps insertion
/// attempts at 32 and counts longer chains as 32 (Section 5.2).
///
/// ```
/// use ccd_common::stats::Histogram;
/// let mut h = Histogram::new(32);
/// h.record(1);
/// h.record(1);
/// h.record(40); // clamped into the overflow bucket
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.count(32), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..=max_value`; larger observations
    /// are clamped into the `max_value` bucket.
    #[must_use]
    pub fn new(max_value: usize) -> Self {
        Histogram {
            buckets: vec![0; max_value + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        let clamped = (value as usize).min(self.buckets.len() - 1);
        self.buckets[clamped] += 1;
        self.total += 1;
        self.sum += clamped as u64;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let clamped = (value as usize).min(self.buckets.len() - 1);
        self.buckets[clamped] += n;
        self.total += n;
        self.sum += clamped as u64 * n;
    }

    /// Number of observations equal to `value` (clamped).
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        let clamped = (value as usize).min(self.buckets.len() - 1);
        self.buckets[clamped]
    }

    /// Total number of observations.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Largest representable bucket value (the overflow bucket).
    #[must_use]
    pub fn max_value(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    /// Mean of the recorded (clamped) observations; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of observations equal to `value`; 0 when empty.
    #[must_use]
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations at or above `value`; 0 when empty.
    #[must_use]
    pub fn fraction_at_least(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let start = (value as usize).min(self.buckets.len() - 1);
        let count: u64 = self.buckets[start..].iter().sum();
        count as f64 / self.total as f64
    }

    /// The smallest value `v` such that at least `q` (0..=1) of the
    /// observations are `<= v`. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (value, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return value as u64;
            }
        }
        self.max_value()
    }

    /// Iterates over `(value, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Resets all buckets to zero.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
        self.sum = 0;
    }
}

/// Incremental mean/min/max accumulator over `f64` samples.
///
/// Used for averaging occupancy over the course of a simulation (Figure 8).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanAccumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub const fn new() -> Self {
        MeanAccumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanAccumulator) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A numerator/denominator pair reported as a rate.
///
/// Forced-invalidation rates in the paper are reported as *invalidations per
/// directory-entry insertion* (Figure 12); this type keeps the two counts
/// together so the rate can never be computed against the wrong denominator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RateEstimator {
    events: u64,
    opportunities: u64,
}

impl RateEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub const fn new() -> Self {
        RateEstimator {
            events: 0,
            opportunities: 0,
        }
    }

    /// Records one opportunity during which the event did not occur.
    pub fn record_miss(&mut self) {
        self.opportunities += 1;
    }

    /// Records one opportunity during which the event occurred `events`
    /// times (e.g. a directory insertion that forced two invalidations).
    pub fn record_hit(&mut self, events: u64) {
        self.opportunities += 1;
        self.events += events;
    }

    /// Adds raw counts.
    pub fn add(&mut self, events: u64, opportunities: u64) {
        self.events += events;
        self.opportunities += opportunities;
    }

    /// Number of events observed.
    #[must_use]
    pub const fn events(&self) -> u64 {
        self.events
    }

    /// Number of opportunities observed.
    #[must_use]
    pub const fn opportunities(&self) -> u64 {
        self.opportunities
    }

    /// The event rate (events per opportunity); 0 when no opportunities.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.events as f64 / self.opportunities as f64
        }
    }

    /// The rate expressed as a percentage.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.rate() * 100.0
    }

    /// Merges another estimator into this one.
    pub fn merge(&mut self, other: &RateEstimator) {
        self.events += other.events;
        self.opportunities += other.opportunities;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn fnv64_matches_the_reference_vectors_and_is_order_sensitive() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), Fnv64::OFFSET);
        assert_eq!(Fnv64::default(), Fnv64::new());

        // One zero word: eight zero bytes, each multiplying by the prime.
        let mut expected = Fnv64::OFFSET;
        for _ in 0..8 {
            expected = expected.wrapping_mul(Fnv64::PRIME);
        }
        let mut digest = Fnv64::new();
        digest.fold(0);
        assert_eq!(digest.finish(), expected);

        let mut ab = Fnv64::new();
        ab.fold(0xa).fold(0xb);
        let mut ba = Fnv64::new();
        ba.fold(0xb).fold(0xa);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_merge_is_order_independent_and_saturates() {
        let mut a = Counter::new();
        let mut b = Counter::new();
        a.add(7);
        b.add(35);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.get(), 42);
        assert_eq!(ab, ba, "merge must commute");

        // Merging an untouched counter is the identity.
        let empty = Counter::new();
        ab.merge(&empty);
        assert_eq!(ab.get(), 42);
        let mut from_empty = Counter::new();
        from_empty.merge(&ab);
        assert_eq!(from_empty.get(), 42);

        // Overflow-adjacent: sums past u64::MAX saturate instead of wrapping.
        let mut near_max = Counter::new();
        near_max.add(u64::MAX - 1);
        let mut two = Counter::new();
        two.add(2);
        near_max.merge(&two);
        assert_eq!(near_max.get(), u64::MAX);
        near_max.merge(&two);
        assert_eq!(near_max.get(), u64::MAX, "saturated counters stay put");
    }

    #[test]
    fn mean_accumulator_merge_empty_and_extreme_cases() {
        // empty ← empty stays empty (no spurious min/max/count).
        let mut empty = MeanAccumulator::new();
        empty.merge(&MeanAccumulator::new());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);

        // empty ← populated adopts the other side's samples exactly.
        let mut filled = MeanAccumulator::new();
        filled.record(2.0);
        filled.record(4.0);
        let mut target = MeanAccumulator::new();
        target.merge(&filled);
        assert_eq!(target.count(), 2);
        assert!((target.mean() - 3.0).abs() < 1e-12);
        assert_eq!(target.min(), Some(2.0));
        assert_eq!(target.max(), Some(4.0));

        // Merge commutes: (a ⊎ b) == (b ⊎ a) on all observable fields.
        let mut a = MeanAccumulator::new();
        a.record(-1.0);
        a.record(5.0);
        let mut b = MeanAccumulator::new();
        b.record(0.25);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        assert_eq!(ab.min(), Some(-1.0));
        assert_eq!(ab.max(), Some(5.0));

        // Overflow-adjacent sample magnitudes survive the merge as f64s.
        let mut huge = MeanAccumulator::new();
        huge.record(f64::MAX / 2.0);
        let mut other = MeanAccumulator::new();
        other.record(f64::MAX / 2.0);
        huge.merge(&other);
        assert!(huge.mean().is_finite());
        assert!((huge.mean() - f64::MAX / 2.0).abs() < f64::MAX * 1e-10);
    }

    #[test]
    fn histogram_records_and_clamps() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(2);
        h.record(2);
        h.record(9); // clamped to 4
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(100), 1); // query also clamps
        assert!((h.mean() - (2 + 2 + 4) as f64 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_fractions_and_quantiles() {
        let mut h = Histogram::new(10);
        for v in [1u64, 1, 1, 2, 2, 5, 10, 10, 10, 10] {
            h.record(v);
        }
        assert!((h.fraction(1) - 0.3).abs() < 1e-12);
        assert!((h.fraction_at_least(5) - 0.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.3), 1);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 10);
    }

    #[test]
    fn histogram_merge_and_reset() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record_n(3, 5);
        b.record_n(3, 2);
        b.record(8);
        a.merge(&b);
        assert_eq!(a.count(3), 7);
        assert_eq!(a.count(8), 1);
        assert_eq!(a.total(), 8);
        a.reset();
        assert_eq!(a.total(), 0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_requires_same_shape() {
        let mut a = Histogram::new(4);
        let b = Histogram::new(8);
        a.merge(&b);
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction(2), 0.0);
        assert_eq!(h.fraction_at_least(0), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn mean_accumulator_tracks_extremes() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        for x in [1.0, 2.0, 3.0, 10.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 4.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(10.0));

        let mut other = MeanAccumulator::new();
        other.record(0.5);
        m.merge(&other);
        assert_eq!(m.count(), 5);
        assert_eq!(m.min(), Some(0.5));

        let empty = MeanAccumulator::new();
        m.merge(&empty);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn rate_estimator_rates() {
        let mut r = RateEstimator::new();
        assert_eq!(r.rate(), 0.0);
        r.record_miss();
        r.record_miss();
        r.record_hit(1);
        r.record_hit(3);
        assert_eq!(r.events(), 4);
        assert_eq!(r.opportunities(), 4);
        assert!((r.rate() - 1.0).abs() < 1e-12);
        assert!((r.percent() - 100.0).abs() < 1e-12);

        let mut s = RateEstimator::new();
        s.add(1, 96);
        r.merge(&s);
        assert_eq!(r.opportunities(), 100);
        assert!((r.rate() - 0.05).abs() < 1e-12);
    }
}
