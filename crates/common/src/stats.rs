//! Light-weight statistics primitives.
//!
//! The evaluation of the paper is entirely expressed in terms of counts and
//! distributions gathered while the directories run: insertion attempts
//! (Figures 7, 9, 10, 11), forced-invalidation rates (Figures 9, 12),
//! occupancy (Figure 8) and the event mix that weights the energy model
//! (footnote 1 of Section 5.6).  This module provides the counters,
//! histograms and running means those experiments are built from.

/// A saturating event counter.
///
/// ```
/// use ccd_common::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Merges another counter into this one (saturating), so per-worker
    /// counters can be reduced into one aggregate regardless of merge order.
    pub fn merge(&mut self, other: &Counter) {
        self.0 = self.0.saturating_add(other.0);
    }

    /// Returns this count as a fraction of `denom`, or 0 when `denom` is 0.
    #[must_use]
    pub fn fraction_of(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

/// An incremental FNV-1a digest over 64-bit words.
///
/// The workspace's determinism contracts are proven by folding observable
/// results (outcome records, recovery checkpoints) into one order-sensitive
/// fingerprint and comparing it across configurations: equal digests mean
/// bit-identical observable streams.  FNV-1a is used because it is tiny,
/// has no dependencies, and — critically — is fully specified here, so the
/// fingerprint can never drift with a standard-library hasher change (the
/// same reason the `no-default-hasher` lint rule exists).
///
/// ```
/// use ccd_common::stats::Fnv64;
/// let mut a = Fnv64::new();
/// a.fold(1).fold(2);
/// let mut b = Fnv64::new();
/// b.fold(2).fold(1);
/// assert_ne!(a.finish(), b.finish(), "the digest is order-sensitive");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// The FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a digest at the offset basis.
    #[must_use]
    pub const fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Folds one 64-bit word into the digest, byte by byte in little-endian
    /// order, returning `self` for chaining.
    pub fn fold(&mut self, value: u64) -> &mut Self {
        let mut hash = self.0;
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.0 = hash;
        self
    }

    /// The current digest value.
    #[must_use]
    pub const fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Two statistics containers have incompatible shapes for merging.
///
/// Returned by the `try_merge` fallible variants so callers that reduce
/// per-worker statistics can surface a configuration bug as an error
/// instead of a panic deep inside the merge loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeError {
    message: String,
}

impl MergeError {
    fn new(message: String) -> Self {
        MergeError { message }
    }

    /// Human-readable description of the shape mismatch.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl core::fmt::Display for MergeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MergeError {}

/// A bounded histogram of small non-negative integer observations.
///
/// Observations larger than the configured bound are accumulated in the
/// overflow bucket (the last bucket), matching how the paper caps insertion
/// attempts at 32 and counts longer chains as 32 (Section 5.2).
///
/// ```
/// use ccd_common::stats::Histogram;
/// let mut h = Histogram::new(32);
/// h.record(1);
/// h.record(1);
/// h.record(40); // clamped into the overflow bucket
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.count(32), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..=max_value`; larger observations
    /// are clamped into the `max_value` bucket.
    #[must_use]
    pub fn new(max_value: usize) -> Self {
        Histogram {
            buckets: vec![0; max_value + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` (saturating, like [`Counter`]).
    pub fn record_n(&mut self, value: u64, n: u64) {
        let clamped = (value as usize).min(self.buckets.len() - 1);
        self.buckets[clamped] = self.buckets[clamped].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add((clamped as u64).saturating_mul(n));
    }

    /// Number of observations equal to `value` (clamped).
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        let clamped = (value as usize).min(self.buckets.len() - 1);
        self.buckets[clamped]
    }

    /// Total number of observations.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Largest representable bucket value (the overflow bucket).
    #[must_use]
    pub fn max_value(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    /// Mean of the recorded (clamped) observations; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of observations equal to `value`; 0 when empty.
    #[must_use]
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations at or above `value`; 0 when empty.
    #[must_use]
    pub fn fraction_at_least(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let start = (value as usize).min(self.buckets.len() - 1);
        let count: u64 = self.buckets[start..].iter().sum();
        count as f64 / self.total as f64
    }

    /// The smallest value `v` such that at least `q` (0..=1) of the
    /// observations are `<= v`. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (value, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return value as u64;
            }
        }
        self.max_value()
    }

    /// Iterates over `(value, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bucket counts; use
    /// [`Histogram::try_merge`] to handle the mismatch as an error.
    pub fn merge(&mut self, other: &Histogram) {
        if let Err(err) = self.try_merge(other) {
            panic!("cannot merge histograms with different bounds: {err}");
        }
    }

    /// Merges another histogram into this one, reporting a bound mismatch
    /// as a [`MergeError`] instead of panicking.
    ///
    /// On error `self` is left untouched.  Bucket counts saturate like
    /// [`Counter`], so the reduction is order-independent even at the
    /// `u64` ceiling.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] when the histograms have different bounds.
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.buckets.len() != other.buckets.len() {
            return Err(MergeError::new(format!(
                "histogram bounds differ: 0..={} vs 0..={}",
                self.max_value(),
                other.max_value()
            )));
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        Ok(())
    }

    /// Resets all buckets to zero.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
        self.sum = 0;
    }
}

/// An HDR-style log-linear histogram over the full `u64` range.
///
/// Where [`Histogram`] holds one exact bucket per small integer value,
/// `LogHistogram` covers `0..=u64::MAX` with O(1) recording and a bounded
/// *relative* error: each power-of-two segment is split into
/// `2^sig_bits` linear sub-buckets, so any reported quantile is within a
/// factor of `2^-sig_bits` of the exact observation
/// ([`LogHistogram::relative_error`]).  This is the scheme popularised by
/// HdrHistogram for tail-latency accounting: `p999` of a billion samples
/// costs the same handful of index operations as `p50` of ten.
///
/// All counters saturate (like [`Counter`]), so merging per-worker
/// histograms is exact and order-independent: any permutation of merges
/// produces a bit-identical result.  `min`/`max` track the exact raw
/// observations, not bucket edges.
///
/// ```
/// use ccd_common::stats::LogHistogram;
/// let mut h = LogHistogram::new(2); // 2 significant bits: <= 25% error
/// for v in [1u64, 2, 3, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(1000));
/// assert_eq!(h.p50(), 2);
/// let p99 = h.p99() as f64;
/// assert!((p99 - 1000.0).abs() / 1000.0 <= h.relative_error());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    sig_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty histogram with `sig_bits` significant bits of
    /// value resolution (`1..=8`): quantiles are within `2^-sig_bits`
    /// relative error, and storage is `2^sig_bits * (65 - sig_bits)`
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `sig_bits` is outside `1..=8`.
    #[must_use]
    pub fn new(sig_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&sig_bits),
            "LogHistogram sig_bits must be in 1..=8, got {sig_bits}"
        );
        let buckets = (65 - sig_bits as usize) << sig_bits;
        LogHistogram {
            sig_bits,
            buckets: vec![0; buckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The configured resolution in significant bits.
    #[must_use]
    pub const fn sig_bits(&self) -> u32 {
        self.sig_bits
    }

    /// The worst-case relative error of any reported quantile:
    /// `2^-sig_bits`.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sig_bits) as f64
    }

    /// The bucket index holding `value`: exact for values below
    /// `2^sig_bits`, log-linear above (segment = position of the most
    /// significant bit, sub-bucket = the next `sig_bits` bits).
    fn bucket_index(&self, value: u64) -> usize {
        let b = self.sig_bits;
        if value < (1u64 << b) {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let seg = (msb - b + 1) as usize;
            let sub = ((value >> (msb - b)) ^ (1u64 << b)) as usize;
            (seg << b) + sub
        }
    }

    /// The largest value mapping into bucket `index` (its upper edge);
    /// quantiles report this, biasing *up* by at most `relative_error`.
    fn bucket_upper(&self, index: usize) -> u64 {
        let b = self.sig_bits;
        let seg = index >> b;
        let sub = (index & ((1usize << b) - 1)) as u64;
        if seg == 0 {
            sub
        } else {
            let low = ((1u64 << b) + sub) << (seg - 1);
            low + ((1u64 << (seg - 1)) - 1)
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` (saturating).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let index = self.bucket_index(value);
        self.buckets[index] = self.buckets[index].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations (saturating).
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when no observations have been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded observation (exact), or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded observation (exact), or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded observations; 0 when empty.  Exact until
    /// `sum` saturates.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value `v` such that at least `q` (`0..=1`) of the observations
    /// are `<= v`, within [`LogHistogram::relative_error`] of the exact
    /// order statistic (biased up, clamped to the recorded `max`).
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64)
            .max(1)
            .min(self.count);
        let mut cumulative = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(count);
            if cumulative >= target {
                return self.bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// The median ([`LogHistogram::quantile`] at 0.5).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Iterates over `(bucket upper edge, count)` for non-empty buckets,
    /// in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_upper(i), c))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ; use
    /// [`LogHistogram::try_merge`] to handle the mismatch as an error.
    pub fn merge(&mut self, other: &LogHistogram) {
        if let Err(err) = self.try_merge(other) {
            panic!("cannot merge log-histograms with different resolutions: {err}");
        }
    }

    /// Merges another histogram into this one, reporting a resolution
    /// mismatch as a [`MergeError`] instead of panicking.
    ///
    /// The merge is *exact* (bucket-by-bucket, saturating) and therefore
    /// order-independent: any permutation of a set of merges yields a
    /// bit-identical histogram.  On error `self` is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] when `sig_bits` differ.
    pub fn try_merge(&mut self, other: &LogHistogram) -> Result<(), MergeError> {
        if self.sig_bits != other.sig_bits {
            return Err(MergeError::new(format!(
                "log-histogram resolutions differ: {} vs {} significant bits",
                self.sig_bits, other.sig_bits
            )));
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Resets the histogram to empty, keeping the configured resolution.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

/// Incremental mean/min/max accumulator over `f64` samples.
///
/// Used for averaging occupancy over the course of a simulation (Figure 8).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanAccumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub const fn new() -> Self {
        MeanAccumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanAccumulator) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A numerator/denominator pair reported as a rate.
///
/// Forced-invalidation rates in the paper are reported as *invalidations per
/// directory-entry insertion* (Figure 12); this type keeps the two counts
/// together so the rate can never be computed against the wrong denominator.
///
/// ```
/// use ccd_common::stats::RateEstimator;
/// let mut r = RateEstimator::new();
/// r.record_miss();            // an insertion that forced nothing
/// r.record_hit(2);            // an insertion that forced two invalidations
/// assert_eq!(r.events(), 2);
/// assert_eq!(r.opportunities(), 2);
/// assert!((r.rate() - 1.0).abs() < 1e-12);
///
/// // Per-worker estimators reduce into one aggregate rate.
/// let mut other = RateEstimator::new();
/// other.add(0, 2);
/// r.merge(&other);
/// assert!((r.percent() - 50.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RateEstimator {
    events: u64,
    opportunities: u64,
}

impl RateEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub const fn new() -> Self {
        RateEstimator {
            events: 0,
            opportunities: 0,
        }
    }

    /// Records one opportunity during which the event did not occur.
    pub fn record_miss(&mut self) {
        self.opportunities += 1;
    }

    /// Records one opportunity during which the event occurred `events`
    /// times (e.g. a directory insertion that forced two invalidations).
    pub fn record_hit(&mut self, events: u64) {
        self.opportunities += 1;
        self.events += events;
    }

    /// Adds raw counts.
    pub fn add(&mut self, events: u64, opportunities: u64) {
        self.events += events;
        self.opportunities += opportunities;
    }

    /// Number of events observed.
    #[must_use]
    pub const fn events(&self) -> u64 {
        self.events
    }

    /// Number of opportunities observed.
    #[must_use]
    pub const fn opportunities(&self) -> u64 {
        self.opportunities
    }

    /// The event rate (events per opportunity); 0 when no opportunities.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.events as f64 / self.opportunities as f64
        }
    }

    /// The rate expressed as a percentage.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.rate() * 100.0
    }

    /// Merges another estimator into this one.
    pub fn merge(&mut self, other: &RateEstimator) {
        self.events += other.events;
        self.opportunities += other.opportunities;
    }
}

/// Handle to a [`Counter`] registered in a [`MetricSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a [`LogHistogram`] registered in a [`MetricSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named counters and log-histograms with a *fixed
/// registration order*.
///
/// Two `MetricSet`s built by running the same registration code are
/// structurally identical, so per-worker sets can be merged in any order
/// and snapshots render byte-identically regardless of worker count —
/// the property the service stack's determinism contract leans on.
///
/// ```
/// use ccd_common::stats::MetricSet;
/// let mut m = MetricSet::new();
/// let requests = m.counter("requests");
/// let depth = m.histogram("probe_depth", 2);
/// m.add(requests, 10);
/// m.record(depth, 3);
/// let snap = m.snapshot();
/// assert_eq!(snap.counters[0], ("requests".to_string(), 10));
/// assert_eq!(snap.histograms[0].count, 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricSet {
    counters: Vec<(String, Counter)>,
    histograms: Vec<(String, LogHistogram)>,
}

impl MetricSet {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Registers a counter under `name` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter: registration
    /// order is part of the set's identity, so collisions are bugs.
    pub fn counter(&mut self, name: &str) -> CounterId {
        assert!(
            self.counters.iter().all(|(n, _)| n != name),
            "counter {name:?} registered twice"
        );
        self.counters.push((name.to_string(), Counter::new()));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a log-histogram under `name` with `sig_bits` resolution
    /// and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram, or if
    /// `sig_bits` is outside `1..=8`.
    pub fn histogram(&mut self, name: &str, sig_bits: u32) -> HistogramId {
        assert!(
            self.histograms.iter().all(|(n, _)| n != name),
            "histogram {name:?} registered twice"
        );
        self.histograms
            .push((name.to_string(), LogHistogram::new(sig_bits)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a registered counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1.add(n);
    }

    /// Increments a registered counter by one.
    pub fn incr(&mut self, id: CounterId) {
        self.counters[id.0].1.incr();
    }

    /// Records one observation into a registered histogram.
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.record(value);
    }

    /// Current value of a registered counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1.get()
    }

    /// Read access to a registered histogram.
    #[must_use]
    pub fn histogram_ref(&self, id: HistogramId) -> &LogHistogram {
        &self.histograms[id.0].1
    }

    /// Mutable access to a registered histogram (for bulk recording or
    /// folding in an externally accumulated distribution).
    pub fn histogram_mut(&mut self, id: HistogramId) -> &mut LogHistogram {
        &mut self.histograms[id.0].1
    }

    /// Merges another set into this one.
    ///
    /// # Panics
    ///
    /// Panics if the registries differ; use [`MetricSet::try_merge`] to
    /// handle the mismatch as an error.
    pub fn merge(&mut self, other: &MetricSet) {
        if let Err(err) = self.try_merge(other) {
            panic!("cannot merge metric sets with different registries: {err}");
        }
    }

    /// Merges another set into this one, requiring identical registries
    /// (same names, same order, same histogram resolutions).
    ///
    /// Counter and histogram merges both saturate, so reducing N
    /// per-worker sets yields a bit-identical result in any merge order.
    /// On error `self` may have merged a prefix of the counters but no
    /// histograms beyond the first mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] on any name, order, length or resolution
    /// mismatch.
    pub fn try_merge(&mut self, other: &MetricSet) -> Result<(), MergeError> {
        if self.counters.len() != other.counters.len()
            || self.histograms.len() != other.histograms.len()
        {
            return Err(MergeError::new(format!(
                "metric registries differ: {}+{} vs {}+{} counters+histograms",
                self.counters.len(),
                self.histograms.len(),
                other.counters.len(),
                other.histograms.len()
            )));
        }
        for ((name, _), (other_name, _)) in self.counters.iter().zip(&other.counters) {
            if name != other_name {
                return Err(MergeError::new(format!(
                    "counter registration order differs: {name:?} vs {other_name:?}"
                )));
            }
        }
        for ((name, hist), (other_name, other_hist)) in
            self.histograms.iter().zip(&other.histograms)
        {
            if name != other_name {
                return Err(MergeError::new(format!(
                    "histogram registration order differs: {name:?} vs {other_name:?}"
                )));
            }
            if hist.sig_bits() != other_hist.sig_bits() {
                return Err(MergeError::new(format!(
                    "histogram {name:?} resolutions differ: {} vs {} significant bits",
                    hist.sig_bits(),
                    other_hist.sig_bits()
                )));
            }
        }
        for ((_, counter), (_, other_counter)) in self.counters.iter_mut().zip(&other.counters) {
            counter.merge(other_counter);
        }
        for ((_, hist), (_, other_hist)) in self.histograms.iter_mut().zip(&other.histograms) {
            hist.try_merge(other_hist)?;
        }
        Ok(())
    }

    /// Takes an integer-only snapshot of every registered metric, in
    /// registration order.
    #[must_use]
    pub fn snapshot(&self) -> MetricSnapshot {
        MetricSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    sig_bits: h.sig_bits(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min().unwrap_or(0),
                    max: h.max().unwrap_or(0),
                    p50: h.p50(),
                    p99: h.p99(),
                    p999: h.p999(),
                    buckets: h.iter().collect(),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricSet`]: all fields are integers, so
/// two equal snapshots render byte-identically through any deterministic
/// serializer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricSnapshot {
    /// `(name, value)` for every counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// One summary per histogram, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Integer summary of one [`LogHistogram`] inside a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Configured resolution in significant bits.
    pub sig_bits: u32,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Exact smallest observation (0 when empty).
    pub min: u64,
    /// Exact largest observation (0 when empty).
    pub max: u64,
    /// Median, within the configured relative error.
    pub p50: u64,
    /// 99th percentile, within the configured relative error.
    pub p99: u64,
    /// 99.9th percentile, within the configured relative error.
    pub p999: u64,
    /// `(bucket upper edge, count)` for every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn fnv64_matches_the_reference_vectors_and_is_order_sensitive() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), Fnv64::OFFSET);
        assert_eq!(Fnv64::default(), Fnv64::new());

        // One zero word: eight zero bytes, each multiplying by the prime.
        let mut expected = Fnv64::OFFSET;
        for _ in 0..8 {
            expected = expected.wrapping_mul(Fnv64::PRIME);
        }
        let mut digest = Fnv64::new();
        digest.fold(0);
        assert_eq!(digest.finish(), expected);

        let mut ab = Fnv64::new();
        ab.fold(0xa).fold(0xb);
        let mut ba = Fnv64::new();
        ba.fold(0xb).fold(0xa);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_merge_is_order_independent_and_saturates() {
        let mut a = Counter::new();
        let mut b = Counter::new();
        a.add(7);
        b.add(35);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.get(), 42);
        assert_eq!(ab, ba, "merge must commute");

        // Merging an untouched counter is the identity.
        let empty = Counter::new();
        ab.merge(&empty);
        assert_eq!(ab.get(), 42);
        let mut from_empty = Counter::new();
        from_empty.merge(&ab);
        assert_eq!(from_empty.get(), 42);

        // Overflow-adjacent: sums past u64::MAX saturate instead of wrapping.
        let mut near_max = Counter::new();
        near_max.add(u64::MAX - 1);
        let mut two = Counter::new();
        two.add(2);
        near_max.merge(&two);
        assert_eq!(near_max.get(), u64::MAX);
        near_max.merge(&two);
        assert_eq!(near_max.get(), u64::MAX, "saturated counters stay put");
    }

    #[test]
    fn mean_accumulator_merge_empty_and_extreme_cases() {
        // empty ← empty stays empty (no spurious min/max/count).
        let mut empty = MeanAccumulator::new();
        empty.merge(&MeanAccumulator::new());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);

        // empty ← populated adopts the other side's samples exactly.
        let mut filled = MeanAccumulator::new();
        filled.record(2.0);
        filled.record(4.0);
        let mut target = MeanAccumulator::new();
        target.merge(&filled);
        assert_eq!(target.count(), 2);
        assert!((target.mean() - 3.0).abs() < 1e-12);
        assert_eq!(target.min(), Some(2.0));
        assert_eq!(target.max(), Some(4.0));

        // Merge commutes: (a ⊎ b) == (b ⊎ a) on all observable fields.
        let mut a = MeanAccumulator::new();
        a.record(-1.0);
        a.record(5.0);
        let mut b = MeanAccumulator::new();
        b.record(0.25);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        assert_eq!(ab.min(), Some(-1.0));
        assert_eq!(ab.max(), Some(5.0));

        // Overflow-adjacent sample magnitudes survive the merge as f64s.
        let mut huge = MeanAccumulator::new();
        huge.record(f64::MAX / 2.0);
        let mut other = MeanAccumulator::new();
        other.record(f64::MAX / 2.0);
        huge.merge(&other);
        assert!(huge.mean().is_finite());
        assert!((huge.mean() - f64::MAX / 2.0).abs() < f64::MAX * 1e-10);
    }

    #[test]
    fn histogram_records_and_clamps() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(2);
        h.record(2);
        h.record(9); // clamped to 4
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(100), 1); // query also clamps
        assert!((h.mean() - (2 + 2 + 4) as f64 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_fractions_and_quantiles() {
        let mut h = Histogram::new(10);
        for v in [1u64, 1, 1, 2, 2, 5, 10, 10, 10, 10] {
            h.record(v);
        }
        assert!((h.fraction(1) - 0.3).abs() < 1e-12);
        assert!((h.fraction_at_least(5) - 0.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.3), 1);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 10);
    }

    #[test]
    fn histogram_merge_and_reset() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record_n(3, 5);
        b.record_n(3, 2);
        b.record(8);
        a.merge(&b);
        assert_eq!(a.count(3), 7);
        assert_eq!(a.count(8), 1);
        assert_eq!(a.total(), 8);
        a.reset();
        assert_eq!(a.total(), 0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_requires_same_shape() {
        let mut a = Histogram::new(4);
        let b = Histogram::new(8);
        a.merge(&b);
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction(2), 0.0);
        assert_eq!(h.fraction_at_least(0), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn mean_accumulator_tracks_extremes() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        for x in [1.0, 2.0, 3.0, 10.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 4.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(10.0));

        let mut other = MeanAccumulator::new();
        other.record(0.5);
        m.merge(&other);
        assert_eq!(m.count(), 5);
        assert_eq!(m.min(), Some(0.5));

        let empty = MeanAccumulator::new();
        m.merge(&empty);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn rate_estimator_rates() {
        let mut r = RateEstimator::new();
        assert_eq!(r.rate(), 0.0);
        r.record_miss();
        r.record_miss();
        r.record_hit(1);
        r.record_hit(3);
        assert_eq!(r.events(), 4);
        assert_eq!(r.opportunities(), 4);
        assert!((r.rate() - 1.0).abs() < 1e-12);
        assert!((r.percent() - 100.0).abs() < 1e-12);

        let mut s = RateEstimator::new();
        s.add(1, 96);
        r.merge(&s);
        assert_eq!(r.opportunities(), 100);
        assert!((r.rate() - 0.05).abs() < 1e-12);
    }

    use crate::rng::{Rng64, SplitMix64};

    #[test]
    fn log_histogram_buckets_values_exactly_below_two_to_sig_bits() {
        for sig_bits in 1..=8u32 {
            let mut h = LogHistogram::new(sig_bits);
            let exact_limit = 1u64 << sig_bits;
            for v in 0..exact_limit {
                h.record(v);
            }
            // Every small value sits in its own bucket at its exact value.
            for (i, (upper, count)) in h.iter().enumerate() {
                assert_eq!(upper, i as u64);
                assert_eq!(count, 1);
            }
            assert_eq!(h.count(), exact_limit);
        }
    }

    #[test]
    fn log_histogram_quantiles_within_relative_error_randomized() {
        // Mixed magnitudes: uniform small, mid-range, and full-width
        // values, across every supported resolution.
        for sig_bits in [1u32, 2, 4, 8] {
            let mut rng = SplitMix64::new(0xC0FF_EE00 + sig_bits as u64);
            let mut h = LogHistogram::new(sig_bits);
            let mut exact: Vec<u64> = Vec::new();
            for i in 0..10_000u64 {
                let value = match i % 3 {
                    0 => rng.next_u64() % 100,
                    1 => rng.next_u64() % 1_000_000,
                    _ => rng.next_u64(),
                };
                h.record(value);
                exact.push(value);
            }
            exact.sort_unstable();
            let tolerance = h.relative_error();
            for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((q * exact.len() as f64).ceil() as usize)
                    .max(1)
                    .min(exact.len());
                let truth = exact[rank - 1] as f64;
                let got = h.quantile(q) as f64;
                // The reported value is the bucket's upper edge clamped to
                // max: never below the truth, never more than rel-err above.
                assert!(
                    got >= truth && got - truth <= truth * tolerance + 1.0,
                    "sig_bits {sig_bits} q {q}: got {got}, exact {truth}"
                );
            }
            assert_eq!(h.min(), exact.first().copied());
            assert_eq!(h.max(), exact.last().copied());
        }
    }

    #[test]
    fn log_histogram_merge_is_order_independent_across_shuffles() {
        // Build 8 disjoint worker histograms, then merge them in several
        // shuffled orders: every reduction must be bit-identical.
        let parts: Vec<LogHistogram> = (0..8u64)
            .map(|w| {
                let mut rng = SplitMix64::new(0xBEEF + w);
                let mut h = LogHistogram::new(3);
                for _ in 0..1000 {
                    h.record(rng.next_u64() >> ((w * 7) % 64));
                }
                h
            })
            .collect();
        let reduce = |order: &[usize]| {
            let mut acc = LogHistogram::new(3);
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let reference = reduce(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut order: Vec<usize> = (0..8).collect();
        let mut rng = SplitMix64::new(0x5EED);
        for _ in 0..16 {
            // Fisher-Yates with the deterministic generator.
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            assert_eq!(reduce(&order), reference, "merge order {order:?} diverged");
        }
        // Structural equality implies identical snapshots too.
        let mut set_a = MetricSet::new();
        let id_a = set_a.histogram("h", 3);
        *set_a.histogram_mut(id_a) = reference.clone();
        let mut set_b = MetricSet::new();
        let id_b = set_b.histogram("h", 3);
        *set_b.histogram_mut(id_b) = reduce(&order);
        assert_eq!(set_a.snapshot(), set_b.snapshot());
    }

    #[test]
    fn log_histogram_empty_and_nonempty_merge_paths() {
        let empty = LogHistogram::new(2);
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.iter().count(), 0);

        let mut filled = LogHistogram::new(2);
        filled.record_n(7, 3);
        filled.record(4096);

        // empty ← filled adopts the filled side exactly.
        let mut target = LogHistogram::new(2);
        target.try_merge(&filled).unwrap();
        assert_eq!(target, filled);

        // filled ← empty is the identity.
        let mut unchanged = filled.clone();
        unchanged.try_merge(&empty).unwrap();
        assert_eq!(unchanged, filled);

        // empty ← empty stays empty with no spurious min/max.
        let mut both = LogHistogram::new(2);
        both.try_merge(&LogHistogram::new(2)).unwrap();
        assert!(both.is_empty());
        assert_eq!(both.min(), None);
    }

    #[test]
    fn log_histogram_saturates_instead_of_wrapping() {
        let mut h = LogHistogram::new(2);
        h.record_n(3, u64::MAX);
        h.record_n(3, 5);
        h.record_n(u64::MAX, 2);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.min(), Some(3));
        // Merging two saturated histograms stays saturated.
        let other = h.clone();
        h.try_merge(&other).unwrap();
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn log_histogram_merge_mismatch_is_an_error_and_leaves_self_untouched() {
        let mut a = LogHistogram::new(2);
        a.record(10);
        let before = a.clone();
        let mut b = LogHistogram::new(3);
        b.record(99);
        let err = a.try_merge(&b).unwrap_err();
        assert!(err.message().contains("2 vs 3"), "{err}");
        assert_eq!(a, before, "failed merge must not partially apply");
    }

    #[test]
    #[should_panic(expected = "different resolutions")]
    fn log_histogram_panicking_merge_requires_same_resolution() {
        let mut a = LogHistogram::new(2);
        a.merge(&LogHistogram::new(4));
    }

    #[test]
    #[should_panic(expected = "sig_bits must be in 1..=8")]
    fn log_histogram_rejects_zero_sig_bits() {
        let _ = LogHistogram::new(0);
    }

    #[test]
    fn histogram_try_merge_empty_nonempty_saturation_and_mismatch() {
        // empty ← filled and filled ← empty.
        let mut filled = Histogram::new(8);
        filled.record_n(2, 4);
        let mut target = Histogram::new(8);
        target.try_merge(&filled).unwrap();
        assert_eq!(target, filled);
        let mut unchanged = filled.clone();
        unchanged.try_merge(&Histogram::new(8)).unwrap();
        assert_eq!(unchanged, filled);

        // Saturation: counts pin at u64::MAX instead of wrapping.
        let mut sat = Histogram::new(4);
        sat.record_n(1, u64::MAX);
        sat.record_n(1, 10);
        assert_eq!(sat.count(1), u64::MAX);
        assert_eq!(sat.total(), u64::MAX);
        let other = sat.clone();
        sat.try_merge(&other).unwrap();
        assert_eq!(sat.total(), u64::MAX);

        // Mismatch is an error (both directions) and self is untouched.
        let mut small = Histogram::new(4);
        small.record(3);
        let before = small.clone();
        let big = Histogram::new(8);
        let err = small.try_merge(&big).unwrap_err();
        assert!(err.message().contains("0..=4"), "{err}");
        assert_eq!(small, before);
        let mut big = big;
        assert!(big.try_merge(&before).is_err());
    }

    #[test]
    fn metric_set_registers_records_and_snapshots_in_fixed_order() {
        let mut m = MetricSet::new();
        let hits = m.counter("hits");
        let misses = m.counter("misses");
        let depth = m.histogram("depth", 2);
        m.incr(hits);
        m.add(misses, 3);
        m.record(depth, 5);
        m.record(depth, 9);
        assert_eq!(m.counter_value(hits), 1);
        assert_eq!(m.counter_value(misses), 3);
        assert_eq!(m.histogram_ref(depth).count(), 2);

        let snap = m.snapshot();
        assert_eq!(
            snap.counters,
            vec![("hits".to_string(), 1), ("misses".to_string(), 3)]
        );
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!(h.name, "depth");
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 9);
        assert!(h.p999 >= h.p50);
    }

    #[test]
    fn metric_set_merge_requires_identical_registries() {
        let build = || {
            let mut m = MetricSet::new();
            let c = m.counter("requests");
            let h = m.histogram("depth", 2);
            (m, c, h)
        };
        let (mut a, ca, ha) = build();
        let (mut b, cb, hb) = build();
        a.add(ca, 5);
        a.record(ha, 1);
        b.add(cb, 7);
        b.record(hb, 1000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "metric-set merge must commute");
        assert_eq!(ab.counter_value(ca), 12);
        assert_eq!(ab.snapshot(), ba.snapshot());

        // Different names, different order, different resolution: errors.
        let mut renamed = MetricSet::new();
        renamed.counter("other");
        renamed.histogram("depth", 2);
        assert!(a.clone().try_merge(&renamed).is_err());
        let mut coarse = MetricSet::new();
        coarse.counter("requests");
        coarse.histogram("depth", 3);
        assert!(a.clone().try_merge(&coarse).is_err());
        let empty = MetricSet::new();
        assert!(a.try_merge(&empty).is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn metric_set_rejects_duplicate_names() {
        let mut m = MetricSet::new();
        m.counter("x");
        m.counter("x");
    }
}
