//! Shared configuration error type.

use std::error::Error;
use std::fmt;

/// Errors produced while validating structural configuration (cache shapes,
/// directory geometries, workload profiles).
///
/// All constructors in the workspace that accept user-provided sizes go
/// through `try_*` functions returning this error, with panicking `new`
/// convenience wrappers layered on top.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size parameter that must be a power of two was not.
    NotPowerOfTwo {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A parameter that must be non-zero was zero.
    Zero {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
    /// A parameter exceeded a supported maximum.
    TooLarge {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
        /// The largest supported value.
        max: u64,
    },
    /// A parameter fell below a required minimum.
    TooSmall {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
        /// The smallest supported value.
        min: u64,
    },
    /// Two parameters that must agree did not.
    Inconsistent {
        /// Description of the violated relationship.
        what: &'static str,
    },
    /// A textual specification (e.g. a `DirectorySpec` string) could not be
    /// parsed.
    Parse {
        /// Description of what failed to parse, including the rejected
        /// input.
        what: String,
    },
}

impl ConfigError {
    /// Builds a [`ConfigError::Parse`] from any message — the one-liner the
    /// spec-string parsers (`DirectorySpec`, `WorkloadSpec`, `FaultPlan`)
    /// use at every rejection site.
    #[must_use]
    pub fn parse(what: impl Into<String>) -> Self {
        ConfigError::Parse { what: what.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::Zero { what } => write!(f, "{what} must be non-zero"),
            ConfigError::TooLarge { what, value, max } => {
                write!(f, "{what} is {value}, which exceeds the maximum of {max}")
            }
            ConfigError::TooSmall { what, value, min } => {
                write!(f, "{what} is {value}, below the minimum of {min}")
            }
            ConfigError::Inconsistent { what } => write!(f, "inconsistent configuration: {what}"),
            ConfigError::Parse { what } => write!(f, "parse error: {what}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ConfigError::NotPowerOfTwo {
            what: "set count",
            value: 48,
        };
        assert_eq!(e.to_string(), "set count must be a power of two, got 48");

        let e = ConfigError::Zero { what: "ways" };
        assert_eq!(e.to_string(), "ways must be non-zero");

        let e = ConfigError::TooLarge {
            what: "cores",
            value: 2048,
            max: 1024,
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("1024"));

        let e = ConfigError::TooSmall {
            what: "ways",
            value: 1,
            min: 2,
        };
        assert!(e.to_string().contains("below the minimum"));

        let e = ConfigError::Inconsistent {
            what: "sharer width differs from cache count",
        };
        assert!(e.to_string().contains("inconsistent"));
    }

    #[test]
    fn parse_helper_builds_the_parse_variant() {
        let e = ConfigError::parse(format!("fault plan `{}`: unknown clause", "x@y"));
        assert_eq!(
            e,
            ConfigError::Parse {
                what: "fault plan `x@y`: unknown clause".to_string()
            }
        );
        assert!(e.to_string().starts_with("parse error:"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ConfigError::Zero { what: "x" });
    }
}
