//! Common foundation types for the `cuckoo-directory` workspace.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! reproduction of *Cuckoo Directory: A Scalable Directory for Many-Core
//! Systems* (HPCA 2011):
//!
//! * strongly-typed identifiers for cores, caches and directory slices
//!   ([`CoreId`], [`CacheId`], [`SliceId`]),
//! * physical-address and cache-line newtypes with the block geometry used
//!   throughout the paper ([`Address`], [`LineAddr`], [`BlockGeometry`]),
//! * deterministic, seedable random number generation used by the synthetic
//!   workloads and the hash-characterization experiments ([`rng`]),
//! * light-weight statistics (counters, histograms, running means) used by
//!   the directories, caches and the coherence simulator ([`stats`]),
//! * bounded backpressure channels connecting the directory service's
//!   ingestion frontend to its shard-owning workers ([`channel`]),
//! * the shared error type ([`ConfigError`]).
//!
//! # Example
//!
//! ```
//! use ccd_common::{Address, BlockGeometry, LineAddr};
//!
//! let geom = BlockGeometry::new(64);
//! let addr = Address::new(0x8000_1234);
//! let line: LineAddr = geom.line_of(addr);
//! assert_eq!(line.byte_address(&geom).raw(), 0x8000_1200);
//! assert_eq!(geom.block_offset(addr), 0x34);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod channel;
pub mod error;
pub mod ids;
pub mod mem;
pub mod prefetch;
pub mod rng;
pub mod stats;

pub use addr::{Address, BlockGeometry, LineAddr};
pub use error::ConfigError;
pub use ids::{CacheId, CoreId, SliceId};
pub use mem::{AccessType, MemRef};
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{
    Counter, CounterId, Fnv64, Histogram, HistogramId, HistogramSnapshot, LogHistogram,
    MeanAccumulator, MergeError, MetricSet, MetricSnapshot, RateEstimator,
};

/// The physical address width assumed by the paper's system (Table 1).
pub const PHYSICAL_ADDRESS_BITS: u32 = 48;

/// The default cache-block size used throughout the paper (Table 1).
pub const DEFAULT_BLOCK_BYTES: u64 = 64;

/// Returns `ceil(log2(x))` for `x >= 1`; `0` for `x <= 1`.
///
/// Used pervasively when sizing index and tag fields.
///
/// ```
/// assert_eq!(ccd_common::ceil_log2(1), 0);
/// assert_eq!(ccd_common::ceil_log2(2), 1);
/// assert_eq!(ccd_common::ceil_log2(3), 2);
/// assert_eq!(ccd_common::ceil_log2(1024), 10);
/// ```
#[must_use]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Returns `true` when `x` is a power of two (and non-zero).
///
/// ```
/// assert!(ccd_common::is_power_of_two(64));
/// assert!(!ccd_common::is_power_of_two(0));
/// assert!(!ccd_common::is_power_of_two(48));
/// ```
#[must_use]
pub fn is_power_of_two(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_reference() {
        for x in 1..4096u64 {
            let expected = (x as f64).log2().ceil() as u32;
            assert_eq!(ceil_log2(x), expected, "x = {x}");
        }
    }

    #[test]
    fn ceil_log2_handles_edges() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(u64::MAX), 64);
        assert_eq!(ceil_log2(1 << 63), 63);
    }

    #[test]
    fn power_of_two_detection() {
        let powers: Vec<u64> = (0..63).map(|s| 1u64 << s).collect();
        for p in &powers {
            assert!(is_power_of_two(*p));
        }
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(12));
    }
}
