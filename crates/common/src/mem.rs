//! Memory-reference records exchanged between workload generators and the
//! coherence simulator.
//!
//! The trace-driven simulator consumes a stream of [`MemRef`] records — one
//! per memory access issued by a core — and the synthetic workload
//! generators of the `ccd-workloads` crate produce them.  Keeping the record
//! type here (rather than in either crate) avoids a dependency cycle and
//! lets users feed their own traces into the simulator.

use crate::{Address, CoreId};
use std::fmt;

/// The kind of memory access a core performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Instruction fetch (serviced by the L1 instruction cache in the
    /// Shared-L2 configuration).
    InstructionFetch,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

impl AccessType {
    /// `true` for stores.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessType::Write)
    }

    /// `true` for instruction fetches.
    #[must_use]
    pub const fn is_instruction(self) -> bool {
        matches!(self, AccessType::InstructionFetch)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessType::InstructionFetch => "ifetch",
            AccessType::Read => "read",
            AccessType::Write => "write",
        };
        f.write_str(name)
    }
}

/// One memory reference issued by one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The core that issued the access.
    pub core: CoreId,
    /// The physical byte address accessed.
    pub addr: Address,
    /// Load, store, or instruction fetch.
    pub kind: AccessType,
}

impl MemRef {
    /// Creates a reference record.
    #[must_use]
    pub const fn new(core: CoreId, addr: Address, kind: AccessType) -> Self {
        MemRef { core, addr, kind }
    }

    /// Convenience constructor for a data read.
    #[must_use]
    pub const fn read(core: CoreId, addr: Address) -> Self {
        MemRef::new(core, addr, AccessType::Read)
    }

    /// Convenience constructor for a data write.
    #[must_use]
    pub const fn write(core: CoreId, addr: Address) -> Self {
        MemRef::new(core, addr, AccessType::Write)
    }

    /// Convenience constructor for an instruction fetch.
    #[must_use]
    pub const fn ifetch(core: CoreId, addr: Address) -> Self {
        MemRef::new(core, addr, AccessType::InstructionFetch)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.core, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let r = MemRef::read(CoreId::new(1), Address::new(0x100));
        assert!(!r.kind.is_write());
        assert!(!r.kind.is_instruction());

        let w = MemRef::write(CoreId::new(2), Address::new(0x200));
        assert!(w.kind.is_write());

        let i = MemRef::ifetch(CoreId::new(3), Address::new(0x300));
        assert!(i.kind.is_instruction());
        assert_eq!(
            i,
            MemRef::new(
                CoreId::new(3),
                Address::new(0x300),
                AccessType::InstructionFetch
            )
        );
    }

    #[test]
    fn display_is_readable() {
        let r = MemRef::write(CoreId::new(7), Address::new(0xabc));
        assert_eq!(format!("{r}"), "core7 write 0xabc");
        assert_eq!(AccessType::InstructionFetch.to_string(), "ifetch");
    }
}
