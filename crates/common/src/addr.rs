//! Physical addresses, cache-line addresses and block geometry.
//!
//! The coherence directory never sees byte addresses — every structure in the
//! paper operates on *block* (cache-line) granularity.  To keep that
//! distinction visible in the type system this module provides two newtypes:
//!
//! * [`Address`] — a full physical byte address (48 bits in the paper's
//!   system, Table 1),
//! * [`LineAddr`] — a block-aligned address expressed as a *block number*
//!   (byte address divided by the block size).
//!
//! [`BlockGeometry`] performs the conversions and carries the block size so
//! that the tag/index arithmetic performed by caches and directories cannot
//! silently mix granularities.

use crate::{ceil_log2, is_power_of_two, ConfigError};
use std::fmt;

/// A physical byte address.
///
/// ```
/// use ccd_common::Address;
/// let a = Address::new(0x1000);
/// assert_eq!(a.raw(), 0x1000);
/// assert_eq!(Address::from(0x1000u64), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates a new address from a raw byte address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({:#x})", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A block-aligned (cache-line) address, stored as a block number.
///
/// A `LineAddr` is what directories and cache tag arrays index and tag on.
/// It is obtained from an [`Address`] through [`BlockGeometry::line_of`].
///
/// ```
/// use ccd_common::{Address, BlockGeometry};
/// let geom = BlockGeometry::new(64);
/// let line = geom.line_of(Address::new(0x12345));
/// assert_eq!(line.block_number(), 0x12345 / 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address directly from a block number.
    #[must_use]
    pub const fn from_block_number(block: u64) -> Self {
        LineAddr(block)
    }

    /// Returns the block number (byte address divided by the block size).
    #[must_use]
    pub const fn block_number(self) -> u64 {
        self.0
    }

    /// Reconstructs the block-aligned byte [`Address`] for this line.
    #[must_use]
    pub fn byte_address(self, geom: &BlockGeometry) -> Address {
        Address(self.0 << geom.offset_bits())
    }
}

impl From<u64> for LineAddr {
    fn from(block: u64) -> Self {
        LineAddr(block)
    }
}

impl From<LineAddr> for u64 {
    fn from(line: LineAddr) -> Self {
        line.0
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Cache-block geometry: block size and the derived offset-bit count.
///
/// The paper's system uses 64-byte blocks everywhere (Table 1); other sizes
/// are supported for sensitivity studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockGeometry {
    block_bytes: u64,
    offset_bits: u32,
}

impl Default for BlockGeometry {
    fn default() -> Self {
        BlockGeometry::new(crate::DEFAULT_BLOCK_BYTES)
    }
}

impl BlockGeometry {
    /// Creates a geometry for `block_bytes`-byte cache blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two. Use
    /// [`BlockGeometry::try_new`] for a fallible constructor.
    #[must_use]
    pub fn new(block_bytes: u64) -> Self {
        Self::try_new(block_bytes).expect("block size must be a non-zero power of two")
    }

    /// Creates a geometry, returning an error when `block_bytes` is not a
    /// power of two.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotPowerOfTwo`] when the block size is zero or
    /// not a power of two.
    pub fn try_new(block_bytes: u64) -> Result<Self, ConfigError> {
        if !is_power_of_two(block_bytes) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "block size",
                value: block_bytes,
            });
        }
        Ok(BlockGeometry {
            block_bytes,
            offset_bits: ceil_log2(block_bytes),
        })
    }

    /// Block size in bytes.
    #[must_use]
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of low-order address bits covered by the block offset.
    #[must_use]
    pub const fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Maps a byte address to its cache-line address.
    #[must_use]
    pub fn line_of(&self, addr: Address) -> LineAddr {
        LineAddr(addr.raw() >> self.offset_bits)
    }

    /// Returns the byte offset of `addr` within its block.
    #[must_use]
    pub fn block_offset(&self, addr: Address) -> u64 {
        addr.raw() & (self.block_bytes - 1)
    }

    /// Number of tag bits required to identify a line when `index_bits` of
    /// the line address are consumed by the set index.
    ///
    /// The paper assumes a 48-bit physical address space (Table 1).
    #[must_use]
    pub fn tag_bits(&self, index_bits: u32) -> u32 {
        crate::PHYSICAL_ADDRESS_BITS
            .saturating_sub(self.offset_bits)
            .saturating_sub(index_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip() {
        let geom = BlockGeometry::new(64);
        for raw in [0u64, 63, 64, 0x1fff, 0xffff_ffff_ffff] {
            let addr = Address::new(raw);
            let line = geom.line_of(addr);
            let back = line.byte_address(&geom);
            assert_eq!(back.raw(), raw & !63);
        }
    }

    #[test]
    fn offsets_within_block() {
        let geom = BlockGeometry::new(128);
        assert_eq!(geom.offset_bits(), 7);
        assert_eq!(geom.block_offset(Address::new(0x1285)), 0x05);
        assert_eq!(geom.block_offset(Address::new(0x127f)), 0x7f);
    }

    #[test]
    fn rejects_non_power_of_two_blocks() {
        assert!(BlockGeometry::try_new(0).is_err());
        assert!(BlockGeometry::try_new(96).is_err());
        assert!(BlockGeometry::try_new(64).is_ok());
    }

    #[test]
    fn tag_bits_account_for_index_and_offset() {
        let geom = BlockGeometry::new(64);
        // 48-bit address, 6 offset bits, 10 index bits -> 32 tag bits.
        assert_eq!(geom.tag_bits(10), 32);
        // Saturates rather than underflowing.
        assert_eq!(geom.tag_bits(60), 0);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Address::new(0xabc)), "0xabc");
        assert_eq!(format!("{}", LineAddr::from_block_number(0x10)), "0x10");
        assert_eq!(format!("{:x}", Address::new(0xabc)), "abc");
    }
}
