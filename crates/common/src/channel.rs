//! Bounded multi-producer/single-consumer channels with blocking
//! backpressure, deterministic timeouts and observable shutdown.
//!
//! The directory service (`ccd-service`) moves batches of coherence
//! requests from an ingestion frontend to shard-owning worker threads over
//! these channels.  The send/recv semantics are deliberately close to
//! `std::sync::mpsc::sync_channel` — which would also work — but the
//! service's determinism contract *depends* on the exact channel behavior,
//! so the primitive lives in-tree where its load-bearing properties are
//! pinned by this module's own tests rather than inherited implicitly:
//!
//! * **bounded backpressure** — [`Sender::send`] *blocks* when the ring is
//!   full, which is what turns an open-loop generator into a closed-loop
//!   one: the producer runs exactly as fast as the consumer drains;
//! * **FIFO per channel** — the order a worker observes is exactly the
//!   order the router sent (the service's bit-identity argument);
//! * **observable disconnects** — dropping the [`Receiver`] clears the
//!   backlog and fails every subsequent (and blocked) `send`, returning
//!   the rejected value; dropping the last [`Sender`] drains the queue and
//!   then ends [`Receiver::recv`] with [`RecvError::Disconnected`] — no
//!   sentinel messages.  [`Sender::shutdown`] is the third, *explicit*
//!   close: it discards the backlog immediately and surfaces as
//!   [`RecvError::Shutdown`], so a consumer can tell a natural
//!   end-of-stream from a supervisor-ordered abort;
//! * **virtual-tick timeouts** — [`Sender::send_timeout`] and
//!   [`Receiver::recv_timeout`] bound their blocking in *ticks* (bounded
//!   condvar wait rounds of [`TICK`]), never by reading the wall clock, so
//!   the resilient retry paths built on them ([`Backoff`]) stay compatible
//!   with the `no-wallclock` lint rule and with deterministic replay: a
//!   timeout can change *when* work happens, never *what* the result is;
//! * **introspection** — queue depth and capacity are observable from both
//!   ends ([`Receiver::len`], [`Sender::len`], [`Sender::is_full`]), which
//!   the tests, the service's admission-control accounting and diagnostics
//!   use to assert occupancy directly.  Depth reads are lock-free (an
//!   atomic mirror of the queue length), so monitoring never contends with
//!   the transfer path.
//!
//! The implementation is a fixed-capacity ring (`VecDeque` that never grows
//! past its capacity) behind one mutex and two condition variables; `send`
//! and `recv` are each one lock acquisition in the un-contended fast path.
//! The sender count, receiver liveness flag and shutdown flag deliberately
//! stay *inside* the mutex rather than becoming atomics: the blocked-side
//! checks (`recv` testing `senders == 0`, `send` testing `receiver_alive`)
//! must happen while holding the lock the condvar re-acquires, or a
//! disconnect between the check and the wait would be a classic lost
//! wakeup.  The depth mirror is the one piece of state outside the mutex;
//! every queue mutation refreshes it through the internal `sync_depth`
//! helper *while
//! still holding the lock*, so no code path can leave it stale (the
//! shutdown and timeout paths included).
//!
//! ```
//! use ccd_common::channel::bounded;
//!
//! let (tx, rx) = bounded::<u32>(4);
//! let producer = std::thread::spawn(move || {
//!     for i in 0..100 {
//!         tx.send(i).expect("receiver alive");
//!     }
//! });
//! let sum: u32 = std::iter::from_fn(|| rx.recv().ok()).sum();
//! producer.join().unwrap();
//! assert_eq!(sum, (0..100).sum());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One *virtual tick*: the bounded condvar wait quantum behind
/// [`Sender::send_timeout`] and [`Receiver::recv_timeout`].
///
/// Timeouts are counted in wait rounds, not in elapsed wall-clock time:
/// a budget of `n` ticks bounds the call to at most `n` re-checks of the
/// channel state, each waiting at most this long.  Nothing reads a clock,
/// and no result ever depends on how long a tick really took.
pub const TICK: Duration = Duration::from_micros(100);

/// Creates a bounded channel able to hold up to `capacity` in-flight items.
///
/// # Panics
///
/// Panics when `capacity` is zero — a zero-slot ring could never transfer
/// an item (rendezvous semantics are deliberately unsupported; the service
/// always wants at least one batch of pipelining between producer and
/// consumer).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be non-zero");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
            shutdown: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        depth: AtomicUsize::new(0),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
    /// Set once by [`Sender::shutdown`]; never cleared.  Distinct from
    /// `receiver_alive == false` so the consumer can tell "the producer
    /// side ordered an abort" from "the producer side went away".
    shutdown: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Lock-free mirror of `state.queue.len()`, maintained *only* through
    /// [`Shared::sync_depth`] while holding the mutex and read without it
    /// ([`Receiver::len`], [`Sender::len`]).  Advisory: nothing
    /// synchronizes through it.
    depth: AtomicUsize,
    capacity: usize,
}

impl<T> Shared<T> {
    /// Refreshes the depth mirror from the queue length.
    ///
    /// Must be called by **every** path that mutates the queue, while the
    /// state mutex is still held — centralizing the store is what makes it
    /// impossible for a mutation path (the timeout and shutdown paths
    /// included) to leave the mirror transiently stale behind a released
    /// lock.
    fn sync_depth(&self, state: &State<T>) {
        // ordering: Release pairs with the Acquire loads in `len()` so a
        // reader that observes this store also observes every mirror store
        // that preceded it; the queue itself is only ever published by the
        // mutex, never by this counter.
        self.depth.store(state.queue.len(), Ordering::Release);
    }
}

/// The error returned by [`Sender::send`] when the [`Receiver`] is gone or
/// the channel was [shut down](Sender::shutdown); carries the rejected
/// value so the caller can recover it.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel (receiver gone or shut down)")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The error returned by [`Sender::send_timeout`]; every variant carries
/// the rejected value so retry loops can re-offer it without a clone.
#[derive(PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The tick budget ran out while the ring stayed full.  Retryable:
    /// the receiver is still alive.
    TimedOut(T),
    /// The receiver is gone or the channel was shut down.  Not retryable.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_value(self) -> T {
        match self {
            SendTimeoutError::TimedOut(value) | SendTimeoutError::Disconnected(value) => value,
        }
    }

    /// `true` for the retryable [`SendTimeoutError::TimedOut`] case.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(self, SendTimeoutError::TimedOut(_))
    }
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::TimedOut(_) => f.write_str("SendTimeoutError::TimedOut(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("SendTimeoutError::Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::TimedOut(_) => f.write_str("send timed out on a full channel"),
            SendTimeoutError::Disconnected(_) => {
                f.write_str("sending on a closed channel (receiver gone or shut down)")
            }
        }
    }
}

impl<T> std::error::Error for SendTimeoutError<T> {}

/// Why [`Receiver::recv`] returned no value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// Every [`Sender`] was dropped and the queue is fully drained — the
    /// stream's natural end.  Sticky: all later calls return it too.
    Disconnected,
    /// [`Sender::shutdown`] closed the channel: the backlog was discarded
    /// and the consumer should abandon its stream.  Sticky.
    Shutdown,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Disconnected => f.write_str("receiving on a channel with no senders left"),
            RecvError::Shutdown => f.write_str("receiving on a channel closed by shutdown"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Why [`Receiver::recv_timeout`] returned no value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The tick budget ran out while the queue stayed empty.  Retryable:
    /// senders are still connected.
    TimedOut,
    /// Every [`Sender`] was dropped and the queue is fully drained.
    Disconnected,
    /// [`Sender::shutdown`] closed the channel.
    Shutdown,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::TimedOut => f.write_str("recv timed out on an empty channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on a channel with no senders left")
            }
            RecvTimeoutError::Shutdown => f.write_str("receiving on a channel closed by shutdown"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The producer half of a [`bounded`] channel.  Cloneable: any number of
/// threads may feed the same receiver.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the value when the receiver has been dropped or the channel
    /// was [shut down](Sender::shutdown).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.shutdown || !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.sync_depth(&state);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Enqueues `value`, waiting at most `ticks` bounded wait rounds (each
    /// of at most [`TICK`]) for a slot.  `ticks == 0` is a pure try.
    ///
    /// Every wait round counts against the budget whether it expired or
    /// was woken early, so the call is bounded in *rounds*, deterministically,
    /// rather than in wall-clock time.
    ///
    /// # Errors
    ///
    /// [`SendTimeoutError::TimedOut`] (retryable — see [`Backoff`]) when
    /// the budget ran out, [`SendTimeoutError::Disconnected`] when the
    /// receiver is gone or the channel was shut down.  Both return the
    /// value.
    pub fn send_timeout(&self, value: T, ticks: u32) -> Result<(), SendTimeoutError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        let mut remaining = ticks;
        loop {
            if state.shutdown || !state.receiver_alive {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.sync_depth(&state);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            if remaining == 0 {
                return Err(SendTimeoutError::TimedOut(value));
            }
            remaining -= 1;
            state = self.shared.not_full.wait_timeout(state, TICK).unwrap().0;
        }
    }

    /// Enqueues `value` only if a slot is free right now.
    ///
    /// # Errors
    ///
    /// Returns the value when the channel is full, the receiver is gone,
    /// or the channel was shut down (`full` distinguishes a full ring from
    /// the two closed cases).
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown || !state.receiver_alive {
            return Err(TrySendError { value, full: false });
        }
        if state.queue.len() == self.shared.capacity {
            return Err(TrySendError { value, full: true });
        }
        state.queue.push_back(value);
        self.shared.sync_depth(&state);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Closes the channel by explicit shutdown: the backlog is discarded,
    /// a (possibly blocked) [`Receiver::recv`] returns
    /// [`RecvError::Shutdown`], and every subsequent send fails.
    ///
    /// Idempotent, and any sender clone may call it — the service's
    /// supervisor uses this to abort healthy workers promptly when a
    /// sibling crash is unrecoverable, instead of letting them drain a
    /// backlog whose results will be thrown away.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return;
        }
        state.shutdown = true;
        state.queue.clear();
        self.shared.sync_depth(&state);
        drop(state);
        // Both sides may be blocked: the receiver on an empty queue, other
        // senders on a full one.  Wake everyone to observe the shutdown.
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Number of items currently queued, from the producer side.
    ///
    /// Lock-free (see [`Receiver::len`]); the service's admission-control
    /// path reads this to observe standing queue pressure without touching
    /// the transfer lock.
    #[must_use]
    pub fn len(&self) -> usize {
        // ordering: Acquire pairs with the Release stores in `sync_depth`;
        // a monitoring read — no queue memory is accessed on the strength
        // of the returned value.
        self.shared.depth.load(Ordering::Acquire)
    }

    /// `true` when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the ring currently holds `capacity` items (a send now
    /// would block, time out or shed).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() == self.shared.capacity
    }

    /// The channel's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake a receiver blocked on an empty queue so it can observe
            // the disconnect and return `RecvError::Disconnected`.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The error returned by [`Sender::try_send`]; carries the rejected value.
#[derive(PartialEq, Eq)]
pub struct TrySendError<T> {
    /// The value that could not be enqueued.
    pub value: T,
    /// `true` when the channel was full, `false` when it is closed (the
    /// receiver is gone or [`Sender::shutdown`] was called).
    pub full: bool,
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrySendError")
            .field("full", &self.full)
            .finish_non_exhaustive()
    }
}

/// The consumer half of a [`bounded`] channel.  Not cloneable — exactly one
/// thread drains the ring, which is what lets the service keep its shards
/// lock-free.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next item, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] once every sender has been dropped and
    /// the queue is drained (the stream's natural end), or
    /// [`RecvError::Shutdown`] when the channel was closed by
    /// [`Sender::shutdown`] (the backlog is gone; abandon the stream).
    /// Both are sticky.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.shutdown {
                return Err(RecvError::Shutdown);
            }
            if let Some(value) = state.queue.pop_front() {
                self.shared.sync_depth(&state);
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Dequeues the next item, waiting at most `ticks` bounded wait rounds
    /// (each of at most [`TICK`]).  `ticks == 0` is a pure try.  Like
    /// [`Sender::send_timeout`], the budget bounds wait *rounds*, not
    /// wall-clock time.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::TimedOut`] (retryable) when the budget ran out,
    /// otherwise the sticky [`RecvTimeoutError::Disconnected`] /
    /// [`RecvTimeoutError::Shutdown`] cases of [`Receiver::recv`].
    pub fn recv_timeout(&self, ticks: u32) -> Result<T, RecvTimeoutError> {
        let mut state = self.shared.state.lock().unwrap();
        let mut remaining = ticks;
        loop {
            if state.shutdown {
                return Err(RecvTimeoutError::Shutdown);
            }
            if let Some(value) = state.queue.pop_front() {
                self.shared.sync_depth(&state);
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            if remaining == 0 {
                return Err(RecvTimeoutError::TimedOut);
            }
            remaining -= 1;
            state = self.shared.not_empty.wait_timeout(state, TICK).unwrap().0;
        }
    }

    /// Dequeues the next item only if one is ready right now; never blocks
    /// and never distinguishes end-of-stream (use [`Receiver::recv`] for
    /// that).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap();
        let value = state.queue.pop_front();
        if value.is_some() {
            self.shared.sync_depth(&state);
        }
        drop(state);
        if value.is_some() {
            self.shared.not_full.notify_one();
        }
        value
    }

    /// Number of items currently queued.
    ///
    /// Lock-free: reads an atomic mirror of the queue length, so
    /// monitoring never contends with `send`/`recv`.  Exact whenever the
    /// channel is quiescent; during concurrent transfers the value is a
    /// consistent recent snapshot (every mutation path refreshes the
    /// mirror before releasing the state lock via the internal `sync_depth`
    /// helper).
    #[must_use]
    pub fn len(&self) -> usize {
        // ordering: Acquire pairs with the Release stores in `sync_depth`;
        // a monitoring read — no queue memory is accessed on the strength
        // of the returned value.
        self.shared.depth.load(Ordering::Acquire)
    }

    /// `true` when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receiver_alive = false;
        // Unsent items are dropped with the queue; senders blocked on a
        // full ring must wake up to observe the disconnect.
        state.queue.clear();
        self.shared.sync_depth(&state);
        drop(state);
        self.shared.not_full.notify_all();
    }
}

/// A deterministic bounded exponential backoff schedule, in virtual ticks.
///
/// Produces the tick budgets `start, 2·start, 4·start, …` capped at `max`
/// — the retry discipline the service's router uses around
/// [`Sender::send_timeout`]: each failed offer waits a (deterministically)
/// longer bounded interval before the next, so a stalled worker is probed
/// with geometrically decreasing frequency instead of being hammered, and
/// a crashed worker is still detected promptly (every expiry re-checks the
/// disconnect state).
///
/// ```
/// use ccd_common::channel::Backoff;
/// let mut backoff = Backoff::new(1, 8);
/// let budgets: Vec<u32> = (0..6).map(|_| backoff.next_ticks()).collect();
/// assert_eq!(budgets, [1, 2, 4, 8, 8, 8]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Backoff {
    next: u32,
    max: u32,
}

impl Backoff {
    /// A schedule starting at `start` ticks and doubling up to `max`.
    ///
    /// # Panics
    ///
    /// Panics when `start` is zero or `max < start` — a zero-tick schedule
    /// would spin without ever waiting.
    #[must_use]
    pub const fn new(start: u32, max: u32) -> Self {
        assert!(start > 0, "backoff must start at a non-zero tick budget");
        assert!(max >= start, "backoff cap must be at least the start");
        Backoff { next: start, max }
    }

    /// Returns the next tick budget and advances the schedule.
    pub fn next_ticks(&mut self) -> u32 {
        let ticks = self.next;
        self.next = self.next.saturating_mul(2).min(self.max);
        ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_in_fifo_order() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(tx.len(), 2);
        assert!(tx.is_full());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.is_empty());
        assert!(tx.is_empty());
        assert_eq!(rx.capacity(), 2);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn try_send_reports_a_full_ring() {
        let (tx, rx) = bounded(1);
        tx.try_send(7).unwrap();
        let err = tx.try_send(8).unwrap_err();
        assert!(err.full);
        assert_eq!(err.value, 8);
        assert_eq!(rx.try_recv(), Some(7));
        assert_eq!(rx.try_recv(), None);
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv(), Ok(9));
    }

    #[test]
    fn try_send_succeeds_again_after_a_full_ring_drains() {
        // Full → rejected → drained → accepted, and the depth mirror
        // tracks every transition exactly.
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(tx.is_full());
        assert!(tx.try_send(3).unwrap_err().full);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(tx.len(), 1);
        assert!(!tx.is_full());
        tx.try_send(3).unwrap();
        assert!(tx.is_full());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.len(), 0);
    }

    #[test]
    fn dropping_all_senders_ends_the_stream_after_draining() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
        assert_eq!(
            rx.recv(),
            Err(RecvError::Disconnected),
            "end-of-stream is sticky"
        );
    }

    #[test]
    fn dropping_the_receiver_fails_senders() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        drop(rx);
        let err = tx.send(2).unwrap_err();
        assert_eq!(err.0, 2);
        let err = tx.try_send(3).unwrap_err();
        assert!(!err.full);
        assert_eq!(
            tx.send_timeout(4, 10).unwrap_err(),
            SendTimeoutError::Disconnected(4)
        );
    }

    #[test]
    fn backpressure_blocks_until_the_consumer_drains() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).unwrap();
        let producer = std::thread::spawn(move || {
            // Each of these blocks until the consumer frees a slot.
            for i in 1..=100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut received = Vec::new();
        while let Ok(v) = rx.recv() {
            received.push(v);
        }
        producer.join().unwrap();
        assert_eq!(received, (0..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn a_sender_blocked_on_a_full_ring_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(blocked.join().unwrap().is_err());
    }

    #[test]
    fn send_timeout_expires_on_a_full_ring_and_returns_the_value() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        // Zero ticks: a pure try.
        assert_eq!(
            tx.send_timeout(2, 0).unwrap_err(),
            SendTimeoutError::TimedOut(2)
        );
        // A small budget still expires while nothing drains.
        let err = tx.send_timeout(2, 3).unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(err.into_value(), 2);
        // After a drain the same send goes through within the budget.
        assert_eq!(rx.recv(), Ok(1));
        tx.send_timeout(2, 3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires_empty_and_sees_items_disconnects_and_shutdown() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.recv_timeout(0), Err(RecvTimeoutError::TimedOut));
        assert_eq!(rx.recv_timeout(2), Err(RecvTimeoutError::TimedOut));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(0), Ok(5));
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(6).unwrap();
        drop(tx2);
        assert_eq!(rx.recv_timeout(1), Ok(6));
        assert_eq!(rx.recv_timeout(1), Err(RecvTimeoutError::Disconnected));

        let (tx, rx) = bounded::<u32>(2);
        tx.shutdown();
        assert_eq!(rx.recv_timeout(5), Err(RecvTimeoutError::Shutdown));
    }

    #[test]
    fn shutdown_discards_the_backlog_and_is_sticky_on_both_sides() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.shutdown();
        tx.shutdown(); // idempotent
        assert_eq!(rx.len(), 0, "the backlog is discarded, mirror included");
        assert_eq!(rx.recv(), Err(RecvError::Shutdown));
        assert_eq!(rx.recv(), Err(RecvError::Shutdown), "shutdown is sticky");
        assert!(rx.try_recv().is_none());
        let err = tx.send(3).unwrap_err();
        assert_eq!(err.0, 3);
        assert!(!tx.try_send(4).unwrap_err().full);
        assert_eq!(
            tx.send_timeout(5, 2).unwrap_err(),
            SendTimeoutError::Disconnected(5)
        );
    }

    #[test]
    fn shutdown_wakes_a_blocked_receiver_and_a_blocked_sender() {
        let (tx, rx) = bounded::<u32>(1);
        let receiver = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.shutdown();
        assert_eq!(receiver.join().unwrap(), Err(RecvError::Shutdown));

        let (tx, rx) = bounded::<u32>(1);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx2.shutdown(); // any sender clone may order the shutdown
        let err = blocked.join().unwrap().unwrap_err();
        assert_eq!(err.0, 2);
        drop(rx);
    }

    #[test]
    fn recv_after_last_sender_drop_distinguishes_disconnect_from_shutdown() {
        let (tx, rx) = bounded::<u32>(2);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));

        let (tx, rx) = bounded::<u32>(2);
        tx.shutdown();
        drop(tx);
        // Shutdown wins even after the senders are gone: the consumer must
        // know the backlog was discarded rather than drained.
        assert_eq!(rx.recv(), Err(RecvError::Shutdown));
    }

    #[test]
    fn timeout_interleaving_smoke_delivers_every_item_exactly_once() {
        // A loom-style stress: three producers using only the bounded
        // timeout+retry path, one consumer using only recv_timeout, over a
        // deliberately tiny ring.  Every value must arrive exactly once.
        // (CI also runs this under ThreadSanitizer; the count shrinks under
        // Miri's interpreter like the statistical tests elsewhere.)
        const PRODUCERS: u64 = 3;
        #[cfg(not(miri))]
        const PER_PRODUCER: u64 = 200;
        #[cfg(miri)]
        const PER_PRODUCER: u64 = 20;
        let (tx, rx) = bounded::<u64>(2);
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut value = p * PER_PRODUCER + i;
                    let mut backoff = Backoff::new(1, 8);
                    loop {
                        match tx.send_timeout(value, backoff.next_ticks()) {
                            Ok(()) => break,
                            Err(SendTimeoutError::TimedOut(v)) => value = v,
                            Err(SendTimeoutError::Disconnected(_)) => {
                                panic!("receiver vanished mid-stream")
                            }
                        }
                    }
                }
            }));
        }
        drop(tx);
        let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
        loop {
            match rx.recv_timeout(2) {
                Ok(v) => {
                    assert!(!seen[v as usize], "value {v} delivered twice");
                    seen[v as usize] = true;
                }
                Err(RecvTimeoutError::TimedOut) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Shutdown) => panic!("nothing shut this channel down"),
            }
        }
        for handle in producers {
            handle.join().unwrap();
        }
        assert!(seen.iter().all(|&s| s), "every value arrives exactly once");
    }

    #[test]
    fn backoff_doubles_and_saturates_at_the_cap() {
        let mut backoff = Backoff::new(2, 16);
        let budgets: Vec<u32> = (0..6).map(|_| backoff.next_ticks()).collect();
        assert_eq!(budgets, [2, 4, 8, 16, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u32>(0);
    }

    #[test]
    #[should_panic(expected = "non-zero tick budget")]
    fn zero_start_backoff_is_rejected() {
        let _ = Backoff::new(0, 4);
    }
}
