//! Bounded multi-producer/single-consumer channels with blocking
//! backpressure.
//!
//! The directory service (`ccd-service`) moves batches of coherence
//! requests from an ingestion frontend to shard-owning worker threads over
//! these channels.  The send/recv semantics are deliberately close to
//! `std::sync::mpsc::sync_channel` — which would also work — but the
//! service's determinism contract *depends* on the exact channel behavior,
//! so the primitive lives in-tree where its load-bearing properties are
//! pinned by this module's own tests rather than inherited implicitly:
//!
//! * **bounded backpressure** — [`Sender::send`] *blocks* when the ring is
//!   full, which is what turns an open-loop generator into a closed-loop
//!   one: the producer runs exactly as fast as the consumer drains;
//! * **FIFO per channel** — the order a worker observes is exactly the
//!   order the router sent (the service's bit-identity argument);
//! * **observable shutdown** — dropping the [`Receiver`] clears the
//!   backlog and fails every subsequent (and blocked) `send`, returning
//!   the rejected value; dropping the last [`Sender`] drains the queue and
//!   then ends [`Receiver::recv`] with `None` — no sentinel messages;
//! * **introspection** — queue depth and capacity are observable
//!   ([`Receiver::len`], [`Receiver::capacity`]), which the tests (and
//!   service diagnostics) use to assert occupancy directly.  Depth reads
//!   are lock-free (a relaxed atomic mirror of the queue length), so
//!   monitoring never contends with the transfer path.
//!
//! The implementation is a fixed-capacity ring (`VecDeque` that never grows
//! past its capacity) behind one mutex and two condition variables; `send`
//! and `recv` are each one lock acquisition in the un-contended fast path.
//! The sender count and receiver liveness flag deliberately stay *inside*
//! the mutex rather than becoming atomics: the blocked-side checks
//! (`recv` testing `senders == 0`, `send` testing `receiver_alive`) must
//! happen while holding the lock the condvar re-acquires, or a disconnect
//! between the check and the wait would be a classic lost wakeup.
//!
//! ```
//! use ccd_common::channel::bounded;
//!
//! let (tx, rx) = bounded::<u32>(4);
//! let producer = std::thread::spawn(move || {
//!     for i in 0..100 {
//!         tx.send(i).expect("receiver alive");
//!     }
//! });
//! let sum: u32 = std::iter::from_fn(|| rx.recv()).sum();
//! producer.join().unwrap();
//! assert_eq!(sum, (0..100).sum());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Creates a bounded channel able to hold up to `capacity` in-flight items.
///
/// # Panics
///
/// Panics when `capacity` is zero — a zero-slot ring could never transfer
/// an item (rendezvous semantics are deliberately unsupported; the service
/// always wants at least one batch of pipelining between producer and
/// consumer).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be non-zero");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        depth: AtomicUsize::new(0),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Lock-free mirror of `state.queue.len()`, maintained while holding
    /// the mutex and read without it ([`Receiver::len`]).  Advisory only:
    /// nothing synchronizes through it.
    depth: AtomicUsize,
    capacity: usize,
}

/// The error returned by [`Sender::send`] when the [`Receiver`] is gone;
/// carries the rejected value so the caller can recover it.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel whose receiver is gone")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The producer half of a [`bounded`] channel.  Cloneable: any number of
/// threads may feed the same receiver.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the value when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                let depth = state.queue.len();
                // ordering: Relaxed suffices — the mirror is advisory
                // introspection updated under the mutex; the queue itself
                // is published by the mutex release, never by this counter.
                self.shared.depth.store(depth, Ordering::Relaxed);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Enqueues `value` only if a slot is free right now.
    ///
    /// # Errors
    ///
    /// Returns the value when the channel is full or the receiver is gone
    /// (`full` distinguishes the two).
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.receiver_alive {
            return Err(TrySendError { value, full: false });
        }
        if state.queue.len() == self.shared.capacity {
            return Err(TrySendError { value, full: true });
        }
        state.queue.push_back(value);
        let depth = state.queue.len();
        // ordering: Relaxed suffices — advisory mirror, see `Sender::send`.
        self.shared.depth.store(depth, Ordering::Relaxed);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake a receiver blocked on an empty queue so it can observe
            // the disconnect and return `None`.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The error returned by [`Sender::try_send`]; carries the rejected value.
#[derive(PartialEq, Eq)]
pub struct TrySendError<T> {
    /// The value that could not be enqueued.
    pub value: T,
    /// `true` when the channel was full, `false` when the receiver is gone.
    pub full: bool,
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrySendError")
            .field("full", &self.full)
            .finish_non_exhaustive()
    }
}

/// The consumer half of a [`bounded`] channel.  Not cloneable — exactly one
/// thread drains the ring, which is what lets the service keep its shards
/// lock-free.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next item, blocking while the channel is empty.
    /// Returns `None` once every sender has been dropped and the queue is
    /// drained — the channel's end-of-stream marker.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                let depth = state.queue.len();
                // ordering: Relaxed suffices — advisory mirror updated
                // under the mutex, see `Sender::send`.
                self.shared.depth.store(depth, Ordering::Relaxed);
                drop(state);
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Dequeues the next item only if one is ready right now; never blocks
    /// and never signals end-of-stream (use [`Receiver::recv`] for that).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap();
        let value = state.queue.pop_front();
        if value.is_some() {
            let depth = state.queue.len();
            // ordering: Relaxed suffices — advisory mirror updated under
            // the mutex, see `Sender::send`.
            self.shared.depth.store(depth, Ordering::Relaxed);
        }
        drop(state);
        if value.is_some() {
            self.shared.not_full.notify_one();
        }
        value
    }

    /// Number of items currently queued.
    ///
    /// Lock-free: reads an atomic mirror of the queue length, so
    /// monitoring never contends with `send`/`recv`.  Exact whenever the
    /// channel is quiescent; during concurrent transfers the value is a
    /// consistent recent snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        // ordering: Relaxed suffices — a monitoring read; no memory is
        // accessed on the strength of the returned value.
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// `true` when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receiver_alive = false;
        // Unsent items are dropped with the queue; senders blocked on a
        // full ring must wake up to observe the disconnect.
        state.queue.clear();
        // ordering: Relaxed suffices — advisory mirror, see `Sender::send`.
        self.shared.depth.store(0, Ordering::Relaxed);
        drop(state);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_in_fifo_order() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert!(rx.is_empty());
        assert_eq!(rx.capacity(), 2);
    }

    #[test]
    fn try_send_reports_a_full_ring() {
        let (tx, rx) = bounded(1);
        tx.try_send(7).unwrap();
        let err = tx.try_send(8).unwrap_err();
        assert!(err.full);
        assert_eq!(err.value, 8);
        assert_eq!(rx.try_recv(), Some(7));
        assert_eq!(rx.try_recv(), None);
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv(), Some(9));
    }

    #[test]
    fn dropping_all_senders_ends_the_stream_after_draining() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "end-of-stream is sticky");
    }

    #[test]
    fn dropping_the_receiver_fails_senders() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        drop(rx);
        let err = tx.send(2).unwrap_err();
        assert_eq!(err.0, 2);
        let err = tx.try_send(3).unwrap_err();
        assert!(!err.full);
    }

    #[test]
    fn backpressure_blocks_until_the_consumer_drains() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).unwrap();
        let producer = std::thread::spawn(move || {
            // Each of these blocks until the consumer frees a slot.
            for i in 1..=100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut received = Vec::new();
        while let Some(v) = rx.recv() {
            received.push(v);
        }
        producer.join().unwrap();
        assert_eq!(received, (0..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn a_sender_blocked_on_a_full_ring_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(blocked.join().unwrap().is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u32>(0);
    }
}
