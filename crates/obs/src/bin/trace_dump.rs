//! `trace_dump` — pretty-print a recorded flight-recorder ring.
//!
//! ```text
//! trace_dump <recording.bin> [...]
//! ```
//!
//! Reads files produced by serializing a [`FlightRecording`]
//! (`bench_obs` writes one under the results directory) and prints each
//! event with its virtual-time stamp, kind, lane and argument.  Exits
//! non-zero on unreadable or corrupt input.
//!
//! [`FlightRecording`]: ccd_obs::FlightRecording

use ccd_obs::FlightRecording;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_dump <recording.bin> [...]");
        return ExitCode::FAILURE;
    }
    let mut status = ExitCode::SUCCESS;
    for path in &paths {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) => {
                eprintln!("trace_dump: {path}: {err}");
                status = ExitCode::FAILURE;
                continue;
            }
        };
        match FlightRecording::from_bytes(&bytes) {
            Ok(recording) => {
                println!("== {path} (digest {:016x}) ==", recording.digest());
                print!("{}", recording.render_text());
            }
            Err(err) => {
                eprintln!("trace_dump: {path}: {err}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}
