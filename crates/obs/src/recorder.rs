//! The virtual-time flight recorder.
//!
//! A [`FlightRecorder`] is a fixed-capacity ring of compact binary events.
//! Every event is stamped with *virtual time* — a request sequence number,
//! recovery epoch, or shard-apply tick supplied by the instrumented code —
//! never wall-clock time, so a recording of a deterministic run is itself
//! bit-reproducible: same config, same recording bytes, on every machine.
//!
//! The steady state allocates nothing: the ring is sized once at
//! construction and recording one event is two word writes plus a counter
//! bump.  When the ring wraps, the oldest events are overwritten — a flight
//! recorder keeps the *last* `capacity` events, which is what post-mortems
//! want.
//!
//! Events pack into two `u64` words:
//!
//! ```text
//! word 0: | kind (8 bits) | lane (16 bits) | virtual time (40 bits) |
//! word 1: | argument (64 bits)                                     |
//! ```
//!
//! `lane` identifies the emitting entity within a worker (usually a global
//! shard index, or the worker index for router-side events); `argument`
//! carries the event-specific payload (batch length, new set count, replayed
//! request count, …).

use ccd_common::{ConfigError, Fnv64};

/// Bits of virtual time an event can carry (wider stamps are truncated).
pub const VTIME_BITS: u32 = 40;

const VTIME_MASK: u64 = (1 << VTIME_BITS) - 1;
const MAGIC: u64 = u64::from_le_bytes(*b"CCDOBS01");

/// The kinds of events the service stack records.
///
/// Discriminants are part of the recording byte format; append new kinds,
/// never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// The router handed a batch to a worker (`lane` = worker, arg = len).
    BatchRouted = 1,
    /// A worker applied a batch (`lane` = worker, arg = len).
    BatchApplied = 2,
    /// The admission gate shed a batch offer (`lane` = worker, arg = len).
    Shed = 3,
    /// A worker crashed (`lane` = worker, arg = recovery epoch).
    Crash = 4,
    /// The supervisor recovered a worker (`lane` = worker, arg = epoch).
    Recovery = 5,
    /// A shard resized (`lane` = global shard, arg = new set count).
    ResizeFired = 6,
    /// A journal replay re-applied requests (`lane` = worker, arg = count).
    JournalReplay = 7,
    /// A span opened (`lane`/arg defined by the span site).
    SpanBegin = 8,
    /// A span closed, paired with the [`EventKind::SpanBegin`] sharing its
    /// lane and argument.
    SpanEnd = 9,
}

impl EventKind {
    fn from_u8(raw: u8) -> Option<EventKind> {
        Some(match raw {
            1 => EventKind::BatchRouted,
            2 => EventKind::BatchApplied,
            3 => EventKind::Shed,
            4 => EventKind::Crash,
            5 => EventKind::Recovery,
            6 => EventKind::ResizeFired,
            7 => EventKind::JournalReplay,
            8 => EventKind::SpanBegin,
            9 => EventKind::SpanEnd,
            _ => return None,
        })
    }

    /// The event name used by [`FlightRecording::render_text`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BatchRouted => "batch-routed",
            EventKind::BatchApplied => "batch-applied",
            EventKind::Shed => "shed",
            EventKind::Crash => "crash",
            EventKind::Recovery => "recovery",
            EventKind::ResizeFired => "resize-fired",
            EventKind::JournalReplay => "journal-replay",
            EventKind::SpanBegin => "span-begin",
            EventKind::SpanEnd => "span-end",
        }
    }
}

/// One packed event: see the module docs for the layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RawEvent([u64; 2]);

impl RawEvent {
    /// Packs an event.  `vtime` keeps its low [`VTIME_BITS`] bits.
    #[must_use]
    pub fn pack(kind: EventKind, lane: u16, vtime: u64, arg: u64) -> RawEvent {
        let word0 = ((kind as u64) << 56) | (u64::from(lane) << VTIME_BITS) | (vtime & VTIME_MASK);
        RawEvent([word0, arg])
    }

    /// The event kind, or `None` for a corrupt word.
    #[must_use]
    pub fn kind(self) -> Option<EventKind> {
        EventKind::from_u8((self.0[0] >> 56) as u8)
    }

    /// The emitting lane (global shard or worker index).
    #[must_use]
    pub fn lane(self) -> u16 {
        (self.0[0] >> VTIME_BITS) as u16
    }

    /// The virtual-time stamp (low [`VTIME_BITS`] bits of the original).
    #[must_use]
    pub fn vtime(self) -> u64 {
        self.0[0] & VTIME_MASK
    }

    /// The event argument.
    #[must_use]
    pub fn arg(self) -> u64 {
        self.0[1]
    }

    const fn words(self) -> [u64; 2] {
        self.0
    }
}

/// A fixed-capacity, overwrite-oldest ring of [`RawEvent`]s.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: Vec<RawEvent>,
    next: u64,
    spans: bool,
}

impl FlightRecorder {
    /// Creates a recorder holding the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a non-zero power of two (the spec
    /// grammar guarantees this for parsed configs).
    #[must_use]
    pub fn new(capacity: usize, spans: bool) -> FlightRecorder {
        assert!(
            capacity.is_power_of_two(),
            "flight-recorder capacity must be a power of two, got {capacity}"
        );
        FlightRecorder {
            ring: vec![RawEvent::default(); capacity],
            next: 0,
            spans,
        }
    }

    /// The ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Total events ever recorded (may exceed capacity once wrapped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next
    }

    /// Whether span events are armed.
    #[must_use]
    pub fn spans(&self) -> bool {
        self.spans
    }

    /// Records one instant event.  Never allocates.
    pub fn record(&mut self, kind: EventKind, lane: u16, vtime: u64, arg: u64) {
        let slot = (self.next & (self.ring.len() as u64 - 1)) as usize;
        self.ring[slot] = RawEvent::pack(kind, lane, vtime, arg);
        self.next += 1;
    }

    /// Records a span opening, if spans are armed.
    pub fn span_begin(&mut self, lane: u16, vtime: u64, arg: u64) {
        if self.spans {
            self.record(EventKind::SpanBegin, lane, vtime, arg);
        }
    }

    /// Records a span close, if spans are armed.
    pub fn span_end(&mut self, lane: u16, vtime: u64, arg: u64) {
        if self.spans {
            self.record(EventKind::SpanEnd, lane, vtime, arg);
        }
    }

    /// Snapshots the ring into a chronological (oldest-first) recording.
    #[must_use]
    pub fn finish(&self) -> FlightRecording {
        let capacity = self.ring.len() as u64;
        let retained = self.next.min(capacity);
        let start = self.next - retained;
        let events = (start..self.next)
            .map(|i| self.ring[(i & (capacity - 1)) as usize])
            .collect();
        FlightRecording {
            capacity,
            recorded: self.next,
            events,
        }
    }
}

/// A chronological snapshot of a [`FlightRecorder`] ring, with a stable
/// binary serialization for post-mortem tooling (`trace_dump`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecording {
    /// The ring capacity the recorder ran with.
    pub capacity: u64,
    /// Total events recorded over the run (retained = `events.len()`).
    pub recorded: u64,
    /// The retained events, oldest first.
    pub events: Vec<RawEvent>,
}

impl FlightRecording {
    /// Serializes the recording: a magic word, the header, then the packed
    /// events, all little-endian `u64`s.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (4 + 2 * self.events.len()));
        for word in [
            MAGIC,
            self.capacity,
            self.recorded,
            self.events.len() as u64,
        ] {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for event in &self.events {
            for word in event.words() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out
    }

    /// Parses bytes produced by [`FlightRecording::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] on truncation, a bad magic word, or an event
    /// with an unknown kind.
    pub fn from_bytes(bytes: &[u8]) -> Result<FlightRecording, ConfigError> {
        let mut words = bytes.chunks_exact(8).map(|c| {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            u64::from_le_bytes(word)
        });
        if !bytes.len().is_multiple_of(8) {
            return Err(ConfigError::parse(
                "flight recording truncated mid-word".to_string(),
            ));
        }
        let mut next = |what: &str| {
            words
                .next()
                .ok_or_else(|| ConfigError::parse(format!("flight recording missing {what}")))
        };
        if next("magic")? != MAGIC {
            return Err(ConfigError::parse(
                "not a flight recording (bad magic)".to_string(),
            ));
        }
        let capacity = next("capacity")?;
        let recorded = next("recorded count")?;
        let count = next("event count")?;
        let mut events = Vec::with_capacity(count as usize);
        for i in 0..count {
            let word0 = next(&format!("event {i}"))?;
            let word1 = next(&format!("event {i} argument"))?;
            let event = RawEvent([word0, word1]);
            if event.kind().is_none() {
                return Err(ConfigError::parse(format!(
                    "flight recording event {i} has unknown kind {}",
                    word0 >> 56
                )));
            }
            events.push(event);
        }
        Ok(FlightRecording {
            capacity,
            recorded,
            events,
        })
    }

    /// An order-sensitive FNV digest of the full recording, for
    /// bit-reproducibility assertions.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut digest = Fnv64::new();
        digest.fold(self.capacity).fold(self.recorded);
        for event in &self.events {
            for word in event.words() {
                digest.fold(word);
            }
        }
        digest.finish()
    }

    /// Pretty-prints the recording, one event per line, for `trace_dump`.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "flight recording: {} events retained of {} recorded (ring {})\n",
            self.events.len(),
            self.recorded,
            self.capacity
        );
        for event in &self.events {
            let kind = event.kind().map_or("corrupt", EventKind::name);
            let _ = writeln!(
                out,
                "  vt={:>12} {:<14} lane={:<5} arg={}",
                event.vtime(),
                kind,
                event.lane(),
                event.arg()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pack_and_unpack_across_extremes() {
        for (kind, lane, vtime, arg) in [
            (EventKind::BatchRouted, 0u16, 0u64, 0u64),
            (EventKind::SpanEnd, u16::MAX, VTIME_MASK, u64::MAX),
            (EventKind::ResizeFired, 513, 1 << 39, 4096),
            // Virtual time wider than 40 bits truncates, nothing bleeds
            // into the lane or kind fields.
            (EventKind::Crash, 7, u64::MAX, 3),
        ] {
            let event = RawEvent::pack(kind, lane, vtime, arg);
            assert_eq!(event.kind(), Some(kind));
            assert_eq!(event.lane(), lane);
            assert_eq!(event.vtime(), vtime & VTIME_MASK);
            assert_eq!(event.arg(), arg);
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events_once_wrapped() {
        let mut rec = FlightRecorder::new(4, false);
        for i in 0..10u64 {
            rec.record(EventKind::BatchApplied, 1, i, i * 100);
        }
        let recording = rec.finish();
        assert_eq!(recording.recorded, 10);
        assert_eq!(recording.capacity, 4);
        let vtimes: Vec<u64> = recording.events.iter().map(|e| e.vtime()).collect();
        assert_eq!(vtimes, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn span_events_are_noops_unless_armed() {
        let mut disarmed = FlightRecorder::new(8, false);
        disarmed.span_begin(1, 10, 0);
        disarmed.span_end(1, 20, 0);
        assert_eq!(disarmed.recorded(), 0);

        let mut armed = FlightRecorder::new(8, true);
        armed.span_begin(1, 10, 42);
        armed.span_end(1, 20, 42);
        let events = armed.finish().events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), Some(EventKind::SpanBegin));
        assert_eq!(events[1].kind(), Some(EventKind::SpanEnd));
        assert_eq!(events[0].arg(), events[1].arg());
    }

    #[test]
    fn recordings_serialize_round_trip_and_digest_is_stable() {
        let mut rec = FlightRecorder::new(16, true);
        rec.record(EventKind::BatchRouted, 2, 100, 8);
        rec.record(EventKind::Crash, 2, 150, 1);
        rec.record(EventKind::Recovery, 2, 150, 1);
        rec.record(EventKind::JournalReplay, 2, 150, 37);
        let recording = rec.finish();
        let bytes = recording.to_bytes();
        let parsed = FlightRecording::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, recording);
        assert_eq!(parsed.digest(), recording.digest());
        // Any flipped word changes the digest.
        let mut tampered = recording.clone();
        tampered.events[0] = RawEvent::pack(EventKind::BatchRouted, 2, 101, 8);
        assert_ne!(tampered.digest(), recording.digest());
    }

    #[test]
    fn from_bytes_rejects_corrupt_input() {
        let mut rec = FlightRecorder::new(4, false);
        rec.record(EventKind::Shed, 0, 5, 8);
        let good = rec.finish().to_bytes();
        assert!(FlightRecording::from_bytes(&good[..good.len() - 3]).is_err());
        assert!(FlightRecording::from_bytes(&good[..16]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(FlightRecording::from_bytes(&bad_magic).is_err());
        let mut bad_kind = good.clone();
        bad_kind[39] = 0xEE; // the kind byte of event 0's word 0
        assert!(FlightRecording::from_bytes(&bad_kind).is_err());
        assert!(FlightRecording::from_bytes(&[]).is_err());
    }

    #[test]
    fn render_text_names_every_kind() {
        let mut rec = FlightRecorder::new(16, true);
        for (i, kind) in [
            EventKind::BatchRouted,
            EventKind::BatchApplied,
            EventKind::Shed,
            EventKind::Crash,
            EventKind::Recovery,
            EventKind::ResizeFired,
            EventKind::JournalReplay,
            EventKind::SpanBegin,
            EventKind::SpanEnd,
        ]
        .into_iter()
        .enumerate()
        {
            rec.record(kind, i as u16, i as u64, 0);
        }
        let text = rec.finish().render_text();
        for name in [
            "batch-routed",
            "batch-applied",
            "shed",
            "crash",
            "recovery",
            "resize-fired",
            "journal-replay",
            "span-begin",
            "span-end",
        ] {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
    }
}
