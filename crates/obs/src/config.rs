//! The `obs-…` spec grammar arming the observability layer.
//!
//! An [`ObsConfig`] is parsed and validated exactly like the workspace's
//! other spec strings (`DirectorySpec`, `faults-…`, `resize-…`):
//!
//! ```text
//! obs-sig3-ring4096-spans
//! └┬┘ └┬──┘ └───┬───┘ └┬──┘
//!  │   │        │      └ also record span begin/end events
//!  │   │        └ per-worker flight-recorder ring of 4096 events
//!  │   └ histogram resolution: 3 significant bits (<= 12.5% error)
//!  └ required prefix
//! ```
//!
//! Clause reference:
//!
//! | clause     | meaning                                                   |
//! |------------|-----------------------------------------------------------|
//! | `sig<B>`   | [`LogHistogram`] resolution in significant bits, `1..=8` (default 2) |
//! | `ring<N>`  | flight-recorder capacity in events (power of two); absent or 0 disables event recording |
//! | `spans`    | record span begin/end pairs in addition to instant events |
//!
//! Observation must never perturb semantics (contract #11), so the config
//! deliberately has no clause that could: there is no sampling, no
//! truncation of metric values, and no time source — events are stamped
//! with virtual time (request sequence numbers, epochs) supplied by the
//! instrumented code.
//!
//! [`LogHistogram`]: ccd_common::LogHistogram

use ccd_common::ConfigError;

/// The default histogram resolution when no `sig` clause is given.
pub const DEFAULT_SIG_BITS: u32 = 2;

/// The largest flight-recorder capacity a spec may request.  A cap keeps a
/// typo from allocating gigabytes of ring per worker.
pub const MAX_RING: usize = 1 << 24;

/// A parsed, validated observability spec.  See the module docs for the
/// grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    label: String,
    sig_bits: u32,
    ring: usize,
    spans: bool,
}

fn bad(spec: &str, clause: &str, expected: &str) -> ConfigError {
    ConfigError::parse(format!(
        "obs spec `{spec}`: clause `{clause}` must be `{expected}`"
    ))
}

impl ObsConfig {
    /// Parses an `obs-…` spec string.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending clause; rejected inputs
    /// include `sig` outside `1..=8`, a `ring` that is not a power of two,
    /// rings over [`MAX_RING`], and duplicate clauses.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let mut parts = spec.split('-');
        if parts.next() != Some("obs") {
            return Err(ConfigError::parse(format!(
                "obs spec `{spec}` must start with `obs`"
            )));
        }
        let mut sig_bits: Option<u32> = None;
        let mut ring: Option<usize> = None;
        let mut spans = false;
        for clause in parts {
            if let Some(rest) = clause.strip_prefix("sig") {
                let bits: u32 = rest.parse().map_err(|_| bad(spec, clause, "sig<bits>"))?;
                if !(1..=8).contains(&bits) {
                    return Err(ConfigError::parse(format!(
                        "obs spec `{spec}`: sig bits {bits} outside 1..=8"
                    )));
                }
                if sig_bits.replace(bits).is_some() {
                    return Err(ConfigError::parse(format!(
                        "obs spec `{spec}`: duplicate `sig` clause"
                    )));
                }
            } else if let Some(rest) = clause.strip_prefix("ring") {
                let events: usize = rest
                    .parse()
                    .map_err(|_| bad(spec, clause, "ring<events>"))?;
                if events != 0 && !events.is_power_of_two() {
                    return Err(ConfigError::parse(format!(
                        "obs spec `{spec}`: ring capacity {events} is not a power of two"
                    )));
                }
                if events > MAX_RING {
                    return Err(ConfigError::parse(format!(
                        "obs spec `{spec}`: ring capacity {events} exceeds the {MAX_RING} cap"
                    )));
                }
                if ring.replace(events).is_some() {
                    return Err(ConfigError::parse(format!(
                        "obs spec `{spec}`: duplicate `ring` clause"
                    )));
                }
            } else if clause == "spans" {
                if spans {
                    return Err(ConfigError::parse(format!(
                        "obs spec `{spec}`: duplicate `spans` clause"
                    )));
                }
                spans = true;
            } else {
                return Err(ConfigError::parse(format!(
                    "obs spec `{spec}`: unknown clause `{clause}`"
                )));
            }
        }
        let sig_bits = sig_bits.unwrap_or(DEFAULT_SIG_BITS);
        let ring = ring.unwrap_or(0);
        if spans && ring == 0 {
            return Err(ConfigError::parse(format!(
                "obs spec `{spec}`: `spans` requires a non-zero `ring`"
            )));
        }
        let label = render_label(sig_bits, ring, spans);
        Ok(ObsConfig {
            label,
            sig_bits,
            ring,
            spans,
        })
    }

    /// The canonical spec string (clauses in a fixed order), parseable back
    /// into an equal config.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Histogram resolution in significant bits (`1..=8`).
    #[must_use]
    pub fn sig_bits(&self) -> u32 {
        self.sig_bits
    }

    /// Flight-recorder capacity in events; 0 disables event recording.
    #[must_use]
    pub fn ring(&self) -> usize {
        self.ring
    }

    /// Whether span begin/end events are recorded.
    #[must_use]
    pub fn spans(&self) -> bool {
        self.spans
    }

    /// `true` when the config arms a flight recorder.
    #[must_use]
    pub fn records_events(&self) -> bool {
        self.ring > 0
    }

    /// Reads the `CCD_OBS` environment override.
    ///
    /// Unset means "not armed" (`Ok(None)`); anything set must parse.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending spec when the variable
    /// is set to something other than a valid `obs-…` string.
    pub fn from_env() -> Result<Option<Self>, ConfigError> {
        match std::env::var("CCD_OBS") {
            Ok(raw) => {
                let config = ObsConfig::parse(raw.trim()).map_err(|err| ConfigError::Parse {
                    what: format!("CCD_OBS: {err}"),
                })?;
                Ok(Some(config))
            }
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => Err(ConfigError::Parse {
                what: "CCD_OBS is not valid unicode".to_string(),
            }),
        }
    }
}

fn render_label(sig_bits: u32, ring: usize, spans: bool) -> String {
    let mut label = format!("obs-sig{sig_bits}");
    if ring > 0 {
        label.push_str(&format!("-ring{ring}"));
    }
    if spans {
        label.push_str("-spans");
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar_and_defaults() {
        let full = ObsConfig::parse("obs-sig3-ring4096-spans").unwrap();
        assert_eq!(full.sig_bits(), 3);
        assert_eq!(full.ring(), 4096);
        assert!(full.spans());
        assert!(full.records_events());
        assert_eq!(full.label(), "obs-sig3-ring4096-spans");

        let bare = ObsConfig::parse("obs").unwrap();
        assert_eq!(bare.sig_bits(), DEFAULT_SIG_BITS);
        assert_eq!(bare.ring(), 0);
        assert!(!bare.spans());
        assert!(!bare.records_events());
        assert_eq!(bare.label(), "obs-sig2");
    }

    #[test]
    fn labels_are_canonical_and_round_trip() {
        for spec in ["obs", "obs-ring1024", "obs-ring4096-spans", "obs-sig8"] {
            let config = ObsConfig::parse(spec).unwrap();
            let reparsed = ObsConfig::parse(config.label()).unwrap();
            assert_eq!(config, reparsed, "{spec}");
            assert_eq!(config.label(), reparsed.label(), "{spec}");
        }
        // Clause order is canonicalized.
        assert_eq!(
            ObsConfig::parse("obs-spans-ring16").unwrap().label(),
            "obs-sig2-ring16-spans"
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "observability",
            "obs-sig0",
            "obs-sig9",
            "obs-sigx",
            "obs-ring3",
            "obs-ring",
            "obs-ring99999999999",
            "obs-spans",
            "obs-sig2-sig3",
            "obs-ring8-ring8",
            "obs-ring8-spans-spans",
            "obs-what",
        ] {
            assert!(ObsConfig::parse(bad).is_err(), "{bad} should not parse");
        }
        assert!(ObsConfig::parse(&format!("obs-ring{}", MAX_RING * 2)).is_err());
    }

    #[test]
    fn obs_from_env_parses_and_quotes_bad_specs() {
        // The only test touching CCD_OBS, to avoid env races in the
        // parallel test harness.
        let saved = std::env::var("CCD_OBS").ok();
        std::env::remove_var("CCD_OBS");
        assert_eq!(ObsConfig::from_env().unwrap(), None);
        std::env::set_var("CCD_OBS", " obs-ring1024-spans ");
        assert_eq!(
            ObsConfig::from_env().unwrap().unwrap().label(),
            "obs-sig2-ring1024-spans"
        );
        std::env::set_var("CCD_OBS", "obs-bogus");
        let err = ObsConfig::from_env().unwrap_err();
        assert!(format!("{err}").contains("CCD_OBS"), "{err}");
        assert!(format!("{err}").contains("bogus"), "{err}");
        match saved {
            Some(value) => std::env::set_var("CCD_OBS", value),
            None => std::env::remove_var("CCD_OBS"),
        }
    }
}
