//! Metric exposition: deterministic JSON and Prometheus-style text.
//!
//! Both renderers consume a [`MetricSnapshot`] — an integer-only,
//! registration-ordered copy of a [`MetricSet`] — and emit nothing but
//! integers in a fixed field order, so equal snapshots render to
//! byte-identical strings.  This is what lets the service stack assert its
//! merged-metrics determinism contract at the *serialized* level: a serial
//! run and an N-worker run must produce the same bytes here, not merely
//! "equivalent" numbers.
//!
//! [`MetricSet`]: ccd_common::MetricSet

use ccd_common::{HistogramSnapshot, MetricSnapshot};
use std::fmt::Write as _;

/// Renders a snapshot as pretty-printed JSON.
///
/// Counters become an object (registration order), histograms an array of
/// objects with their quantile summary and non-empty `[upper_edge, count]`
/// buckets.
#[must_use]
pub fn render_json(snapshot: &MetricSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        let sep = if i + 1 < snapshot.counters.len() {
            ","
        } else {
            ""
        };
        let _ = write!(out, "\n    \"{name}\": {value}{sep}");
    }
    if snapshot.counters.is_empty() {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
    out.push_str("  \"histograms\": [");
    for (i, hist) in snapshot.histograms.iter().enumerate() {
        render_histogram_json(hist, &mut out);
        if i + 1 < snapshot.histograms.len() {
            out.push(',');
        }
    }
    if snapshot.histograms.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

fn render_histogram_json(hist: &HistogramSnapshot, out: &mut String) {
    let _ = write!(
        out,
        "\n    {{\n      \"name\": \"{}\",\n      \"sig_bits\": {},\n      \
         \"count\": {},\n      \"sum\": {},\n      \"min\": {},\n      \
         \"max\": {},\n      \"p50\": {},\n      \"p99\": {},\n      \
         \"p999\": {},\n      \"buckets\": [",
        hist.name,
        hist.sig_bits,
        hist.count,
        hist.sum,
        hist.min,
        hist.max,
        hist.p50,
        hist.p99,
        hist.p999
    );
    for (i, (upper, count)) in hist.buckets.iter().enumerate() {
        let sep = if i + 1 < hist.buckets.len() { "," } else { "" };
        let _ = write!(out, "[{upper}, {count}]{sep}");
    }
    out.push_str("]\n    }");
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters become `<prefix>_<name>` counter samples; each histogram
/// becomes a summary — `quantile`-labelled samples plus `_count`, `_sum`,
/// `_min` and `_max` — all integer-valued.
#[must_use]
pub fn render_prometheus(snapshot: &MetricSnapshot, prefix: &str) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {prefix}_{name} counter");
        let _ = writeln!(out, "{prefix}_{name} {value}");
    }
    for hist in &snapshot.histograms {
        let name = format!("{prefix}_{}", hist.name);
        let _ = writeln!(out, "# TYPE {name} summary");
        for (label, value) in [("0.5", hist.p50), ("0.99", hist.p99), ("0.999", hist.p999)] {
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {value}");
        }
        let _ = writeln!(out, "{name}_count {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_min {}", hist.min);
        let _ = writeln!(out, "{name}_max {}", hist.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::MetricSet;

    fn sample() -> MetricSnapshot {
        let mut set = MetricSet::new();
        let requests = set.counter("requests");
        let depth = set.histogram("probe_depth", 2);
        set.add(requests, 1000);
        for v in [1u64, 1, 2, 4, 9] {
            set.record(depth, v);
        }
        set.snapshot()
    }

    #[test]
    fn json_rendering_is_deterministic_and_structured() {
        let a = render_json(&sample());
        let b = render_json(&sample());
        assert_eq!(a, b, "equal snapshots must render byte-identically");
        assert!(a.contains("\"requests\": 1000"));
        assert!(a.contains("\"name\": \"probe_depth\""));
        assert!(a.contains("\"count\": 5"));
        assert!(a.contains("\"min\": 1"));
        assert!(a.contains("\"max\": 9"));
        // Valid-enough JSON: braces and brackets balance.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                a.matches(open).count(),
                a.matches(close).count(),
                "unbalanced {open}{close} in:\n{a}"
            );
        }
    }

    #[test]
    fn json_handles_empty_snapshots() {
        let empty = MetricSet::new().snapshot();
        let text = render_json(&empty);
        assert!(text.contains("\"counters\": {}"));
        assert!(text.contains("\"histograms\": []"));
    }

    #[test]
    fn prometheus_rendering_matches_the_text_format() {
        let text = render_prometheus(&sample(), "ccd");
        assert!(text.contains("# TYPE ccd_requests counter\nccd_requests 1000\n"));
        assert!(text.contains("# TYPE ccd_probe_depth summary"));
        assert!(text.contains("ccd_probe_depth{quantile=\"0.5\"} 2"));
        assert!(text.contains("ccd_probe_depth_count 5"));
        assert!(text.contains("ccd_probe_depth_min 1"));
        assert!(text.contains("ccd_probe_depth_max 9"));
        // Every non-comment line is `name[{labels}] integer`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "non-integer sample: {line}");
        }
    }
}
