//! Deterministic observability for the `cuckoo-directory` workspace.
//!
//! This crate is the service stack's flight-data layer: it says *where
//! displacement work and tail latency go* without ever perturbing what the
//! system computes.  Three pieces compose (contract #11 in
//! ARCHITECTURE.md — observation does not perturb semantics):
//!
//! * [`ObsConfig`] — the `obs-ring4096-spans` spec grammar that arms the
//!   layer, mirroring the workspace's fault/resize spec style, with a
//!   `CCD_OBS` environment override.
//! * [`FlightRecorder`] / [`FlightRecording`] — a fixed-capacity,
//!   zero-alloc ring of compact binary events stamped with *virtual time*
//!   (request sequence numbers, recovery epochs, shard-apply ticks — never
//!   wall-clock), so recordings of deterministic runs are bit-reproducible.
//! * [`expo`] — byte-deterministic JSON and Prometheus-style renderings of
//!   a [`MetricSnapshot`], the serialized form the service's merged-metrics
//!   determinism contract is asserted against.
//!
//! The histograms themselves ([`LogHistogram`], [`MetricSet`]) live in
//! `ccd_common::stats` next to `Counter`/`Histogram`; this crate holds
//! everything that *consumes* them.
//!
//! [`MetricSnapshot`]: ccd_common::MetricSnapshot
//! [`LogHistogram`]: ccd_common::LogHistogram
//! [`MetricSet`]: ccd_common::MetricSet

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod expo;
pub mod recorder;

pub use config::{ObsConfig, DEFAULT_SIG_BITS, MAX_RING};
pub use recorder::{EventKind, FlightRecorder, FlightRecording, RawEvent, VTIME_BITS};
