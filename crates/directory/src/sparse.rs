//! The Sparse directory — a conventional set-associative organization.
//!
//! The Sparse directory (Gupta et al., Section 3.2 of the paper) reduces the
//! associativity of the Duplicate-Tag design by "using the low-order tag
//! bits to extend the index of the directory storage".  Each entry carries
//! explicit sharer information because the one-to-one correspondence to
//! cache frames is lost.
//!
//! Its weakness — and the motivation for the Cuckoo directory — is the
//! non-uniform distribution of blocks across sets: when a set fills up, the
//! next insertion must evict a victim entry and *invalidate the victim's
//! block in every private cache that holds it*, even though those caches
//! had room for it.  Reducing the frequency of these forced invalidations
//! requires over-provisioning capacity (the `2×`/`8×` configurations of
//! Figure 12).

use crate::{Directory, DirectoryStats, Outcome, StorageProfile};
use ccd_common::{ceil_log2, ConfigError, LineAddr};
use ccd_sharers::SharerSet;

/// One valid directory entry: a block tag plus its sharer set.
#[derive(Clone, Debug)]
struct Entry<S> {
    line: LineAddr,
    sharers: S,
}

/// A set-associative (Sparse) coherence directory slice.
///
/// Entries are indexed by the low-order bits of the block number and placed
/// in one of `ways` slots per set, with least-recently-used replacement
/// among valid entries when the set is full.
#[derive(Clone, Debug)]
pub struct SparseDirectory<S: SharerSet> {
    ways: usize,
    sets: usize,
    num_caches: usize,
    slots: Vec<Option<Entry<S>>>,
    last_use: Vec<u64>,
    tick: u64,
    valid: usize,
    stats: DirectoryStats,
}

impl<S: SharerSet> SparseDirectory<S> {
    /// Creates a Sparse directory with `ways × sets` entries tracking
    /// `num_caches` private caches.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] if any parameter is zero,
    /// * [`ConfigError::NotPowerOfTwo`] if `sets` is not a power of two.
    pub fn new(ways: usize, sets: usize, num_caches: usize) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if num_caches == 0 {
            return Err(ConfigError::Zero {
                what: "cache count",
            });
        }
        if !ccd_common::is_power_of_two(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: sets as u64,
            });
        }
        Ok(SparseDirectory {
            ways,
            sets,
            num_caches,
            slots: (0..ways * sets).map(|_| None).collect(),
            last_use: vec![0; ways * sets],
            tick: 0,
            valid: 0,
            stats: DirectoryStats::new(),
        })
    }

    /// Number of ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.block_number() % self.sets as u64) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        self.last_use[slot] = self.tick;
    }

    fn find_slot(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        self.slot_range(set)
            .find(|&slot| matches!(&self.slots[slot], Some(e) if e.line == line))
    }

    /// Finds where a new entry for `line` would go: an invalid slot if one
    /// exists, otherwise the least-recently-used valid slot of the set.
    fn victim_slot(&self, line: LineAddr) -> (usize, bool) {
        let set = self.set_of(line);
        let mut lru_slot = set * self.ways;
        let mut lru_time = u64::MAX;
        for slot in self.slot_range(set) {
            match &self.slots[slot] {
                None => return (slot, false),
                Some(_) => {
                    if self.last_use[slot] < lru_time {
                        lru_time = self.last_use[slot];
                        lru_slot = slot;
                    }
                }
            }
        }
        (lru_slot, true)
    }

    /// Looks up `line`, allocating an entry if necessary, recording hit /
    /// allocation / forced-eviction facts in `out`.  Returns the slot index.
    fn find_or_allocate(&mut self, line: LineAddr, out: &mut Outcome) -> usize {
        self.stats.lookups.incr();
        if let Some(slot) = self.find_slot(line) {
            self.touch(slot);
            out.set_hit(true);
            return slot;
        }

        let (slot, must_evict) = self.victim_slot(line);
        out.record_allocation(1);
        let mut evictions = 0u64;
        if must_evict {
            let victim = self.slots[slot]
                .take()
                .expect("victim slot must hold a valid entry");
            let targets = out.push_forced_eviction(victim.line, &victim.sharers);
            self.stats.forced_block_invalidations.add(targets as u64);
            self.valid -= 1;
            evictions = 1;
        }
        self.slots[slot] = Some(Entry {
            line,
            sharers: S::new(self.num_caches),
        });
        self.valid += 1;
        self.touch(slot);
        let occupancy = self.occupancy();
        self.stats.record_insertion(1, evictions, occupancy);
        slot
    }
}

impl<S: SharerSet> Directory for SparseDirectory<S> {
    fn organization(&self) -> String {
        format!("sparse-{}x{}", self.ways, self.sets)
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn capacity(&self) -> usize {
        self.ways * self.sets
    }

    fn len(&self) -> usize {
        self.valid
    }

    crate::slot_dispatch::impl_slot_directory_ops!();

    fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn storage_profile(&self) -> StorageProfile {
        let probe = S::new(self.num_caches);
        let sharer_bits = probe.storage_bits();
        let tag_bits = u64::from(
            ccd_common::PHYSICAL_ADDRESS_BITS
                .saturating_sub(ccd_common::BlockGeometry::default().offset_bits())
                .saturating_sub(ceil_log2(self.sets as u64)),
        );
        let state_bits = 1; // valid bit
        let entry_bits = tag_bits + sharer_bits + state_bits;
        StorageProfile {
            total_bits: entry_bits * (self.ways * self.sets) as u64,
            bits_read_per_lookup: self.ways as u64 * (tag_bits + probe.access_bits()),
            bits_written_per_update: entry_bits,
            comparators_per_lookup: self.ways as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::CacheId;
    use ccd_sharers::{CoarseVector, FullBitVector};

    type Dir = SparseDirectory<FullBitVector>;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    #[test]
    fn construction_validation() {
        assert!(Dir::new(0, 16, 4).is_err());
        assert!(Dir::new(4, 0, 4).is_err());
        assert!(Dir::new(4, 16, 0).is_err());
        assert!(Dir::new(4, 12, 4).is_err());
        assert!(Dir::new(4, 16, 4).is_ok());
    }

    #[test]
    fn add_and_query_sharers() {
        let mut dir = Dir::new(2, 8, 4).unwrap();
        let r = dir.add_sharer(line(5), CacheId::new(1));
        assert!(r.allocated_new_entry);
        assert!(r.is_clean());
        let r = dir.add_sharer(line(5), CacheId::new(3));
        assert!(!r.allocated_new_entry);
        assert_eq!(
            dir.sharers(line(5)),
            Some(vec![CacheId::new(1), CacheId::new(3)])
        );
        assert!(dir.contains(line(5)));
        assert!(!dir.contains(line(13))); // same set, different tag
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn set_conflict_forces_invalidation_of_lru_victim() {
        // 1 way, 4 sets: lines 0 and 4 conflict.
        let mut dir = Dir::new(1, 4, 4).unwrap();
        dir.add_sharer(line(0), CacheId::new(0));
        let r = dir.add_sharer(line(4), CacheId::new(1));
        assert!(r.allocated_new_entry);
        assert_eq!(r.forced_evictions.len(), 1);
        assert_eq!(r.forced_evictions[0].line, line(0));
        assert_eq!(r.forced_evictions[0].invalidate, vec![CacheId::new(0)]);
        assert!(!dir.contains(line(0)));
        assert!(dir.contains(line(4)));
        assert_eq!(dir.stats().forced_evictions.get(), 1);
        assert!((dir.stats().forced_invalidation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_prefers_older_entry_as_victim() {
        // 2 ways, 2 sets: lines 0, 2, 4 all map to set 0.
        let mut dir = Dir::new(2, 2, 4).unwrap();
        dir.add_sharer(line(0), CacheId::new(0));
        dir.add_sharer(line(2), CacheId::new(1));
        // Touch line 0 so line 2 becomes LRU.
        dir.add_sharer(line(0), CacheId::new(2));
        let r = dir.add_sharer(line(4), CacheId::new(3));
        assert_eq!(r.forced_evictions[0].line, line(2));
        assert!(dir.contains(line(0)));
        assert!(dir.contains(line(4)));
    }

    #[test]
    fn exclusive_request_invalidates_other_sharers() {
        let mut dir = Dir::new(4, 8, 8).unwrap();
        dir.add_sharer(line(9), CacheId::new(0));
        dir.add_sharer(line(9), CacheId::new(1));
        dir.add_sharer(line(9), CacheId::new(2));
        let r = dir.set_exclusive(line(9), CacheId::new(1));
        assert!(!r.allocated_new_entry);
        let mut invalidate = r.invalidate.clone();
        invalidate.sort_unstable();
        assert_eq!(invalidate, vec![CacheId::new(0), CacheId::new(2)]);
        assert_eq!(dir.sharers(line(9)), Some(vec![CacheId::new(1)]));
        assert_eq!(dir.stats().invalidate_alls.get(), 1);
    }

    #[test]
    fn exclusive_on_untracked_line_allocates() {
        let mut dir = Dir::new(4, 8, 8).unwrap();
        let r = dir.set_exclusive(line(42), CacheId::new(5));
        assert!(r.allocated_new_entry);
        assert!(r.invalidate.is_empty());
        assert_eq!(dir.sharers(line(42)), Some(vec![CacheId::new(5)]));
    }

    #[test]
    fn removing_last_sharer_frees_the_entry() {
        let mut dir = Dir::new(2, 4, 4).unwrap();
        dir.add_sharer(line(7), CacheId::new(0));
        dir.add_sharer(line(7), CacheId::new(1));
        dir.remove_sharer(line(7), CacheId::new(0));
        assert!(dir.contains(line(7)));
        assert_eq!(dir.len(), 1);
        dir.remove_sharer(line(7), CacheId::new(1));
        assert!(!dir.contains(line(7)));
        assert_eq!(dir.len(), 0);
        assert_eq!(dir.stats().entry_removes.get(), 1);
        // Removing from an untracked line is a no-op.
        dir.remove_sharer(line(7), CacheId::new(1));
        assert_eq!(dir.len(), 0);
    }

    #[test]
    fn remove_entry_returns_invalidation_targets() {
        let mut dir = Dir::new(2, 4, 4).unwrap();
        assert!(dir.remove_entry(line(3)).is_none());
        dir.add_sharer(line(3), CacheId::new(2));
        dir.add_sharer(line(3), CacheId::new(3));
        let targets = dir.remove_entry(line(3)).unwrap();
        assert_eq!(targets, vec![CacheId::new(2), CacheId::new(3)]);
        assert!(dir.is_empty());
    }

    #[test]
    fn occupancy_tracks_valid_entries() {
        let mut dir = Dir::new(2, 2, 4).unwrap();
        assert_eq!(dir.occupancy(), 0.0);
        dir.add_sharer(line(0), CacheId::new(0));
        dir.add_sharer(line(1), CacheId::new(0));
        assert!((dir.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(dir.capacity(), 4);
    }

    #[test]
    fn storage_profile_is_consistent() {
        let dir = SparseDirectory::<CoarseVector>::new(8, 2048, 32).unwrap();
        let p = dir.storage_profile();
        // tag bits = 48 - 6 - 11 = 31, sharer bits = 2*5+1 = 11, +1 valid.
        assert_eq!(p.total_bits, (31 + 11 + 1) * 8 * 2048);
        assert_eq!(p.comparators_per_lookup, 8);
        assert_eq!(p.bits_written_per_update, 43);
        assert_eq!(p.bits_read_per_lookup, 8 * (31 + 11));
    }

    #[test]
    fn organization_name_includes_geometry() {
        let dir = Dir::new(8, 2048, 16).unwrap();
        assert_eq!(dir.organization(), "sparse-8x2048");
    }

    #[test]
    fn stats_reset_clears_history() {
        let mut dir = Dir::new(1, 2, 2).unwrap();
        dir.add_sharer(line(0), CacheId::new(0));
        dir.add_sharer(line(2), CacheId::new(1));
        assert!(dir.stats().insertions.get() > 0);
        dir.reset_stats();
        assert_eq!(dir.stats().insertions.get(), 0);
        assert_eq!(dir.stats().forced_evictions.get(), 0);
    }
}
