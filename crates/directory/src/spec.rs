//! Runtime directory construction: spec strings and the builder registry.
//!
//! The simulator, the criterion benches and the figure binaries all want to
//! pick a directory organization from *configuration* — a string like
//! `cuckoo-4x1024-skew` or `sparse-8x2048` — rather than from compile-time
//! generics.  This module provides:
//!
//! * [`DirectorySpec`] — the parsed form of a spec string: organization
//!   name, `ways × sets` geometry, and optional modifiers (hash family,
//!   sharer format, tracked-cache count, shard count);
//! * [`BuilderRegistry`] — a name → builder-function table.  The five
//!   baseline organizations register themselves via
//!   [`BuilderRegistry::with_baselines`]; the `ccd-cuckoo` crate registers
//!   the Cuckoo directory on top (its `standard_registry()` covers all
//!   six organizations).
//!
//! # Spec-string grammar
//!
//! ```text
//! [shardedN:]ORG-WxS[-HASH][-PROBE][-POLICY][-cCACHES][@SHARERS]
//! ```
//!
//! * `ORG` — `cuckoo`, `sparse`, `skewed`, `duplicate-tag` (alias
//!   `duptag`), `in-cache` (alias `incache`), `tagless`;
//! * `WxS` — ways × sets.  For `duplicate-tag`/`tagless`, `W` is the
//!   mirrored cache associativity and `S` the mirrored sets; for
//!   `in-cache`, the embedding L2 bank geometry;
//! * `HASH` — `skew`, `ms`, `strong`, or `tagalt` (organizations with
//!   hashed indexing only);
//! * `PROBE` — `scalar`, `swar`, `simd`, or `localized`: the cuckoo
//!   directory's tag-probe variant (all variants are bit-identical in
//!   behaviour; this picks the kernel, and the label then names it);
//! * `POLICY` — `greedy` (default) or `bfs`: the cuckoo directory's
//!   insertion policy.  Unlike the probe kernels this is *semantic*: BFS
//!   finds shortest displacement paths, so attempt counts and placements
//!   differ from the greedy chain (the label names `bfs` whenever it is
//!   in effect);
//! * `cCACHES` — number of tracked private caches (default 32);
//! * `@SHARERS` — `full`, `limited`, `coarse`, or `hier` (default `full`);
//! * `shardedN:` — interleave the capacity across `N` identical slices
//!   behind a [`ShardedDirectory`]; `S` must be divisible by `N`.
//!
//! ```
//! use ccd_directory::{BuilderRegistry, DirectorySpec};
//!
//! let registry = BuilderRegistry::with_baselines();
//! let dir = registry.build_str("sparse-8x2048-c16@coarse").unwrap();
//! assert_eq!(dir.capacity(), 8 * 2048);
//! assert_eq!(dir.num_caches(), 16);
//!
//! let spec: DirectorySpec = "sharded4:skewed-4x1024".parse().unwrap();
//! assert_eq!(spec.shards, 4);
//! let dir = registry.build(&spec).unwrap();
//! assert_eq!(dir.capacity(), 4 * 1024, "total capacity is preserved");
//! ```

use crate::{
    tagless, Directory, DuplicateTagDirectory, InCacheDirectory, ShardedDirectory, SkewedDirectory,
    SparseDirectory, TaglessDirectory,
};
use ccd_common::ConfigError;
use ccd_hash::HashKind;
use ccd_sharers::SharerFormat;
use std::fmt;
use std::str::FromStr;

/// Default tracked-cache count when a spec string names none (the paper's
/// 16-core Shared-L2 system tracks 32 L1 caches).
pub const DEFAULT_CACHES: usize = 32;

/// Which tag-probe kernel a cuckoo directory's table should use.
///
/// Every variant is **bit-identical in behaviour** — same hits, same
/// vacancy choices, same Section 5.2 displacement accounting — so the
/// choice is purely a performance knob.  It can come from a spec string
/// (`cuckoo-4x1024-tagalt-localized`), from the `CCD_PROBE` environment
/// variable via [`ProbeVariant::from_env`], or be left to the table's own
/// auto-selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeVariant {
    /// One tag byte compared at a time — the reference kernel.
    Scalar,
    /// Portable SWAR over gathered tag words (the PR 2 path, and the
    /// fallback when no vector unit is available).
    Swar,
    /// Gathered candidate tags compared with one vector instruction
    /// (sse2/avx2/neon, runtime-detected; portable fallback under Miri).
    Simd,
    /// F14-style line-local tag blocks: tags stored transposed so all of a
    /// key's candidates sit in one contiguous span covered by a single
    /// vector load.  Requires a block-local hash family (`tagalt`).
    Localized,
}

impl ProbeVariant {
    /// All variants, in the order bench sweeps report them.
    #[must_use]
    pub const fn all() -> [ProbeVariant; 4] {
        [
            ProbeVariant::Scalar,
            ProbeVariant::Swar,
            ProbeVariant::Simd,
            ProbeVariant::Localized,
        ]
    }

    /// Reads the `CCD_PROBE` environment override.
    ///
    /// Unset means "no preference" (`Ok(None)`); anything set must parse.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending token when the variable
    /// is set to something other than a probe-variant name.
    pub fn from_env() -> Result<Option<Self>, ConfigError> {
        match std::env::var("CCD_PROBE") {
            Ok(raw) => {
                let variant =
                    raw.trim()
                        .parse::<ProbeVariant>()
                        .map_err(|_| ConfigError::Parse {
                            what: format!(
                                "CCD_PROBE `{}`: expected one of scalar, swar, simd, localized",
                                raw.trim()
                            ),
                        })?;
                Ok(Some(variant))
            }
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => Err(ConfigError::Parse {
                what: "CCD_PROBE is not valid unicode".to_string(),
            }),
        }
    }
}

impl fmt::Display for ProbeVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProbeVariant::Scalar => "scalar",
            ProbeVariant::Swar => "swar",
            ProbeVariant::Simd => "simd",
            ProbeVariant::Localized => "localized",
        };
        f.write_str(name)
    }
}

impl FromStr for ProbeVariant {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "scalar" => Ok(ProbeVariant::Scalar),
            "swar" => Ok(ProbeVariant::Swar),
            "simd" => Ok(ProbeVariant::Simd),
            "localized" => Ok(ProbeVariant::Localized),
            other => Err(ConfigError::Parse {
                what: format!(
                    "unknown probe variant `{other}` (known: scalar, swar, simd, localized)"
                ),
            }),
        }
    }
}

/// How a cuckoo directory's table finds a home for a new entry when every
/// candidate slot is occupied.
///
/// Unlike [`ProbeVariant`], the policy is **semantic**: the two policies
/// agree on which keys are resident (until an attempt budget actually
/// expires), but attempt counts and physical placements differ, so the
/// policy is part of the organization label (`cuckoo-4x1024-bfs`) and of
/// every digest built over insertion outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum InsertPolicy {
    /// The paper's Section 5.2 procedure: a greedy random-walk displacement
    /// chain, kicking victims round-robin until one lands in a vacancy.
    #[default]
    Greedy,
    /// Breadth-first search over the displacement graph: the table finds a
    /// *shortest* sequence of moves that frees one of the new entry's
    /// candidate slots, then applies it deepest-first.  Same attempt
    /// accounting contract (a path of `L` moves costs `L + 1` attempts),
    /// strictly fewer entries touched per insertion at high occupancy.
    Bfs,
}

impl fmt::Display for InsertPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InsertPolicy::Greedy => "greedy",
            InsertPolicy::Bfs => "bfs",
        };
        f.write_str(name)
    }
}

impl FromStr for InsertPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "greedy" => Ok(InsertPolicy::Greedy),
            "bfs" => Ok(InsertPolicy::Bfs),
            other => Err(ConfigError::Parse {
                what: format!("unknown insert policy `{other}` (known: greedy, bfs)"),
            }),
        }
    }
}

/// A parsed directory specification (see the module docs for the grammar).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectorySpec {
    /// Organization name (registry key), e.g. `"cuckoo"`.
    pub org: String,
    /// Ways (or mirrored associativity; see the grammar).
    pub ways: usize,
    /// Sets per way (or mirrored sets; see the grammar).
    pub sets: usize,
    /// Index hash family, for organizations that hash their ways.
    pub hash: Option<HashKind>,
    /// Tag-probe kernel, for the cuckoo organization (`None` = auto).
    pub probe: Option<ProbeVariant>,
    /// Insertion policy, for the cuckoo organization (default greedy).
    pub policy: InsertPolicy,
    /// Per-entry sharer representation.
    pub sharers: SharerFormat,
    /// Number of tracked private caches.
    pub caches: usize,
    /// Number of address-interleaved slices (1 = monolithic).
    pub shards: usize,
}

impl DirectorySpec {
    /// A spec with the given organization and geometry and all modifiers at
    /// their defaults.
    #[must_use]
    pub fn new(org: impl Into<String>, ways: usize, sets: usize) -> Self {
        DirectorySpec {
            org: org.into(),
            ways,
            sets,
            hash: None,
            probe: None,
            policy: InsertPolicy::Greedy,
            sharers: SharerFormat::FullVector,
            caches: DEFAULT_CACHES,
            shards: 1,
        }
    }

    /// Returns the spec with a different tracked-cache count.
    #[must_use]
    pub fn with_caches(mut self, caches: usize) -> Self {
        self.caches = caches;
        self
    }

    /// Returns the spec with an explicit hash family.
    #[must_use]
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = Some(hash);
        self
    }

    /// Returns the spec with an explicit tag-probe variant.
    #[must_use]
    pub fn with_probe(mut self, probe: ProbeVariant) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Returns the spec with an explicit insertion policy.
    #[must_use]
    pub fn with_policy(mut self, policy: InsertPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the spec with a different sharer format.
    #[must_use]
    pub fn with_sharers(mut self, sharers: SharerFormat) -> Self {
        self.sharers = sharers;
        self
    }

    /// Returns the spec interleaved over `shards` slices.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    fn parse_error(input: &str, why: impl fmt::Display) -> ConfigError {
        ConfigError::Parse {
            what: format!("directory spec `{input}`: {why}"),
        }
    }
}

impl FromStr for DirectorySpec {
    type Err = ConfigError;

    fn from_str(input: &str) -> Result<Self, ConfigError> {
        let mut body = input.trim();

        // `shardedN:` prefix.
        let mut shards = 1usize;
        if let Some(rest) = body.strip_prefix("sharded") {
            let (count, rest) = rest.split_once(':').ok_or_else(|| {
                Self::parse_error(input, "expected `shardedN:<spec>` (missing `:`)")
            })?;
            shards = count
                .parse()
                .map_err(|_| Self::parse_error(input, format!("invalid shard count `{count}`")))?;
            if shards == 0 {
                return Err(ConfigError::Zero {
                    what: "shard count",
                });
            }
            body = rest;
        }

        // `@SHARERS` suffix.
        let mut sharers = SharerFormat::FullVector;
        if let Some((rest, fmt)) = body.rsplit_once('@') {
            sharers = fmt.parse()?;
            body = rest;
        }

        // Organization name: longest known alias prefix, so names containing
        // `-` (duplicate-tag, in-cache) parse unambiguously.
        const ORGS: &[(&str, &str)] = &[
            ("duplicate-tag", "duplicate-tag"),
            ("duptag", "duplicate-tag"),
            ("in-cache", "in-cache"),
            ("incache", "in-cache"),
            ("cuckoo", "cuckoo"),
            ("sparse", "sparse"),
            ("skewed", "skewed"),
            ("tagless", "tagless"),
        ];
        let (alias, org) = ORGS
            .iter()
            .find(|(alias, _)| {
                body.strip_prefix(alias)
                    .is_some_and(|rest| rest.starts_with('-'))
            })
            .ok_or_else(|| {
                // A known organization with no geometry gets the more
                // precise error.
                if ORGS.iter().any(|(alias, _)| body == *alias) {
                    Self::parse_error(
                        input,
                        format!("organization `{body}` is missing its `-WxS` geometry"),
                    )
                } else {
                    let known: Vec<&str> = ORGS.iter().map(|(alias, _)| *alias).collect();
                    Self::parse_error(
                        input,
                        format!(
                            "unknown organization `{}` (known: {})",
                            body.split('-').next().unwrap_or(body),
                            known.join(", ")
                        ),
                    )
                }
            })?;
        let rest = &body[alias.len() + 1..];

        // Geometry, then optional `-` separated modifiers.
        let mut tokens = rest.split('-');
        let geometry = tokens
            .next()
            .ok_or_else(|| Self::parse_error(input, "missing `WxS` geometry"))?;
        let (ways, sets) = geometry
            .split_once('x')
            .and_then(|(w, s)| Some((w.parse().ok()?, s.parse().ok()?)))
            .ok_or_else(|| {
                Self::parse_error(input, format!("expected `WxS` geometry, got `{geometry}`"))
            })?;

        let mut spec = DirectorySpec::new(org.to_string(), ways, sets)
            .with_sharers(sharers)
            .with_shards(shards);
        for token in tokens {
            if let Some(count) = token.strip_prefix('c') {
                if let Ok(caches) = count.parse() {
                    spec.caches = caches;
                    continue;
                }
            }
            if let Ok(hash) = token.parse::<HashKind>() {
                spec.hash = Some(hash);
                continue;
            }
            if let Ok(probe) = token.parse::<ProbeVariant>() {
                spec.probe = Some(probe);
                continue;
            }
            if let Ok(policy) = token.parse::<InsertPolicy>() {
                spec.policy = policy;
                continue;
            }
            return Err(Self::parse_error(
                input,
                format!("unknown modifier `{token}`"),
            ));
        }
        if spec.ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if spec.sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if spec.caches == 0 {
            return Err(ConfigError::Zero {
                what: "cache count",
            });
        }
        Ok(spec)
    }
}

impl fmt::Display for DirectorySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shards > 1 {
            write!(f, "sharded{}:", self.shards)?;
        }
        write!(f, "{}-{}x{}", self.org, self.ways, self.sets)?;
        if let Some(hash) = self.hash {
            let name = match hash {
                HashKind::Skewing => "skew",
                HashKind::MultiplyShift => "ms",
                HashKind::Strong => "strong",
                HashKind::TagAlt => "tagalt",
            };
            write!(f, "-{name}")?;
        }
        if let Some(probe) = self.probe {
            write!(f, "-{probe}")?;
        }
        if self.policy != InsertPolicy::Greedy {
            write!(f, "-{}", self.policy)?;
        }
        if self.caches != DEFAULT_CACHES {
            write!(f, "-c{}", self.caches)?;
        }
        if self.sharers != SharerFormat::FullVector {
            let name = match self.sharers {
                SharerFormat::FullVector => unreachable!(),
                SharerFormat::LimitedPointer => "limited",
                SharerFormat::Coarse => "coarse",
                SharerFormat::Hierarchical => "hier",
            };
            write!(f, "@{name}")?;
        }
        Ok(())
    }
}

/// A builder function constructing one (unsharded) directory slice.
pub type DirectoryBuilder = fn(&DirectorySpec) -> Result<Box<dyn Directory>, ConfigError>;

/// Dispatches over the spec's sharer format, binding the chosen
/// representation type to `$S` inside `$body`.
#[macro_export]
macro_rules! match_sharer_format {
    ($format:expr, $S:ident => $body:expr) => {
        match $format {
            ccd_sharers::SharerFormat::FullVector => {
                type $S = ccd_sharers::FullBitVector;
                $body
            }
            ccd_sharers::SharerFormat::LimitedPointer => {
                type $S = ccd_sharers::LimitedPointer;
                $body
            }
            ccd_sharers::SharerFormat::Coarse => {
                type $S = ccd_sharers::CoarseVector;
                $body
            }
            ccd_sharers::SharerFormat::Hierarchical => {
                type $S = ccd_sharers::HierarchicalVector;
                $body
            }
        }
    };
}

/// A runtime name → builder table for directory organizations.
#[derive(Clone, Default)]
pub struct BuilderRegistry {
    builders: Vec<(String, DirectoryBuilder)>,
}

impl fmt::Debug for BuilderRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuilderRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// Rejects a `-HASH` modifier on organizations that do not hash their ways,
/// so e.g. `sparse-8x512-skew` fails loudly instead of silently building a
/// modulo-indexed directory.
fn reject_hash(spec: &DirectorySpec) -> Result<(), ConfigError> {
    if spec.hash.is_some() {
        return Err(ConfigError::Parse {
            what: format!("organization `{}` does not take a hash modifier", spec.org),
        });
    }
    Ok(())
}

/// Rejects an `@SHARERS` modifier on organizations that store no per-entry
/// sharer set (sharer identity is implicit in their structure).
fn reject_sharers(spec: &DirectorySpec) -> Result<(), ConfigError> {
    if spec.sharers != SharerFormat::FullVector {
        return Err(ConfigError::Parse {
            what: format!(
                "organization `{}` has no per-entry sharer set; the `@{}` modifier does not apply",
                spec.org, spec.sharers
            ),
        });
    }
    Ok(())
}

/// Rejects a `-PROBE` modifier on organizations without a cuckoo tag-probe
/// engine, so e.g. `sparse-8x512-localized` fails loudly instead of
/// silently ignoring the requested kernel.
fn reject_probe(spec: &DirectorySpec) -> Result<(), ConfigError> {
    if let Some(probe) = spec.probe {
        return Err(ConfigError::Parse {
            what: format!(
                "organization `{}` has no tag-probe engine; the `{probe}` modifier does not apply",
                spec.org
            ),
        });
    }
    Ok(())
}

/// Rejects a `-POLICY` modifier on organizations without a displacement
/// insertion engine, so e.g. `sparse-8x512-bfs` fails loudly instead of
/// silently ignoring the requested policy.
fn reject_policy(spec: &DirectorySpec) -> Result<(), ConfigError> {
    if spec.policy != InsertPolicy::Greedy {
        return Err(ConfigError::Parse {
            what: format!(
                "organization `{}` has no displacement-insertion engine; the `{}` modifier \
                 does not apply",
                spec.org, spec.policy
            ),
        });
    }
    Ok(())
}

fn build_sparse(spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
    reject_hash(spec)?;
    reject_probe(spec)?;
    reject_policy(spec)?;
    Ok(match_sharer_format!(spec.sharers, S => {
        Box::new(SparseDirectory::<S>::new(spec.ways, spec.sets, spec.caches)?)
    }))
}

fn build_skewed(spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
    reject_probe(spec)?;
    reject_policy(spec)?;
    let hash = spec.hash.unwrap_or(HashKind::Skewing);
    Ok(match_sharer_format!(spec.sharers, S => {
        Box::new(SkewedDirectory::<S>::with_hash_kind(spec.ways, spec.sets, spec.caches, hash)?)
    }))
}

fn build_duplicate_tag(spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
    // `ways` mirrors the tracked caches' associativity; sharer identity is
    // implicit in which mirror a tag sits in.
    reject_hash(spec)?;
    reject_probe(spec)?;
    reject_policy(spec)?;
    reject_sharers(spec)?;
    Ok(Box::new(DuplicateTagDirectory::new(
        spec.sets,
        spec.ways,
        spec.caches,
    )?))
}

fn build_in_cache(spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
    reject_hash(spec)?;
    reject_probe(spec)?;
    reject_policy(spec)?;
    Ok(match_sharer_format!(spec.sharers, S => {
        Box::new(InCacheDirectory::<S>::new(spec.ways, spec.sets, spec.caches)?)
    }))
}

fn build_tagless(spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
    reject_hash(spec)?;
    reject_probe(spec)?;
    reject_policy(spec)?;
    reject_sharers(spec)?;
    Ok(Box::new(TaglessDirectory::with_filter_geometry(
        spec.sets,
        spec.ways,
        spec.caches,
        tagless::DEFAULT_BUCKETS,
        tagless::DEFAULT_PROBES,
    )?))
}

impl BuilderRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        BuilderRegistry::default()
    }

    /// A registry pre-populated with the five baseline organizations
    /// (`sparse`, `skewed`, `duplicate-tag`, `in-cache`, `tagless`).  The
    /// Cuckoo directory lives upstack in `ccd-cuckoo`; use its
    /// `standard_registry()` for all six.
    #[must_use]
    pub fn with_baselines() -> Self {
        let mut registry = BuilderRegistry::new();
        registry.register("sparse", build_sparse);
        registry.register("skewed", build_skewed);
        registry.register("duplicate-tag", build_duplicate_tag);
        registry.register("in-cache", build_in_cache);
        registry.register("tagless", build_tagless);
        registry
    }

    /// Registers (or replaces) the builder for `name`.
    pub fn register(&mut self, name: impl Into<String>, builder: DirectoryBuilder) {
        let name = name.into();
        if let Some(slot) = self.builders.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = builder;
        } else {
            self.builders.push((name, builder));
        }
    }

    /// The registered organization names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.builders.iter().map(|(n, _)| n.as_str())
    }

    /// Builds the directory described by `spec`; sharded specs produce a
    /// [`ShardedDirectory`] of `spec.shards` identical slices whose total
    /// capacity equals the unsharded spec's.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Parse`] for an unregistered organization,
    /// * [`ConfigError::Inconsistent`] when the set count is not divisible
    ///   by the shard count,
    /// * any error from the organization's own constructor.
    pub fn build(&self, spec: &DirectorySpec) -> Result<Box<dyn Directory>, ConfigError> {
        let builder = self
            .builders
            .iter()
            .find(|(name, _)| *name == spec.org)
            .map(|(_, b)| *b)
            .ok_or_else(|| ConfigError::Parse {
                what: format!("no builder registered for organization `{}`", spec.org),
            })?;
        if spec.shards == 1 {
            return builder(spec);
        }
        if !spec.sets.is_multiple_of(spec.shards) {
            return Err(ConfigError::Inconsistent {
                what: "sharded spec requires the set count to be divisible by the shard count",
            });
        }
        let slice_spec = DirectorySpec {
            sets: spec.sets / spec.shards,
            shards: 1,
            ..spec.clone()
        };
        let slices = (0..spec.shards)
            .map(|_| builder(&slice_spec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(ShardedDirectory::new(slices)?))
    }

    /// Parses `input` and builds the resulting spec.
    ///
    /// # Errors
    ///
    /// See [`DirectorySpec::from_str`] and [`BuilderRegistry::build`].
    pub fn build_str(&self, input: &str) -> Result<Box<dyn Directory>, ConfigError> {
        self.build(&input.parse()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_examples() {
        let spec: DirectorySpec = "cuckoo-4x1024-skew".parse().unwrap();
        assert_eq!(spec.org, "cuckoo");
        assert_eq!((spec.ways, spec.sets), (4, 1024));
        assert_eq!(spec.hash, Some(HashKind::Skewing));
        assert_eq!(spec.sharers, SharerFormat::FullVector);
        assert_eq!(spec.caches, DEFAULT_CACHES);
        assert_eq!(spec.shards, 1);

        let spec: DirectorySpec = "sparse-8x2048".parse().unwrap();
        assert_eq!(spec.org, "sparse");
        assert_eq!((spec.ways, spec.sets), (8, 2048));
        assert_eq!(spec.hash, None);
    }

    #[test]
    fn parses_modifiers_and_aliases() {
        let spec: DirectorySpec = "sharded4:duptag-16x512-c16@coarse".parse().unwrap();
        assert_eq!(spec.org, "duplicate-tag");
        assert_eq!(spec.shards, 4);
        assert_eq!(spec.caches, 16);
        assert_eq!(spec.sharers, SharerFormat::Coarse);

        let spec: DirectorySpec = "in-cache-16x64@hier".parse().unwrap();
        assert_eq!(spec.org, "in-cache");
        assert_eq!(spec.sharers, SharerFormat::Hierarchical);

        let spec: DirectorySpec = "skewed-4x256-strong".parse().unwrap();
        assert_eq!(spec.hash, Some(HashKind::Strong));

        let spec: DirectorySpec = "cuckoo-4x1024-tagalt-localized".parse().unwrap();
        assert_eq!(spec.hash, Some(HashKind::TagAlt));
        assert_eq!(spec.probe, Some(ProbeVariant::Localized));

        let spec: DirectorySpec = "cuckoo-4x1024-swar".parse().unwrap();
        assert_eq!(spec.hash, None);
        assert_eq!(spec.probe, Some(ProbeVariant::Swar));
        assert_eq!(spec.policy, InsertPolicy::Greedy);

        let spec: DirectorySpec = "cuckoo-4x1024-tagalt-bfs-c16".parse().unwrap();
        assert_eq!(spec.hash, Some(HashKind::TagAlt));
        assert_eq!(spec.policy, InsertPolicy::Bfs);
        assert_eq!(spec.caches, 16);

        // An explicit `greedy` token parses and equals the default.
        let spec: DirectorySpec = "cuckoo-4x1024-greedy".parse().unwrap();
        assert_eq!(spec, "cuckoo-4x1024".parse().unwrap());
    }

    #[test]
    fn insert_policy_parse_errors_name_the_token() {
        let err = "dfs".parse::<InsertPolicy>().unwrap_err().to_string();
        assert!(err.contains("`dfs`"), "{err}");
        assert!(err.contains("bfs"), "should list policies: {err}");
        for policy in [InsertPolicy::Greedy, InsertPolicy::Bfs] {
            assert_eq!(policy.to_string().parse::<InsertPolicy>().unwrap(), policy);
        }
    }

    #[test]
    fn probe_variant_parse_errors_name_the_token() {
        let err = "vectorish".parse::<ProbeVariant>().unwrap_err().to_string();
        assert!(err.contains("`vectorish`"), "{err}");
        assert!(err.contains("localized"), "should list variants: {err}");
        for variant in ProbeVariant::all() {
            assert_eq!(
                variant.to_string().parse::<ProbeVariant>().unwrap(),
                variant
            );
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("".parse::<DirectorySpec>().is_err());
        assert!("mystery-4x64".parse::<DirectorySpec>().is_err());
        assert!("sparse".parse::<DirectorySpec>().is_err());
        assert!("sparse-4".parse::<DirectorySpec>().is_err());
        assert!("sparse-4xq".parse::<DirectorySpec>().is_err());
        assert!("sparse-0x64".parse::<DirectorySpec>().is_err());
        assert!("sparse-4x64-bogus".parse::<DirectorySpec>().is_err());
        assert!("sharded0:sparse-4x64".parse::<DirectorySpec>().is_err());
        assert!("shardedq:sparse-4x64".parse::<DirectorySpec>().is_err());
        assert!("sparse-4x64@martian".parse::<DirectorySpec>().is_err());
    }

    /// Every parse failure must name the offending token, not just reject
    /// the whole string — the difference between a usable CLI error and an
    /// afternoon of squinting.
    #[test]
    fn parse_errors_name_the_offending_token() {
        let message = |input: &str| input.parse::<DirectorySpec>().unwrap_err().to_string();

        let err = message("mystery-4x64");
        assert!(err.contains("`mystery`"), "{err}");
        assert!(err.contains("cuckoo"), "should list known orgs: {err}");

        let err = message("sparse");
        assert!(err.contains("`sparse`"), "{err}");
        assert!(err.contains("geometry"), "{err}");

        let err = message("sparse-4xq");
        assert!(err.contains("`4xq`"), "{err}");

        let err = message("sparse-4x64-bogus");
        assert!(err.contains("`bogus`"), "{err}");

        let err = message("shardedq:sparse-4x64");
        assert!(err.contains("`q`"), "{err}");

        let err = message("sparse-4x64@martian");
        assert!(err.contains("`martian`"), "{err}");

        // The full input is always quoted for context.
        for input in ["mystery-4x64", "sparse-4xq", "sparse-4x64-bogus"] {
            assert!(message(input).contains(input), "{input}");
        }
    }

    #[test]
    fn display_round_trips() {
        for input in [
            "sparse-8x2048",
            "skewed-4x1024-strong",
            "duplicate-tag-16x512-c16",
            "sharded4:sparse-4x256@coarse",
            "cuckoo-4x1024-tagalt-localized",
            "cuckoo-4x1024-simd-c16",
            "cuckoo-4x1024-bfs",
            "cuckoo-4x1024-tagalt-localized-bfs-c16",
        ] {
            let spec: DirectorySpec = input.parse().unwrap();
            assert_eq!(spec.to_string(), input);
            let reparsed: DirectorySpec = spec.to_string().parse().unwrap();
            assert_eq!(reparsed, spec);
        }
    }

    #[test]
    fn baseline_registry_builds_every_organization() {
        let registry = BuilderRegistry::with_baselines();
        for spec in [
            "sparse-8x256",
            "skewed-4x256",
            "duplicate-tag-2x64",
            "in-cache-16x64",
            "tagless-2x64",
        ] {
            let dir = registry.build_str(spec).unwrap();
            assert!(dir.capacity() > 0, "{spec}");
            assert_eq!(dir.num_caches(), DEFAULT_CACHES, "{spec}");
        }
        assert!(
            registry.build_str("cuckoo-4x512").is_err(),
            "cuckoo registers upstack"
        );
    }

    #[test]
    fn inapplicable_modifiers_are_rejected_at_build_time() {
        let registry = BuilderRegistry::with_baselines();
        // Hash modifiers only apply to hashed-index organizations.
        assert!(registry.build_str("sparse-8x512-skew").is_err());
        assert!(registry.build_str("in-cache-16x64-strong").is_err());
        assert!(registry.build_str("duplicate-tag-2x32-ms").is_err());
        assert!(registry.build_str("tagless-2x32-skew").is_err());
        // Sharer formats only apply to organizations with per-entry sets.
        assert!(registry.build_str("duplicate-tag-2x32@coarse").is_err());
        assert!(registry.build_str("tagless-2x32@hier").is_err());
        // Probe variants only apply to the cuckoo organization's engine.
        for spec in [
            "sparse-8x512-localized",
            "skewed-4x256-simd",
            "duplicate-tag-2x32-scalar",
            "in-cache-16x64-swar",
            "tagless-2x32-swar",
        ] {
            let err = match registry.build_str(spec) {
                Err(e) => e.to_string(),
                Ok(_) => panic!("{spec} must be rejected"),
            };
            assert!(err.contains("no tag-probe engine"), "{spec}: {err}");
        }
        // Insert policies only apply to the cuckoo displacement engine.
        for spec in [
            "sparse-8x512-bfs",
            "skewed-4x256-bfs",
            "duplicate-tag-2x32-bfs",
            "in-cache-16x64-bfs",
            "tagless-2x32-bfs",
        ] {
            let err = match registry.build_str(spec) {
                Err(e) => e.to_string(),
                Ok(_) => panic!("{spec} must be rejected"),
            };
            assert!(
                err.contains("no displacement-insertion engine"),
                "{spec}: {err}"
            );
        }
        // The skewed directory takes both modifiers.
        assert!(registry.build_str("skewed-4x256-strong@coarse").is_ok());
    }

    #[test]
    fn sharer_formats_select_distinct_storage() {
        let registry = BuilderRegistry::with_baselines();
        let full = registry.build_str("sparse-8x256-c64@full").unwrap();
        let coarse = registry.build_str("sparse-8x256-c64@coarse").unwrap();
        assert!(
            coarse.storage_profile().total_bits < full.storage_profile().total_bits,
            "coarse vectors must be smaller than full vectors"
        );
    }

    #[test]
    fn sharded_build_preserves_total_capacity() {
        let registry = BuilderRegistry::with_baselines();
        let single = registry.build_str("sparse-4x1024").unwrap();
        let sharded = registry.build_str("sharded4:sparse-4x1024").unwrap();
        assert_eq!(single.capacity(), sharded.capacity());
        assert!(sharded.organization().starts_with("sharded4x["));
        // Indivisible set counts are rejected.
        assert!(registry.build_str("sharded3:sparse-4x1024").is_err());
    }

    #[test]
    fn probe_from_env_parses_and_quotes_bad_tokens() {
        // The only test in this binary touching CCD_PROBE, so the env
        // mutation cannot race with a concurrent reader (mirrors the
        // CCD_WORKERS test of the coherence runner).
        let restore = std::env::var("CCD_PROBE").ok();
        std::env::remove_var("CCD_PROBE");
        assert_eq!(ProbeVariant::from_env().unwrap(), None);
        for (token, want) in [
            ("scalar", ProbeVariant::Scalar),
            (" swar ", ProbeVariant::Swar),
            ("simd", ProbeVariant::Simd),
            ("localized", ProbeVariant::Localized),
        ] {
            std::env::set_var("CCD_PROBE", token);
            assert_eq!(ProbeVariant::from_env().unwrap(), Some(want));
        }
        for bad in ["avx9", "SWAR", "local", ""] {
            std::env::set_var("CCD_PROBE", bad);
            let err = ProbeVariant::from_env().unwrap_err().to_string();
            assert!(err.contains("CCD_PROBE"), "{err}");
            assert!(
                err.contains(&format!("`{}`", bad.trim())),
                "must quote the token: {err}"
            );
        }
        match restore {
            Some(value) => std::env::set_var("CCD_PROBE", value),
            None => std::env::remove_var("CCD_PROBE"),
        }
    }
}
