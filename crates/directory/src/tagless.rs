//! The Tagless directory baseline (Zebchuk et al., MICRO 2009).
//!
//! The Tagless directory replaces per-block directory entries with a *grid
//! of Bloom filters*: for every private-cache set there is one small filter
//! per cache summarizing the blocks that cache holds in that set.  A lookup
//! reads the filter row for the accessed set across **all** caches and tests
//! the block in each, yielding a conservative superset of the sharers.
//!
//! The paper uses Tagless as the leading *area*-efficient design: its
//! storage is tiny and independent of tag width, but "the bit-widths of
//! either each read or each update operation … increase with the number of
//! cores" (Section 3.3), so its aggregate energy grows quadratically with
//! core count just like Duplicate-Tag — which is exactly the behaviour the
//! [`StorageProfile`] reported here exposes to the energy model
//! (Figures 4 and 13).
//!
//! # Modelling notes
//!
//! * Filters are maintained as counting Bloom filters so that sharer
//!   removals (private-cache evictions) can be processed exactly; hardware
//!   Tagless achieves the same effect with its own bookkeeping.  Reported
//!   storage uses one bit per bucket, as in the hardware design.
//! * Like the hardware design, the structure never forces invalidations —
//!   aliasing produces spurious invalidation *messages* (false-positive
//!   sharers), not evictions of live blocks.

use crate::{Directory, DirectoryOp, DirectoryStats, Outcome, StorageProfile};
use ccd_common::rng::SplitMix64;
use ccd_common::{CacheId, ConfigError, LineAddr};
// ccd-lint: allow(no-default-hasher) reason="exact-presence map is keyed lookups only, never iterated"
use std::collections::HashMap;

/// Default number of Bloom-filter buckets per (cache, set) filter.
pub const DEFAULT_BUCKETS: usize = 64;

/// Default number of hash probes per filter test/update.
pub const DEFAULT_PROBES: usize = 2;

/// A Tagless coherence directory slice.
#[derive(Clone, Debug)]
pub struct TaglessDirectory {
    cache_sets: usize,
    cache_ways: usize,
    num_caches: usize,
    buckets: usize,
    probes: usize,
    /// `filters[cache][set * buckets + bucket]` — small saturating counters.
    filters: Vec<Vec<u8>>,
    /// Exact per-line presence, used to keep the counting filters consistent
    /// and to answer `len`/`contains` exactly (mirrors the bookkeeping the
    /// hardware design derives from observing cache fills and evictions).
    // ccd-lint: allow(no-default-hasher) reason="keyed lookups only, never iterated; sharers-path gets need O(1)"
    present: HashMap<u64, Vec<CacheId>>,
    stats: DirectoryStats,
}

impl TaglessDirectory {
    /// Creates a Tagless directory for `num_caches` private caches of
    /// `cache_sets × cache_ways` frames each, with the default filter
    /// geometry.
    ///
    /// # Errors
    ///
    /// See [`TaglessDirectory::with_filter_geometry`].
    pub fn new(
        cache_sets: usize,
        cache_ways: usize,
        num_caches: usize,
    ) -> Result<Self, ConfigError> {
        Self::with_filter_geometry(
            cache_sets,
            cache_ways,
            num_caches,
            DEFAULT_BUCKETS,
            DEFAULT_PROBES,
        )
    }

    /// Creates a Tagless directory with explicit Bloom-filter geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any parameter is zero, `cache_sets` or
    /// `buckets` is not a power of two, or `probes` exceeds `buckets`.
    pub fn with_filter_geometry(
        cache_sets: usize,
        cache_ways: usize,
        num_caches: usize,
        buckets: usize,
        probes: usize,
    ) -> Result<Self, ConfigError> {
        if cache_sets == 0 {
            return Err(ConfigError::Zero {
                what: "cache set count",
            });
        }
        if cache_ways == 0 {
            return Err(ConfigError::Zero { what: "cache ways" });
        }
        if num_caches == 0 {
            return Err(ConfigError::Zero {
                what: "cache count",
            });
        }
        if buckets == 0 {
            return Err(ConfigError::Zero {
                what: "bloom buckets",
            });
        }
        if probes == 0 {
            return Err(ConfigError::Zero {
                what: "bloom probes",
            });
        }
        if !ccd_common::is_power_of_two(cache_sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache set count",
                value: cache_sets as u64,
            });
        }
        if !ccd_common::is_power_of_two(buckets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "bloom buckets",
                value: buckets as u64,
            });
        }
        if probes > buckets {
            return Err(ConfigError::TooLarge {
                what: "bloom probes",
                value: probes as u64,
                max: buckets as u64,
            });
        }
        Ok(TaglessDirectory {
            cache_sets,
            cache_ways,
            num_caches,
            buckets,
            probes,
            filters: vec![vec![0u8; cache_sets * buckets]; num_caches],
            // ccd-lint: allow(no-default-hasher) reason="keyed lookups only, never iterated"
            present: HashMap::new(),
            stats: DirectoryStats::new(),
        })
    }

    /// Bloom-filter buckets per (cache, set) filter.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.block_number() % self.cache_sets as u64) as usize
    }

    /// The `p`-th Bloom-filter bucket probed for `line` — a pure function so
    /// read and update paths stay allocation-free.
    fn probe_bucket(&self, line: LineAddr, p: usize) -> usize {
        let h = SplitMix64::mix(line.block_number() ^ (p as u64).wrapping_mul(0x9E37_79B9));
        self.set_of(line) * self.buckets + (h % self.buckets as u64) as usize
    }

    fn filter_may_contain(&self, cache: CacheId, line: LineAddr) -> bool {
        (0..self.probes).all(|p| self.filters[cache.index()][self.probe_bucket(line, p)] > 0)
    }

    fn filter_add(&mut self, cache: CacheId, line: LineAddr) {
        for p in 0..self.probes {
            let b = self.probe_bucket(line, p);
            let counter = &mut self.filters[cache.index()][b];
            *counter = counter.saturating_add(1);
        }
    }

    fn filter_remove(&mut self, cache: CacheId, line: LineAddr) {
        for p in 0..self.probes {
            let b = self.probe_bucket(line, p);
            let counter = &mut self.filters[cache.index()][b];
            *counter = counter.saturating_sub(1);
        }
    }

    #[cfg(test)]
    fn exact_holders(&self, line: LineAddr) -> Option<&Vec<CacheId>> {
        self.present.get(&line.block_number())
    }

    /// The `AddSharer` operation body, shared with `SetExclusive` (which
    /// appends to an already-populated outcome and must not reset it).
    fn add_impl(&mut self, line: LineAddr, cache: CacheId, out: &mut Outcome) {
        assert!(cache.index() < self.num_caches, "{cache} out of range");
        self.stats.lookups.incr();
        let holders = self.present.entry(line.block_number()).or_default();
        if holders.contains(&cache) {
            self.stats.sharer_adds.incr();
            out.set_hit(true);
            return;
        }
        let new_tag = holders.is_empty();
        holders.push(cache);
        self.filter_add(cache, line);
        if new_tag {
            out.record_allocation(1);
            let occupancy = self.occupancy();
            self.stats.record_insertion(1, 0, occupancy);
        } else {
            out.set_hit(true);
            self.stats.sharer_adds.incr();
        }
    }
}

impl Directory for TaglessDirectory {
    fn organization(&self) -> String {
        format!(
            "tagless-{}c-{}s-{}b",
            self.num_caches, self.cache_sets, self.buckets
        )
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn capacity(&self) -> usize {
        self.num_caches * self.cache_ways * self.cache_sets
    }

    fn len(&self) -> usize {
        self.present.len()
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.present.contains_key(&line.block_number())
    }

    fn may_hold(&self, line: LineAddr, cache: CacheId) -> bool {
        // Conservative: every cache whose filter reports a hit may hold a
        // copy of any tracked line.
        self.contains(line) && self.filter_may_contain(cache, line)
    }

    fn apply(&mut self, op: DirectoryOp, out: &mut Outcome) {
        out.reset();
        match op {
            DirectoryOp::Probe { line } => {
                if self.contains(line) {
                    out.set_hit(true);
                    for c in 0..self.num_caches as u32 {
                        let cache = CacheId::new(c);
                        if self.filter_may_contain(cache, line) {
                            out.push_invalidate(cache);
                        }
                    }
                }
            }
            DirectoryOp::AddSharer { line, cache } => {
                self.add_impl(line, cache, out);
            }
            DirectoryOp::SetExclusive { line, cache } => {
                // The invalidation vector sent by Tagless is the
                // conservative filter-derived superset; the entries actually
                // cleared are the true holders (the hardware learns them
                // from the invalidation acks).
                if self.contains(line) {
                    for c in 0..self.num_caches as u32 {
                        let other = CacheId::new(c);
                        if other != cache && self.filter_may_contain(other, line) {
                            out.push_invalidate(other);
                        }
                    }
                }
                let mut holders = self
                    .present
                    .remove(&line.block_number())
                    .unwrap_or_default();
                let mut keep_writer = false;
                let mut removed_any = false;
                for &holder in &holders {
                    if holder == cache {
                        keep_writer = true;
                    } else {
                        self.filter_remove(holder, line);
                        self.stats.sharer_removes.incr();
                        removed_any = true;
                    }
                }
                holders.clear();
                if keep_writer {
                    holders.push(cache);
                }
                self.present.insert(line.block_number(), holders);
                if removed_any {
                    out.record_invalidate_all();
                    self.stats.invalidate_alls.incr();
                }
                self.add_impl(line, cache, out);
            }
            DirectoryOp::RemoveSharer { line, cache } => {
                let (removed, now_empty) = match self.present.get_mut(&line.block_number()) {
                    Some(holders) => match holders.iter().position(|&c| c == cache) {
                        Some(pos) => {
                            holders.remove(pos);
                            (true, holders.is_empty())
                        }
                        None => (false, false),
                    },
                    None => return,
                };
                if removed {
                    out.set_hit(true);
                    self.stats.sharer_removes.incr();
                    self.filter_remove(cache, line);
                    if now_empty {
                        self.present.remove(&line.block_number());
                        out.record_removed_entry();
                        self.stats.entry_removes.incr();
                    }
                }
            }
            DirectoryOp::RemoveEntry { line } => {
                let Some(holders) = self.present.remove(&line.block_number()) else {
                    return;
                };
                out.set_hit(true);
                out.record_removed_entry();
                for &cache in &holders {
                    self.filter_remove(cache, line);
                }
                self.stats.entry_removes.incr();
                // Report the conservative superset, as the hardware would.
                for c in 0..self.num_caches as u32 {
                    let cache = CacheId::new(c);
                    if holders.contains(&cache) || self.filter_may_contain(cache, line) {
                        out.push_invalidate(cache);
                    }
                }
            }
        }
    }

    fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn storage_profile(&self) -> StorageProfile {
        let filter_bits = self.buckets as u64;
        let grid_bits = filter_bits * (self.cache_sets * self.num_caches) as u64;
        StorageProfile {
            // One bit per bucket in hardware (the counters here are a
            // simulation convenience).
            total_bits: grid_bits,
            // A lookup reads the filter row of one set across all caches.
            bits_read_per_lookup: filter_bits * self.num_caches as u64,
            // An update rewrites one cache's filter for that set.
            bits_written_per_update: filter_bits,
            comparators_per_lookup: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    #[test]
    fn construction_validation() {
        assert!(TaglessDirectory::new(0, 2, 4).is_err());
        assert!(TaglessDirectory::new(16, 0, 4).is_err());
        assert!(TaglessDirectory::new(16, 2, 0).is_err());
        assert!(TaglessDirectory::new(12, 2, 4).is_err());
        assert!(TaglessDirectory::with_filter_geometry(16, 2, 4, 48, 2).is_err());
        assert!(TaglessDirectory::with_filter_geometry(16, 2, 4, 4, 8).is_err());
        assert!(TaglessDirectory::new(16, 2, 4).is_ok());
    }

    #[test]
    fn sharers_are_a_superset_of_true_holders() {
        let mut dir = TaglessDirectory::new(64, 2, 8).unwrap();
        dir.add_sharer(line(5), CacheId::new(1));
        dir.add_sharer(line(5), CacheId::new(6));
        let sharers = dir.sharers(line(5)).unwrap();
        assert!(sharers.contains(&CacheId::new(1)));
        assert!(sharers.contains(&CacheId::new(6)));
        assert!(!dir.contains(line(6)));
        assert_eq!(dir.sharers(line(6)), None);
    }

    #[test]
    fn removal_keeps_filters_consistent() {
        let mut dir = TaglessDirectory::new(64, 2, 4).unwrap();
        dir.add_sharer(line(9), CacheId::new(0));
        dir.add_sharer(line(73), CacheId::new(0)); // same set (64 sets)
        dir.remove_sharer(line(9), CacheId::new(0));
        assert!(!dir.contains(line(9)));
        // line 73 must still be reported for cache 0.
        assert!(dir.sharers(line(73)).unwrap().contains(&CacheId::new(0)));
        dir.remove_sharer(line(73), CacheId::new(0));
        assert!(dir.is_empty());
        assert_eq!(dir.stats().entry_removes.get(), 2);
    }

    #[test]
    fn never_forces_invalidations_under_heavy_load() {
        let mut dir = TaglessDirectory::new(16, 2, 4).unwrap();
        for n in 0..1000u64 {
            let r = dir.add_sharer(line(n), CacheId::new((n % 4) as u32));
            assert!(r.forced_evictions.is_empty());
        }
        assert_eq!(dir.stats().forced_evictions.get(), 0);
        assert!((dir.stats().forced_invalidation_rate()).abs() < 1e-12);
    }

    #[test]
    fn exclusive_clears_true_holders_and_reports_superset() {
        let mut dir = TaglessDirectory::new(64, 2, 8).unwrap();
        dir.add_sharer(line(3), CacheId::new(0));
        dir.add_sharer(line(3), CacheId::new(5));
        let r = dir.set_exclusive(line(3), CacheId::new(2));
        assert!(r.invalidate.contains(&CacheId::new(0)));
        assert!(r.invalidate.contains(&CacheId::new(5)));
        assert!(!r.invalidate.contains(&CacheId::new(2)));
        // After the upgrade only the writer is a true holder.
        assert_eq!(dir.exact_holders(line(3)).unwrap(), &vec![CacheId::new(2)]);
    }

    #[test]
    fn remove_entry_returns_superset_and_clears_state() {
        let mut dir = TaglessDirectory::new(64, 2, 4).unwrap();
        assert!(dir.remove_entry(line(1)).is_none());
        dir.add_sharer(line(1), CacheId::new(1));
        dir.add_sharer(line(1), CacheId::new(2));
        let targets = dir.remove_entry(line(1)).unwrap();
        assert!(targets.contains(&CacheId::new(1)));
        assert!(targets.contains(&CacheId::new(2)));
        assert!(dir.is_empty());
    }

    #[test]
    fn lookup_width_scales_with_cache_count_but_storage_stays_small() {
        let small = TaglessDirectory::new(256, 2, 2).unwrap().storage_profile();
        let large = TaglessDirectory::new(256, 2, 64).unwrap().storage_profile();
        assert_eq!(large.bits_read_per_lookup, 32 * small.bits_read_per_lookup);
        assert_eq!(small.bits_written_per_update, large.bits_written_per_update);
        // Storage per tracked frame is far below a duplicate-tag entry.
        let frames = 256 * 2 * 64;
        assert!(large.total_bits / frames < 40);
    }
}
