//! The skewed-associative directory baseline.
//!
//! The `Skewed 2×` configuration of Figure 12: the same storage as a
//! set-associative Sparse directory, but each way is a direct-mapped table
//! indexed through a *different* skewing hash function (Seznec's
//! skewed-associative cache applied to a directory).  Lookups probe every
//! way at its own hashed index; an insertion that finds all candidate
//! locations occupied selects a victim *from one of the ways* and evicts it.
//!
//! The crucial difference from the Cuckoo directory (Section 4.1) is the
//! insertion procedure: "whereas the skewed-associative cache selects a
//! victim from one of the ways, the Cuckoo organization uses displacement to
//! iteratively move entries until a non-conflicting location is found."
//! Skewing therefore roughly doubles the *perceived* associativity but still
//! forces invalidations under pressure, which is exactly what Figure 12
//! shows for server workloads.

use crate::{Directory, DirectoryStats, Outcome, StorageProfile};
use ccd_common::prefetch::prefetch_slice_element;
use ccd_common::{ceil_log2, ConfigError, LineAddr};
use ccd_hash::{HashFamily, HashKind, IndexHashFamily, MAX_FAMILY_WAYS};
use ccd_sharers::SharerSet;

#[derive(Clone, Debug)]
struct Entry<S> {
    line: LineAddr,
    sharers: S,
}

/// A skewed-associative coherence directory slice.
#[derive(Clone, Debug)]
pub struct SkewedDirectory<S: SharerSet> {
    ways: usize,
    sets: usize,
    num_caches: usize,
    hashes: HashFamily,
    /// `ways` direct-mapped tables, flattened as `way * sets + index`.
    slots: Vec<Option<Entry<S>>>,
    last_use: Vec<u64>,
    tick: u64,
    valid: usize,
    stats: DirectoryStats,
}

impl<S: SharerSet> SkewedDirectory<S> {
    /// Creates a skewed-associative directory with `ways` direct-mapped
    /// tables of `sets` entries each, indexed by skewing hash functions.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any parameter is zero, `sets` is not a
    /// power of two, or the hash family cannot be constructed.
    pub fn new(ways: usize, sets: usize, num_caches: usize) -> Result<Self, ConfigError> {
        Self::with_hash_kind(ways, sets, num_caches, HashKind::Skewing)
    }

    /// Creates a skewed-associative directory with an explicit hash family.
    ///
    /// # Errors
    ///
    /// See [`SkewedDirectory::new`].
    pub fn with_hash_kind(
        ways: usize,
        sets: usize,
        num_caches: usize,
        kind: HashKind,
    ) -> Result<Self, ConfigError> {
        if num_caches == 0 {
            return Err(ConfigError::Zero {
                what: "cache count",
            });
        }
        let hashes = HashFamily::new(kind, ways, sets)?;
        Ok(SkewedDirectory {
            ways,
            sets,
            num_caches,
            hashes,
            slots: (0..ways * sets).map(|_| None).collect(),
            last_use: vec![0; ways * sets],
            tick: 0,
            valid: 0,
            stats: DirectoryStats::new(),
        })
    }

    /// Number of ways (direct-mapped tables).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets per way.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// All candidate slots of `line`, hashed in one pass into `slots[..ways]`.
    fn candidate_slots_into(&self, line: LineAddr, slots: &mut [usize]) {
        self.hashes.index_all_into(line, slots);
        for (way, slot) in slots.iter_mut().enumerate().take(self.ways) {
            *slot += way * self.sets;
        }
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        self.last_use[slot] = self.tick;
    }

    /// The entry-matching predicate shared by lookup and allocation: the
    /// first candidate slot whose occupant is `line`.
    fn find_in(&self, line: LineAddr, candidates: &[usize]) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .find(|&slot| matches!(&self.slots[slot], Some(e) if e.line == line))
    }

    fn find_slot(&self, line: LineAddr) -> Option<usize> {
        let mut candidates = [0usize; MAX_FAMILY_WAYS];
        self.candidate_slots_into(line, &mut candidates);
        self.find_in(line, &candidates[..self.ways])
    }

    fn find_or_allocate(&mut self, line: LineAddr, out: &mut Outcome) -> usize {
        self.stats.lookups.incr();
        let mut candidates = [0usize; MAX_FAMILY_WAYS];
        self.candidate_slots_into(line, &mut candidates);
        if let Some(slot) = self.find_in(line, &candidates[..self.ways]) {
            self.touch(slot);
            out.set_hit(true);
            return slot;
        }

        // Candidate locations, one per way: first invalid slot, else the
        // least recently used candidate.
        let mut chosen = None;
        let mut lru_slot = usize::MAX;
        let mut lru_time = u64::MAX;
        for &slot in &candidates[..self.ways] {
            if self.slots[slot].is_none() {
                chosen = Some(slot);
                break;
            }
            if self.last_use[slot] < lru_time {
                lru_time = self.last_use[slot];
                lru_slot = slot;
            }
        }
        let chosen = chosen.unwrap_or(lru_slot);

        out.record_allocation(1);
        let mut evictions = 0u64;
        if let Some(victim) = self.slots[chosen].take() {
            let targets = out.push_forced_eviction(victim.line, &victim.sharers);
            self.stats.forced_block_invalidations.add(targets as u64);
            self.valid -= 1;
            evictions = 1;
        }
        self.slots[chosen] = Some(Entry {
            line,
            sharers: S::new(self.num_caches),
        });
        self.valid += 1;
        self.touch(chosen);
        let occupancy = self.occupancy();
        self.stats.record_insertion(1, evictions, occupancy);
        chosen
    }
}

impl<S: SharerSet> Directory for SkewedDirectory<S> {
    fn organization(&self) -> String {
        format!("skewed-{}x{}", self.ways, self.sets)
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn capacity(&self) -> usize {
        self.ways * self.sets
    }

    fn len(&self) -> usize {
        self.valid
    }

    crate::slot_dispatch::impl_slot_directory_ops!();

    // Prefetch the candidate slot of every way — each sits at an
    // independent hashed index, so a batched caller overlaps their misses.
    fn prefetch_line(&self, line: LineAddr) {
        let mut candidates = [0usize; MAX_FAMILY_WAYS];
        self.candidate_slots_into(line, &mut candidates);
        for &slot in &candidates[..self.ways] {
            prefetch_slice_element(&self.slots, slot);
        }
    }

    fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn storage_profile(&self) -> StorageProfile {
        let probe = S::new(self.num_caches);
        let sharer_bits = probe.storage_bits();
        // Skewed indexing folds all address bits into the index, so the full
        // block-number tag must be stored (minus nothing recoverable from the
        // index); we follow the usual practice of storing the same tag width
        // as the equivalent set-associative structure.
        let tag_bits = u64::from(
            ccd_common::PHYSICAL_ADDRESS_BITS
                .saturating_sub(ccd_common::BlockGeometry::default().offset_bits())
                .saturating_sub(ceil_log2(self.sets as u64)),
        );
        let state_bits = 1;
        let entry_bits = tag_bits + sharer_bits + state_bits;
        StorageProfile {
            total_bits: entry_bits * (self.ways * self.sets) as u64,
            bits_read_per_lookup: self.ways as u64 * (tag_bits + probe.access_bits()),
            bits_written_per_update: entry_bits,
            comparators_per_lookup: self.ways as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64};
    use ccd_common::CacheId;
    use ccd_sharers::FullBitVector;

    type Dir = SkewedDirectory<FullBitVector>;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    #[test]
    fn construction_validation() {
        assert!(Dir::new(0, 64, 4).is_err());
        assert!(Dir::new(4, 63, 4).is_err());
        assert!(Dir::new(4, 64, 0).is_err());
        assert!(Dir::new(4, 64, 4).is_ok());
    }

    #[test]
    fn basic_add_lookup_remove() {
        let mut dir = Dir::new(4, 64, 8).unwrap();
        let r = dir.add_sharer(line(100), CacheId::new(2));
        assert!(r.allocated_new_entry);
        dir.add_sharer(line(100), CacheId::new(5));
        assert_eq!(
            dir.sharers(line(100)),
            Some(vec![CacheId::new(2), CacheId::new(5)])
        );
        dir.remove_sharer(line(100), CacheId::new(2));
        dir.remove_sharer(line(100), CacheId::new(5));
        assert!(!dir.contains(line(100)));
        assert_eq!(dir.len(), 0);
    }

    #[test]
    fn exclusive_invalidates_other_sharers() {
        let mut dir = Dir::new(2, 32, 4).unwrap();
        dir.add_sharer(line(1), CacheId::new(0));
        dir.add_sharer(line(1), CacheId::new(1));
        let r = dir.set_exclusive(line(1), CacheId::new(3));
        let mut inv = r.invalidate;
        inv.sort_unstable();
        assert_eq!(inv, vec![CacheId::new(0), CacheId::new(1)]);
        assert_eq!(dir.sharers(line(1)), Some(vec![CacheId::new(3)]));
    }

    #[test]
    fn conflicts_force_eviction_when_all_ways_occupied() {
        // 1-way skewed = direct-mapped through one hash; drive it well past
        // capacity and confirm evictions occur and capacity is respected.
        let mut dir = Dir::new(1, 16, 2).unwrap();
        let mut evictions = 0usize;
        for n in 0..64u64 {
            let r = dir.add_sharer(line(n), CacheId::new(0));
            evictions += r.forced_evictions.len();
        }
        assert!(evictions > 0, "a 16-entry table cannot hold 64 lines");
        assert!(dir.len() <= 16);
        assert_eq!(dir.stats().forced_evictions.get(), evictions as u64);
    }

    #[test]
    fn skewing_reduces_conflicts_versus_sparse_on_adversarial_pattern() {
        // Lines that collide in the low-order index bits (classic pathological
        // pattern for a modulo-indexed Sparse directory) are spread out by
        // the skewing functions.
        let ways = 4;
        let sets = 256;
        let mut sparse = crate::SparseDirectory::<FullBitVector>::new(ways, sets, 4).unwrap();
        let mut skewed = Dir::new(ways, sets, 4).unwrap();
        // 64 lines that all share the same low-order bits.
        let mut sparse_evictions = 0usize;
        let mut skewed_evictions = 0usize;
        for i in 0..64u64 {
            let l = line(7 + i * sets as u64);
            sparse_evictions += sparse.add_sharer(l, CacheId::new(0)).forced_evictions.len();
            skewed_evictions += skewed.add_sharer(l, CacheId::new(0)).forced_evictions.len();
        }
        assert!(sparse_evictions > 0, "sparse must conflict on this pattern");
        assert!(
            skewed_evictions < sparse_evictions,
            "skewed ({skewed_evictions}) should conflict less than sparse ({sparse_evictions})"
        );
    }

    #[test]
    fn random_load_below_capacity_rarely_evicts() {
        let mut dir = Dir::new(4, 1024, 8).unwrap();
        let mut rng = SplitMix64::new(42);
        let capacity = dir.capacity();
        let mut evictions = 0usize;
        // Fill to 50% occupancy with random lines.
        for _ in 0..capacity / 2 {
            let l = line(rng.next_u64() >> 10);
            evictions += dir.add_sharer(l, CacheId::new(0)).forced_evictions.len();
        }
        let rate = evictions as f64 / (capacity / 2) as f64;
        assert!(
            rate < 0.05,
            "eviction rate at 50% load should be small, got {rate}"
        );
    }

    #[test]
    fn organization_and_profile() {
        let dir = Dir::new(4, 512, 16).unwrap();
        assert_eq!(dir.organization(), "skewed-4x512");
        let p = dir.storage_profile();
        assert_eq!(p.comparators_per_lookup, 4);
        assert!(p.total_bits > 0);
    }
}
