//! The Duplicate-Tag directory baseline.
//!
//! The Duplicate-Tag organization (Piranha/Niagara style, Section 3.1 of the
//! paper) mirrors the tag array of every private cache, "ensuring that there
//! is always sufficient space in the directory to track all cached blocks".
//! A lookup compares the searched tag against *every* way of the set across
//! *every* mirrored cache, so the directory's associativity equals
//! `cache associativity × cache count` — the 332-wide comparisons cited from
//! the OpenSPARC T2 specification.  That wide associative lookup is what
//! makes the design area-efficient but energy-unscalable (Figure 4).
//!
//! Because the mirror has exactly one slot per private-cache frame, a
//! correctly driven Duplicate-Tag directory never forces invalidations: an
//! insertion only displaces a mirror entry when the corresponding private
//! cache itself replaced that frame.  When this structure is driven without
//! eviction notifications (e.g. in stand-alone stress tests), a mirror
//! overflow is reported as a forced eviction of the stale entry.

use crate::{Directory, DirectoryOp, DirectoryStats, Outcome, StorageProfile};
use ccd_common::{ceil_log2, CacheId, ConfigError, LineAddr};

#[derive(Clone, Debug)]
struct MirrorEntry {
    line: LineAddr,
    last_use: u64,
}

/// A Duplicate-Tag coherence directory slice.
///
/// The slice mirrors, for each of `num_caches` private caches, a tag array
/// of `cache_sets × cache_ways` frames (the portion of each private cache
/// that maps to this slice).
#[derive(Clone, Debug)]
pub struct DuplicateTagDirectory {
    cache_sets: usize,
    cache_ways: usize,
    num_caches: usize,
    /// `mirrors[cache][set * cache_ways + way]`
    mirrors: Vec<Vec<Option<MirrorEntry>>>,
    tick: u64,
    valid: usize,
    stats: DirectoryStats,
    /// Number of distinct lines currently tracked (for `len`)
    // ccd-lint: allow(no-default-hasher) reason="membership/count only, never iterated; probe-path lookups need O(1)"
    distinct: std::collections::HashMap<u64, u32>,
}

impl DuplicateTagDirectory {
    /// Creates a Duplicate-Tag directory mirroring `num_caches` private
    /// caches of `cache_sets` sets × `cache_ways` ways each.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any parameter is zero or `cache_sets`
    /// is not a power of two.
    pub fn new(
        cache_sets: usize,
        cache_ways: usize,
        num_caches: usize,
    ) -> Result<Self, ConfigError> {
        if cache_sets == 0 {
            return Err(ConfigError::Zero {
                what: "cache set count",
            });
        }
        if cache_ways == 0 {
            return Err(ConfigError::Zero { what: "cache ways" });
        }
        if num_caches == 0 {
            return Err(ConfigError::Zero {
                what: "cache count",
            });
        }
        if !ccd_common::is_power_of_two(cache_sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache set count",
                value: cache_sets as u64,
            });
        }
        Ok(DuplicateTagDirectory {
            cache_sets,
            cache_ways,
            num_caches,
            mirrors: vec![vec![None; cache_sets * cache_ways]; num_caches],
            tick: 0,
            valid: 0,
            stats: DirectoryStats::new(),
            // ccd-lint: allow(no-default-hasher) reason="membership/count only, never iterated"
            distinct: std::collections::HashMap::new(),
        })
    }

    /// Effective directory associativity: cache ways × cache count
    /// (Section 3.1).
    #[must_use]
    pub fn effective_associativity(&self) -> usize {
        self.cache_ways * self.num_caches
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.block_number() % self.cache_sets as u64) as usize
    }

    fn frame_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.cache_ways..(set + 1) * self.cache_ways
    }

    fn find_in_mirror(&self, cache: CacheId, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        self.frame_range(set)
            .find(|&frame| matches!(&self.mirrors[cache.index()][frame], Some(e) if e.line == line))
    }

    fn note_added(&mut self, line: LineAddr) -> bool {
        let counter = self.distinct.entry(line.block_number()).or_insert(0);
        *counter += 1;
        *counter == 1
    }

    fn note_removed(&mut self, line: LineAddr) {
        if let Some(counter) = self.distinct.get_mut(&line.block_number()) {
            *counter -= 1;
            if *counter == 0 {
                self.distinct.remove(&line.block_number());
                self.stats.entry_removes.incr();
            }
        }
    }

    fn remove_from_mirror(&mut self, cache: CacheId, line: LineAddr) -> bool {
        if let Some(frame) = self.find_in_mirror(cache, line) {
            self.mirrors[cache.index()][frame] = None;
            self.valid -= 1;
            self.note_removed(line);
            true
        } else {
            false
        }
    }

    /// Inserts `line` into `cache`'s mirror, returning the evicted line if
    /// the mirror set was full (which only happens when the caller does not
    /// report private-cache evictions).
    fn insert_into_mirror(&mut self, cache: CacheId, line: LineAddr) -> Option<LineAddr> {
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;

        // Reuse an invalid frame when available.
        let range = self.frame_range(set);
        let mirror = &mut self.mirrors[cache.index()];
        if let Some(frame) = range.clone().find(|&f| mirror[f].is_none()) {
            mirror[frame] = Some(MirrorEntry {
                line,
                last_use: tick,
            });
            self.valid += 1;
            return None;
        }
        // Mirror set full: replace the LRU frame (the private cache must have
        // replaced it too; if not, report the stale entry as forcibly evicted).
        let frame = range
            .min_by_key(|&f| mirror[f].as_ref().map_or(0, |e| e.last_use))
            .expect("cache_ways > 0");
        let victim = mirror[frame]
            .replace(MirrorEntry {
                line,
                last_use: tick,
            })
            .expect("full set has valid entries");
        self.note_removed(victim.line);
        self.stats.forced_block_invalidations.incr();
        Some(victim.line)
    }

    /// The `AddSharer` operation body, shared with `SetExclusive` (which
    /// appends to an already-populated outcome and must not reset it).
    fn add_impl(&mut self, line: LineAddr, cache: CacheId, out: &mut Outcome) {
        assert!(cache.index() < self.num_caches, "{cache} out of range");
        self.stats.lookups.incr();
        if let Some(frame) = self.find_in_mirror(cache, line) {
            // Already mirrored for this cache; refresh recency.
            self.tick += 1;
            self.mirrors[cache.index()][frame]
                .as_mut()
                .expect("frame is valid")
                .last_use = self.tick;
            self.stats.sharer_adds.incr();
            out.set_hit(true);
            return;
        }

        let new_tag = self.note_added(line);
        let evicted = self.insert_into_mirror(cache, line);
        if new_tag {
            out.record_allocation(1);
        } else {
            out.set_hit(true);
        }
        let forced = u64::from(evicted.is_some());
        if let Some(victim_line) = evicted {
            out.push_forced_eviction_one(victim_line, cache);
        }
        if new_tag {
            let occupancy = self.occupancy();
            self.stats.record_insertion(1, forced, occupancy);
        } else {
            self.stats.sharer_adds.incr();
            if forced > 0 {
                self.stats.forced_evictions.add(forced);
            }
        }
    }
}

impl Directory for DuplicateTagDirectory {
    fn organization(&self) -> String {
        format!(
            "duplicate-tag-{}x{}x{}",
            self.num_caches, self.cache_ways, self.cache_sets
        )
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn capacity(&self) -> usize {
        self.num_caches * self.cache_ways * self.cache_sets
    }

    fn len(&self) -> usize {
        self.distinct.len()
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.distinct.contains_key(&line.block_number())
    }

    fn may_hold(&self, line: LineAddr, cache: CacheId) -> bool {
        self.find_in_mirror(cache, line).is_some()
    }

    fn apply(&mut self, op: DirectoryOp, out: &mut Outcome) {
        out.reset();
        match op {
            DirectoryOp::Probe { line } => {
                if self.contains(line) {
                    out.set_hit(true);
                    for c in 0..self.num_caches as u32 {
                        let cache = CacheId::new(c);
                        if self.find_in_mirror(cache, line).is_some() {
                            out.push_invalidate(cache);
                        }
                    }
                }
            }
            DirectoryOp::AddSharer { line, cache } => {
                self.add_impl(line, cache, out);
            }
            DirectoryOp::SetExclusive { line, cache } => {
                let mut removed_any = false;
                for c in 0..self.num_caches as u32 {
                    let other = CacheId::new(c);
                    if other != cache && self.remove_from_mirror(other, line) {
                        self.stats.sharer_removes.incr();
                        out.push_invalidate(other);
                        removed_any = true;
                    }
                }
                if removed_any {
                    out.record_invalidate_all();
                    self.stats.invalidate_alls.incr();
                }
                self.add_impl(line, cache, out);
            }
            DirectoryOp::RemoveSharer { line, cache } => {
                if self.remove_from_mirror(cache, line) {
                    out.set_hit(true);
                    self.stats.sharer_removes.incr();
                    if !self.contains(line) {
                        out.record_removed_entry();
                    }
                }
            }
            DirectoryOp::RemoveEntry { line } => {
                if self.contains(line) {
                    out.set_hit(true);
                    out.record_removed_entry();
                    for c in 0..self.num_caches as u32 {
                        let cache = CacheId::new(c);
                        if self.remove_from_mirror(cache, line) {
                            out.push_invalidate(cache);
                        }
                    }
                }
            }
        }
    }

    fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn storage_profile(&self) -> StorageProfile {
        let tag_bits = u64::from(
            ccd_common::PHYSICAL_ADDRESS_BITS
                .saturating_sub(ccd_common::BlockGeometry::default().offset_bits())
                .saturating_sub(ceil_log2(self.cache_sets as u64)),
        );
        let state_bits = 1;
        let entry_bits = tag_bits + state_bits;
        let frames = self.capacity() as u64;
        let assoc = self.effective_associativity() as u64;
        StorageProfile {
            // Only duplicated tags are stored; sharer identity is implicit in
            // which mirror the tag sits in.
            total_bits: entry_bits * frames,
            // Every lookup reads the full set across all mirrored caches.
            bits_read_per_lookup: assoc * tag_bits,
            bits_written_per_update: entry_bits,
            comparators_per_lookup: assoc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    #[test]
    fn construction_validation() {
        assert!(DuplicateTagDirectory::new(0, 2, 4).is_err());
        assert!(DuplicateTagDirectory::new(16, 0, 4).is_err());
        assert!(DuplicateTagDirectory::new(16, 2, 0).is_err());
        assert!(DuplicateTagDirectory::new(12, 2, 4).is_err());
        let dir = DuplicateTagDirectory::new(16, 2, 4).unwrap();
        assert_eq!(dir.effective_associativity(), 8);
        assert_eq!(dir.capacity(), 16 * 2 * 4);
    }

    #[test]
    fn tracks_sharers_across_mirrors() {
        let mut dir = DuplicateTagDirectory::new(8, 2, 4).unwrap();
        let r = dir.add_sharer(line(3), CacheId::new(0));
        assert!(r.allocated_new_entry);
        let r = dir.add_sharer(line(3), CacheId::new(2));
        assert!(!r.allocated_new_entry, "same tag, second cache");
        assert_eq!(
            dir.sharers(line(3)),
            Some(vec![CacheId::new(0), CacheId::new(2)])
        );
        assert_eq!(dir.len(), 1);

        dir.remove_sharer(line(3), CacheId::new(0));
        assert_eq!(dir.sharers(line(3)), Some(vec![CacheId::new(2)]));
        dir.remove_sharer(line(3), CacheId::new(2));
        assert!(!dir.contains(line(3)));
        assert_eq!(dir.stats().entry_removes.get(), 1);
    }

    #[test]
    fn never_forces_invalidations_when_driven_with_evictions() {
        // Mirror a 2-way, 4-set cache per core and emulate the private cache
        // by evicting before every insertion that would overflow a set.
        let mut dir = DuplicateTagDirectory::new(4, 2, 2).unwrap();
        let cache = CacheId::new(0);
        let mut resident: Vec<LineAddr> = Vec::new();
        let mut forced = 0usize;
        for n in 0..64u64 {
            let l = line(n);
            let set = n % 4;
            // Private 2-way cache: if two residents already map to this set,
            // evict the older one first (as the cache itself would).
            let in_set: Vec<LineAddr> = resident
                .iter()
                .copied()
                .filter(|r| r.block_number() % 4 == set)
                .collect();
            if in_set.len() == 2 {
                let victim = in_set[0];
                dir.remove_sharer(victim, cache);
                resident.retain(|&r| r != victim);
            }
            forced += dir.add_sharer(l, cache).forced_evictions.len();
            resident.push(l);
        }
        assert_eq!(forced, 0, "duplicate-tag never forces invalidations");
        assert_eq!(dir.stats().forced_evictions.get(), 0);
    }

    #[test]
    fn overflow_without_evictions_replaces_stale_mirror_entries() {
        let mut dir = DuplicateTagDirectory::new(2, 1, 1).unwrap();
        dir.add_sharer(line(0), CacheId::new(0));
        let r = dir.add_sharer(line(2), CacheId::new(0)); // same set, 1 way
        assert_eq!(r.forced_evictions.len(), 1);
        assert_eq!(r.forced_evictions[0].line, line(0));
        assert!(!dir.contains(line(0)));
        assert!(dir.contains(line(2)));
    }

    #[test]
    fn exclusive_removes_other_mirrors() {
        let mut dir = DuplicateTagDirectory::new(8, 2, 4).unwrap();
        for c in 0..3u32 {
            dir.add_sharer(line(10), CacheId::new(c));
        }
        let r = dir.set_exclusive(line(10), CacheId::new(3));
        let mut inv = r.invalidate;
        inv.sort_unstable();
        assert_eq!(inv, vec![CacheId::new(0), CacheId::new(1), CacheId::new(2)]);
        assert_eq!(dir.sharers(line(10)), Some(vec![CacheId::new(3)]));
        assert_eq!(dir.stats().invalidate_alls.get(), 1);
    }

    #[test]
    fn remove_entry_clears_all_mirrors() {
        let mut dir = DuplicateTagDirectory::new(8, 2, 4).unwrap();
        assert!(dir.remove_entry(line(1)).is_none());
        dir.add_sharer(line(1), CacheId::new(0));
        dir.add_sharer(line(1), CacheId::new(3));
        let holders = dir.remove_entry(line(1)).unwrap();
        assert_eq!(holders.len(), 2);
        assert!(dir.is_empty());
    }

    #[test]
    fn storage_profile_scales_with_cache_count() {
        let small = DuplicateTagDirectory::new(256, 2, 2)
            .unwrap()
            .storage_profile();
        let large = DuplicateTagDirectory::new(256, 2, 32)
            .unwrap()
            .storage_profile();
        // Lookup width (and thus energy) grows linearly with cache count.
        assert_eq!(large.bits_read_per_lookup, 16 * small.bits_read_per_lookup);
        assert_eq!(large.comparators_per_lookup, 64);
        // Per-entry write cost does not change.
        assert_eq!(small.bits_written_per_update, large.bits_written_per_update);
    }
}
