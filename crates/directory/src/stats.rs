//! Per-directory statistics.
//!
//! The counters gathered here are exactly the quantities the paper's
//! evaluation reports:
//!
//! * forced-invalidation rate — forced evictions per directory-entry
//!   insertion (Figures 9 and 12),
//! * average and distribution of insertion attempts (Figures 7, 9, 10, 11),
//! * average occupancy (Figure 8),
//! * the directory event mix used to weight the energy model
//!   (footnote 1 of Section 5.6).

use ccd_common::stats::{
    Counter, Histogram, LogHistogram, MeanAccumulator, MetricSet, RateEstimator,
};

/// Upper bound for the insertion-attempt histogram, matching the paper's
/// 32-attempt cap (Section 5.2).
pub const MAX_TRACKED_ATTEMPTS: usize = 32;

/// Statistics accumulated by a directory slice.
#[derive(Clone, Debug, PartialEq)]
pub struct DirectoryStats {
    /// Lookups performed (reads of the directory, including the implicit
    /// lookup preceding every insertion).
    pub lookups: Counter,
    /// New tags inserted into the directory.
    pub insertions: Counter,
    /// Sharer added to an already-present entry.
    pub sharer_adds: Counter,
    /// Sharer removed from an entry (private-cache eviction).
    pub sharer_removes: Counter,
    /// Entries removed because their last sharer left or the home block was
    /// evicted.
    pub entry_removes: Counter,
    /// "Invalidate all sharers" operations (exclusive requests that found
    /// other sharers).
    pub invalidate_alls: Counter,
    /// Directory entries evicted because of structural conflicts, each of
    /// which forces invalidation of live cached blocks.
    pub forced_evictions: Counter,
    /// Cached blocks invalidated as a result of forced evictions.
    pub forced_block_invalidations: Counter,
    /// Forced evictions per insertion — the paper's invalidation rate.
    pub invalidation_rate: RateEstimator,
    /// Distribution of insertion attempts (1 = vacant way found during the
    /// initial lookup).
    pub insertion_attempts: Histogram,
    /// Insertions that failed to find a vacant slot within the attempt
    /// budget and had to discard an entry.
    pub insertion_failures: Counter,
    /// Directory occupancy sampled at every insertion.
    pub occupancy: MeanAccumulator,
}

impl Default for DirectoryStats {
    fn default() -> Self {
        Self::new()
    }
}

impl DirectoryStats {
    /// Creates an empty statistics block.
    #[must_use]
    pub fn new() -> Self {
        DirectoryStats {
            lookups: Counter::new(),
            insertions: Counter::new(),
            sharer_adds: Counter::new(),
            sharer_removes: Counter::new(),
            entry_removes: Counter::new(),
            invalidate_alls: Counter::new(),
            forced_evictions: Counter::new(),
            forced_block_invalidations: Counter::new(),
            invalidation_rate: RateEstimator::new(),
            insertion_attempts: Histogram::new(MAX_TRACKED_ATTEMPTS),
            insertion_failures: Counter::new(),
            occupancy: MeanAccumulator::new(),
        }
    }

    /// Records a completed insertion: `attempts` insertion attempts,
    /// `forced_evictions` entries displaced out of the directory, and the
    /// occupancy observed at insertion time.
    pub fn record_insertion(&mut self, attempts: u32, forced_evictions: u64, occupancy: f64) {
        self.insertions.incr();
        self.insertion_attempts.record(u64::from(attempts));
        if forced_evictions > 0 {
            self.forced_evictions.add(forced_evictions);
            self.invalidation_rate.record_hit(forced_evictions);
        } else {
            self.invalidation_rate.record_miss();
        }
        self.occupancy.record(occupancy);
    }

    /// Mean number of insertion attempts per insertion.
    #[must_use]
    pub fn avg_insertion_attempts(&self) -> f64 {
        self.insertion_attempts.mean()
    }

    /// Forced-invalidation rate: forced evictions per insertion (0.0..).
    #[must_use]
    pub fn forced_invalidation_rate(&self) -> f64 {
        self.invalidation_rate.rate()
    }

    /// Average occupancy observed across insertions (0.0 ..= 1.0).
    #[must_use]
    pub fn avg_occupancy(&self) -> f64 {
        self.occupancy.mean()
    }

    /// Total directory operations, used to derive the event mix.
    #[must_use]
    pub fn total_operations(&self) -> u64 {
        self.insertions.get()
            + self.sharer_adds.get()
            + self.sharer_removes.get()
            + self.entry_removes.get()
            + self.invalidate_alls.get()
    }

    /// The event mix as fractions of all directory operations, in the order
    /// `(insert, add sharer, remove sharer, remove tag, invalidate all)` —
    /// the quantities of footnote 1 in Section 5.6.
    #[must_use]
    pub fn event_mix(&self) -> EventMix {
        let total = self.total_operations();
        let frac = |c: Counter| {
            if total == 0 {
                0.0
            } else {
                c.get() as f64 / total as f64
            }
        };
        EventMix {
            insert_tag: frac(self.insertions),
            add_sharer: frac(self.sharer_adds),
            remove_sharer: frac(self.sharer_removes),
            remove_tag: frac(self.entry_removes),
            invalidate_all: frac(self.invalidate_alls),
        }
    }

    /// Merges another statistics block into this one (used when aggregating
    /// the per-slice statistics of a distributed directory).
    pub fn merge(&mut self, other: &DirectoryStats) {
        self.lookups.add(other.lookups.get());
        self.insertions.add(other.insertions.get());
        self.sharer_adds.add(other.sharer_adds.get());
        self.sharer_removes.add(other.sharer_removes.get());
        self.entry_removes.add(other.entry_removes.get());
        self.invalidate_alls.add(other.invalidate_alls.get());
        self.forced_evictions.add(other.forced_evictions.get());
        self.forced_block_invalidations
            .add(other.forced_block_invalidations.get());
        self.invalidation_rate.merge(&other.invalidation_rate);
        self.insertion_attempts.merge(&other.insertion_attempts);
        self.insertion_failures.add(other.insertion_failures.get());
        self.occupancy.merge(&other.occupancy);
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = DirectoryStats::new();
    }
}

/// Depth distributions gathered by an instrumented hash-table directory.
///
/// Where [`DirectoryStats`] counts *what* happened, `DepthMetrics` records
/// *how far* each operation had to walk: probe depth (ways inspected per
/// lookup-bearing operation), displacement-chain length (entries moved per
/// greedy cuckoo insertion) and BFS path depth (moves along a
/// shortest-path insertion).  The histograms are HDR-style
/// [`LogHistogram`]s so tails stay cheap to record at full precision.
///
/// Arming is optional and off by default — an unarmed directory pays one
/// branch per record site (contract #11: observation must not perturb
/// semantics, and must barely perturb throughput).  Like
/// [`DirectoryStats`], per-shard metrics merge in a fixed shard order into
/// a worker-count-invariant aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepthMetrics {
    /// Ways inspected by the probe serving each table operation (1 = hit
    /// or vacancy in the first way).
    pub probe_depth: LogHistogram,
    /// Entries displaced by each greedy insertion that had to displace
    /// (length of the random-walk kick chain).
    pub displacement_chain: LogHistogram,
    /// Moves applied by each BFS shortest-path insertion.
    pub bfs_path_depth: LogHistogram,
}

impl DepthMetrics {
    /// Creates empty metrics at `sig_bits` histogram resolution.
    #[must_use]
    pub fn new(sig_bits: u32) -> Self {
        DepthMetrics {
            probe_depth: LogHistogram::new(sig_bits),
            displacement_chain: LogHistogram::new(sig_bits),
            bfs_path_depth: LogHistogram::new(sig_bits),
        }
    }

    /// The configured histogram resolution.
    #[must_use]
    pub fn sig_bits(&self) -> u32 {
        self.probe_depth.sig_bits()
    }

    /// Merges another metrics block into this one (fixed-shard-order
    /// reduction, like [`DirectoryStats::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn merge(&mut self, other: &DepthMetrics) {
        self.probe_depth.merge(&other.probe_depth);
        self.displacement_chain.merge(&other.displacement_chain);
        self.bfs_path_depth.merge(&other.bfs_path_depth);
    }

    /// Registers the three distributions into `metrics` under their
    /// canonical names and folds the recorded data in.
    pub fn register_into(&self, metrics: &mut MetricSet) {
        for (name, hist) in [
            ("probe_depth", &self.probe_depth),
            ("displacement_chain", &self.displacement_chain),
            ("bfs_path_depth", &self.bfs_path_depth),
        ] {
            let id = metrics.histogram(name, hist.sig_bits());
            metrics.histogram_mut(id).merge(hist);
        }
    }

    /// Resets every histogram, keeping the resolution.
    pub fn reset(&mut self) {
        self.probe_depth.reset();
        self.displacement_chain.reset();
        self.bfs_path_depth.reset();
    }
}

/// Relative frequencies of the five directory event classes.
///
/// The paper measured, across its workload suite: insert 23.5%, add sharer
/// 26.9%, remove sharer 24.9%, remove tag 23.5%, invalidate-all 1.2%
/// (Section 5.6, footnote 1). [`EventMix::paper_reference`] returns those
/// reference values for use by the analytical energy model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventMix {
    /// Fraction of operations that insert a new tag.
    pub insert_tag: f64,
    /// Fraction of operations that add a sharer to an existing entry.
    pub add_sharer: f64,
    /// Fraction of operations that remove a sharer from an existing entry.
    pub remove_sharer: f64,
    /// Fraction of operations that remove a tag from the directory.
    pub remove_tag: f64,
    /// Fraction of operations that invalidate all sharers.
    pub invalidate_all: f64,
}

impl EventMix {
    /// The event frequencies measured by the paper (footnote 1, Section 5.6).
    #[must_use]
    pub const fn paper_reference() -> Self {
        EventMix {
            insert_tag: 0.235,
            add_sharer: 0.269,
            remove_sharer: 0.249,
            remove_tag: 0.235,
            invalidate_all: 0.012,
        }
    }

    /// Sum of all fractions (≈ 1.0 for a complete mix).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.insert_tag
            + self.add_sharer
            + self.remove_sharer
            + self.remove_tag
            + self.invalidate_all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_insertion_updates_all_derived_metrics() {
        let mut s = DirectoryStats::new();
        s.record_insertion(1, 0, 0.25);
        s.record_insertion(3, 0, 0.50);
        s.record_insertion(2, 1, 0.75);
        assert_eq!(s.insertions.get(), 3);
        assert!((s.avg_insertion_attempts() - 2.0).abs() < 1e-12);
        assert!((s.forced_invalidation_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(s.forced_evictions.get(), 1);
    }

    #[test]
    fn event_mix_fractions_sum_to_one() {
        let mut s = DirectoryStats::new();
        s.insertions.add(235);
        s.sharer_adds.add(269);
        s.sharer_removes.add(249);
        s.entry_removes.add(235);
        s.invalidate_alls.add(12);
        let mix = s.event_mix();
        assert!((mix.total() - 1.0).abs() < 1e-9);
        assert!((mix.insert_tag - 0.235).abs() < 1e-9);

        let reference = EventMix::paper_reference();
        assert!((reference.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = DirectoryStats::new();
        assert_eq!(s.avg_insertion_attempts(), 0.0);
        assert_eq!(s.forced_invalidation_rate(), 0.0);
        assert_eq!(s.avg_occupancy(), 0.0);
        assert_eq!(s.total_operations(), 0);
        assert_eq!(s.event_mix().total(), 0.0);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = DirectoryStats::new();
        let mut b = DirectoryStats::new();
        a.record_insertion(1, 0, 0.1);
        b.record_insertion(5, 2, 0.9);
        b.lookups.add(10);
        a.merge(&b);
        assert_eq!(a.insertions.get(), 2);
        assert_eq!(a.lookups.get(), 10);
        assert_eq!(a.forced_evictions.get(), 2);
        assert!((a.avg_insertion_attempts() - 3.0).abs() < 1e-12);
        assert!((a.avg_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = DirectoryStats::new();
        s.record_insertion(4, 1, 0.3);
        s.reset();
        assert_eq!(s.insertions.get(), 0);
        assert_eq!(s.avg_insertion_attempts(), 0.0);
    }

    #[test]
    fn depth_metrics_merge_register_and_reset() {
        let mut a = DepthMetrics::new(2);
        assert_eq!(a.sig_bits(), 2);
        a.probe_depth.record(1);
        a.displacement_chain.record(5);
        let mut b = DepthMetrics::new(2);
        b.probe_depth.record(4);
        b.bfs_path_depth.record(3);
        // Merge commutes, like every other stats reduction.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.probe_depth.count(), 2);

        let mut set = ccd_common::MetricSet::new();
        ab.register_into(&mut set);
        let snap = set.snapshot();
        assert_eq!(snap.histograms.len(), 3);
        assert_eq!(snap.histograms[0].name, "probe_depth");
        assert_eq!(snap.histograms[0].count, 2);
        assert_eq!(snap.histograms[1].name, "displacement_chain");
        assert_eq!(snap.histograms[2].name, "bfs_path_depth");

        ab.reset();
        assert_eq!(ab.probe_depth.count(), 0);
        assert_eq!(ab.sig_bits(), 2);
    }
}
