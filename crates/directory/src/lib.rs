//! Coherence-directory organizations: the common [`Directory`] trait and the
//! baseline designs the Cuckoo directory is evaluated against.
//!
//! A *directory slice* tracks, for every block currently resident in some
//! private cache that maps to this slice, the set of caches holding a copy
//! (Section 2 of the paper).  The paper compares several slice
//! organizations that differ in how entries are found and where a new entry
//! may be placed:
//!
//! * [`SparseDirectory`] — a conventional set-associative structure indexed
//!   by low-order address bits.  Set conflicts force invalidations of cached
//!   blocks (Section 3.2), which is why practical Sparse directories
//!   over-provision capacity (the 2× and 8× configurations of Figure 12).
//! * [`SkewedDirectory`] — the same storage, but each way indexed through a
//!   different skewing hash function (Seznec's skewed-associative cache
//!   adapted to a directory).  Reduces, but does not eliminate, conflicts.
//! * [`DuplicateTagDirectory`] — mirrors every private cache's tag array;
//!   never forces invalidations but needs `cache associativity × cache
//!   count` way comparisons per lookup (Section 3.1), which is what makes
//!   its energy grow quadratically in aggregate.
//! * [`InCacheDirectory`] — embeds sharer vectors in the (inclusive) shared
//!   L2 tags; tag storage is free but every L2 tag carries a full vector.
//! * [`TaglessDirectory`] — the Tagless design of Zebchuk et al.: a grid of
//!   per-(cache, set) Bloom filters giving a conservative sharer superset.
//!
//! The paper's own contribution, the Cuckoo directory, implements this same
//! trait from the `ccd-cuckoo` crate.
//!
//! # Example
//!
//! ```
//! use ccd_common::{CacheId, LineAddr};
//! use ccd_directory::{Directory, SparseDirectory};
//! use ccd_sharers::FullBitVector;
//!
//! // An 8-way, 256-set sparse directory tracking 32 private caches.
//! let mut dir = SparseDirectory::<FullBitVector>::new(8, 256, 32)?;
//! let line = LineAddr::from_block_number(0xabc);
//! let outcome = dir.add_sharer(line, CacheId::new(3));
//! assert!(outcome.allocated_new_entry);
//! assert_eq!(dir.sharers(line), Some(vec![CacheId::new(3)]));
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod duplicate_tag;
pub mod in_cache;
pub mod skewed;
pub mod sparse;
pub mod stats;
pub mod tagless;

pub use duplicate_tag::DuplicateTagDirectory;
pub use in_cache::InCacheDirectory;
pub use skewed::SkewedDirectory;
pub use sparse::SparseDirectory;
pub use stats::DirectoryStats;
pub use tagless::TaglessDirectory;

use ccd_common::{CacheId, LineAddr};

/// A block whose directory entry was evicted to make room for another entry.
///
/// The coherence protocol must invalidate the listed caches' copies of the
/// block before the entry can be reused — this is the "forced invalidation"
/// the paper's Figures 9 and 12 measure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForcedEviction {
    /// The block that lost its directory entry.
    pub line: LineAddr,
    /// Caches that may hold a copy and must be invalidated.
    pub invalidate: Vec<CacheId>,
}

/// The result of a directory update that may allocate an entry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateResult {
    /// `true` when the update allocated a new directory entry (a new tag was
    /// inserted), `false` when it only modified an existing entry.
    pub allocated_new_entry: bool,
    /// Number of insertion attempts performed (always 1 for set-associative
    /// organizations; ≥ 1 for the Cuckoo directory's displacement chain).
    pub insertion_attempts: u32,
    /// Entries evicted from the directory to make room, whose blocks must be
    /// invalidated in the private caches.
    pub forced_evictions: Vec<ForcedEviction>,
    /// Caches that must be invalidated because of the *semantics* of the
    /// update itself (e.g. other sharers on an exclusive request), not
    /// because of directory conflicts.
    pub invalidate: Vec<CacheId>,
}

impl UpdateResult {
    /// An update that modified an existing entry without side effects.
    #[must_use]
    pub fn existing() -> Self {
        UpdateResult {
            allocated_new_entry: false,
            insertion_attempts: 0,
            forced_evictions: Vec::new(),
            invalidate: Vec::new(),
        }
    }

    /// Convenience: `true` when no blocks need to be invalidated anywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.forced_evictions.is_empty() && self.invalidate.is_empty()
    }
}

/// Storage-geometry description used by the analytical energy/area model.
///
/// Every organization reports how many bits one lookup reads, how many bits
/// one update writes, and how many bits the slice stores in total; the
/// `ccd-energy` crate turns these into the relative energy and area curves
/// of Figures 4 and 13.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageProfile {
    /// Total bits stored by this directory slice (tags + sharers + state).
    pub total_bits: u64,
    /// Bits read by one lookup (all ways of one set, tags + sharer data).
    pub bits_read_per_lookup: u64,
    /// Bits written by one entry update (one way: tag + sharer data).
    pub bits_written_per_update: u64,
    /// Number of tag comparators exercised per lookup.
    pub comparators_per_lookup: u64,
}

/// The interface every directory organization implements.
///
/// The trait is object-safe so the coherence simulator can swap
/// organizations at runtime (`Box<dyn Directory>`).
pub trait Directory {
    /// Human-readable name of the organization (e.g. `"sparse-8x256"`).
    fn organization(&self) -> String;

    /// Number of private caches whose blocks this slice can track.
    fn num_caches(&self) -> usize;

    /// Maximum number of entries the slice can hold simultaneously.
    fn capacity(&self) -> usize;

    /// Number of currently valid entries.
    fn len(&self) -> usize;

    /// `true` when the directory holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of the capacity currently occupied (0.0 ..= 1.0).
    fn occupancy(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity() as f64
        }
    }

    /// Returns `true` when the directory currently tracks `line`.
    fn contains(&self, line: LineAddr) -> bool;

    /// Returns the (possibly conservative) set of caches holding `line`, or
    /// `None` when the line is not tracked.  This is a pure query; lookup
    /// statistics are accumulated by the mutating operations, each of which
    /// begins with an implicit lookup.
    fn sharers(&self, line: LineAddr) -> Option<Vec<CacheId>>;

    /// Records that `cache` now holds a copy of `line`, allocating a new
    /// entry if the line is not yet tracked.
    fn add_sharer(&mut self, line: LineAddr, cache: CacheId) -> UpdateResult;

    /// Records that `cache` obtained an exclusive (writable) copy of `line`:
    /// the entry is allocated if needed, all *other* sharers are returned in
    /// [`UpdateResult::invalidate`], and only `cache` remains recorded.
    fn set_exclusive(&mut self, line: LineAddr, cache: CacheId) -> UpdateResult;

    /// Records that `cache` evicted its copy of `line`.  The entry is freed
    /// once its last sharer leaves.
    fn remove_sharer(&mut self, line: LineAddr, cache: CacheId);

    /// Removes the entry for `line` entirely (e.g. when the home L2 bank
    /// evicts the block), returning the caches that must be invalidated.
    fn remove_entry(&mut self, line: LineAddr) -> Option<Vec<CacheId>>;

    /// Accumulated statistics.
    fn stats(&self) -> &DirectoryStats;

    /// Clears the statistics (used after warm-up).
    fn reset_stats(&mut self);

    /// Storage-geometry profile for the energy/area model.
    fn storage_profile(&self) -> StorageProfile;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_result_helpers() {
        let r = UpdateResult::existing();
        assert!(!r.allocated_new_entry);
        assert!(r.is_clean());

        let r = UpdateResult {
            allocated_new_entry: true,
            insertion_attempts: 2,
            forced_evictions: vec![ForcedEviction {
                line: LineAddr::from_block_number(5),
                invalidate: vec![CacheId::new(1)],
            }],
            invalidate: Vec::new(),
        };
        assert!(!r.is_clean());
    }

    #[test]
    fn directory_trait_is_object_safe() {
        fn assert_object_safe(_d: &dyn Directory) {}
        let dir =
            SparseDirectory::<ccd_sharers::FullBitVector>::new(4, 16, 8).expect("valid geometry");
        assert_object_safe(&dir);
    }
}
