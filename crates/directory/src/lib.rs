//! Coherence-directory organizations: the common [`Directory`] trait and the
//! baseline designs the Cuckoo directory is evaluated against.
//!
//! A *directory slice* tracks, for every block currently resident in some
//! private cache that maps to this slice, the set of caches holding a copy
//! (Section 2 of the paper).  The paper compares several slice
//! organizations that differ in how entries are found and where a new entry
//! may be placed:
//!
//! * [`SparseDirectory`] — a conventional set-associative structure indexed
//!   by low-order address bits.  Set conflicts force invalidations of cached
//!   blocks (Section 3.2), which is why practical Sparse directories
//!   over-provision capacity (the 2× and 8× configurations of Figure 12).
//! * [`SkewedDirectory`] — the same storage, but each way indexed through a
//!   different skewing hash function (Seznec's skewed-associative cache
//!   adapted to a directory).  Reduces, but does not eliminate, conflicts.
//! * [`DuplicateTagDirectory`] — mirrors every private cache's tag array;
//!   never forces invalidations but needs `cache associativity × cache
//!   count` way comparisons per lookup (Section 3.1), which is what makes
//!   its energy grow quadratically in aggregate.
//! * [`InCacheDirectory`] — embeds sharer vectors in the (inclusive) shared
//!   L2 tags; tag storage is free but every L2 tag carries a full vector.
//! * [`TaglessDirectory`] — the Tagless design of Zebchuk et al.: a grid of
//!   per-(cache, set) Bloom filters giving a conservative sharer superset.
//!
//! The paper's own contribution, the Cuckoo directory, implements this same
//! trait from the `ccd-cuckoo` crate, and [`ShardedDirectory`] composes any
//! number of slices of any organization behind the same interface.
//!
//! # The op/outcome protocol
//!
//! The directory hot path is the coherence protocol's per-miss sequence:
//! look up an entry, update its sharer set, collect the caches to
//! invalidate.  Every operation is therefore expressed as a [`DirectoryOp`]
//! dispatched through [`Directory::apply`], which writes its results into a
//! caller-owned, reusable [`Outcome`] buffer.  In steady state (warmed-up
//! buffers) an `apply` call performs **zero heap allocations** for lookups,
//! sharer additions on existing entries, sharer removals and exclusive
//! upgrades; only the allocation of a brand-new entry may allocate.
//!
//! The legacy convenience methods ([`Directory::add_sharer`],
//! [`Directory::set_exclusive`], …) survive as thin default shims over
//! `apply` that allocate a fresh [`UpdateResult`] per call — fine for tests
//! and examples, not for the simulator's inner loop.
//!
//! # Example
//!
//! ```
//! use ccd_common::{CacheId, LineAddr};
//! use ccd_directory::{Directory, DirectoryOp, Outcome, SparseDirectory};
//! use ccd_sharers::FullBitVector;
//!
//! // An 8-way, 256-set sparse directory tracking 32 private caches.
//! let mut dir = SparseDirectory::<FullBitVector>::new(8, 256, 32)?;
//! let line = LineAddr::from_block_number(0xabc);
//!
//! // Hot path: one reusable outcome buffer for any number of operations.
//! let mut out = Outcome::new();
//! dir.apply(DirectoryOp::AddSharer { line, cache: CacheId::new(3) }, &mut out);
//! assert!(out.allocated_new_entry());
//! dir.apply(DirectoryOp::Probe { line }, &mut out);
//! assert_eq!(out.sharers(), &[CacheId::new(3)]);
//!
//! // Compatibility path: allocating convenience wrappers.
//! let outcome = dir.add_sharer(line, CacheId::new(5));
//! assert!(!outcome.allocated_new_entry);
//! assert_eq!(dir.sharers(line), Some(vec![CacheId::new(3), CacheId::new(5)]));
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod duplicate_tag;
pub mod in_cache;
pub mod sharded;
pub mod skewed;
pub(crate) mod slot_dispatch;
pub mod sparse;
pub mod spec;
pub mod stats;
pub mod tagless;

pub use duplicate_tag::DuplicateTagDirectory;
pub use in_cache::InCacheDirectory;
pub use sharded::ShardedDirectory;
pub use skewed::SkewedDirectory;
pub use sparse::SparseDirectory;
pub use spec::{BuilderRegistry, DirectorySpec, InsertPolicy, ProbeVariant};
pub use stats::{DepthMetrics, DirectoryStats};
pub use tagless::TaglessDirectory;

use ccd_common::{CacheId, ConfigError, LineAddr};
use ccd_sharers::SharerSet;

/// How many upcoming operations the default [`Directory::apply_batch`]
/// prefetches ahead of the apply loop.
pub const APPLY_BATCH_WINDOW: usize = 8;

/// A block whose directory entry was evicted to make room for another entry.
///
/// The coherence protocol must invalidate the listed caches' copies of the
/// block before the entry can be reused — this is the "forced invalidation"
/// the paper's Figures 9 and 12 measure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForcedEviction {
    /// The block that lost its directory entry.
    pub line: LineAddr,
    /// Caches that may hold a copy and must be invalidated.
    pub invalidate: Vec<CacheId>,
}

/// The result of a directory update that may allocate an entry.
///
/// This is the *allocating* result type returned by the legacy convenience
/// methods; the hot path uses [`Outcome`] instead.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateResult {
    /// `true` when the update allocated a new directory entry (a new tag was
    /// inserted), `false` when it only modified an existing entry.
    pub allocated_new_entry: bool,
    /// Number of insertion attempts performed (always 1 for set-associative
    /// organizations; ≥ 1 for the Cuckoo directory's displacement chain).
    pub insertion_attempts: u32,
    /// Entries evicted from the directory to make room, whose blocks must be
    /// invalidated in the private caches.
    pub forced_evictions: Vec<ForcedEviction>,
    /// Caches that must be invalidated because of the *semantics* of the
    /// update itself (e.g. other sharers on an exclusive request), not
    /// because of directory conflicts.
    pub invalidate: Vec<CacheId>,
}

impl UpdateResult {
    /// An update that modified an existing entry without side effects.
    #[must_use]
    pub fn existing() -> Self {
        UpdateResult::default()
    }

    /// Convenience: `true` when no blocks need to be invalidated anywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.forced_evictions.is_empty() && self.invalidate.is_empty()
    }
}

/// One operation against a directory slice.
///
/// Operations carry everything the slice needs; results come back through
/// the [`Outcome`] buffer passed to [`Directory::apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectoryOp {
    /// Record that `cache` obtained a shared copy of `line`, allocating an
    /// entry if the line is untracked.
    AddSharer {
        /// The referenced block.
        line: LineAddr,
        /// The cache that now holds a copy.
        cache: CacheId,
    },
    /// Record that `cache` obtained an exclusive (writable) copy of `line`:
    /// the entry is allocated if needed, every *other* sharer lands in
    /// [`Outcome::invalidate`], and only `cache` remains recorded.
    SetExclusive {
        /// The referenced block.
        line: LineAddr,
        /// The cache that now holds the only copy.
        cache: CacheId,
    },
    /// Record that `cache` evicted its copy of `line`; the entry is freed
    /// once its last sharer leaves.
    RemoveSharer {
        /// The referenced block.
        line: LineAddr,
        /// The cache that dropped its copy.
        cache: CacheId,
    },
    /// Remove the entry for `line` entirely (e.g. the home L2 bank evicted
    /// the block); the caches to invalidate land in [`Outcome::invalidate`].
    RemoveEntry {
        /// The evicted block.
        line: LineAddr,
    },
    /// Read the entry for `line`: sets [`Outcome::hit`] and fills
    /// [`Outcome::sharers`] with the (possibly conservative) sharer set.
    /// Statistics-neutral: like [`Directory::sharers`], a probe is a pure
    /// query; lookup counters are accumulated by the mutating operations.
    Probe {
        /// The queried block.
        line: LineAddr,
    },
}

impl DirectoryOp {
    /// The block the operation refers to.
    #[must_use]
    pub fn line(&self) -> LineAddr {
        match *self {
            DirectoryOp::AddSharer { line, .. }
            | DirectoryOp::SetExclusive { line, .. }
            | DirectoryOp::RemoveSharer { line, .. }
            | DirectoryOp::RemoveEntry { line }
            | DirectoryOp::Probe { line } => line,
        }
    }

    /// Returns a copy of the operation with its line replaced — used by
    /// wrappers (e.g. [`ShardedDirectory`]) that translate global lines to
    /// slice-local ones.
    #[must_use]
    pub fn with_line(self, line: LineAddr) -> Self {
        match self {
            DirectoryOp::AddSharer { cache, .. } => DirectoryOp::AddSharer { line, cache },
            DirectoryOp::SetExclusive { cache, .. } => DirectoryOp::SetExclusive { line, cache },
            DirectoryOp::RemoveSharer { cache, .. } => DirectoryOp::RemoveSharer { line, cache },
            DirectoryOp::RemoveEntry { .. } => DirectoryOp::RemoveEntry { line },
            DirectoryOp::Probe { .. } => DirectoryOp::Probe { line },
        }
    }
}

/// A caller-owned, reusable result buffer for [`Directory::apply`].
///
/// All collections inside keep their capacity across [`Outcome::reset`] (and
/// `apply` resets the buffer itself on entry), so a warmed-up `Outcome`
/// makes the steady-state directory hot path allocation-free.  Forced
/// evictions are stored flat — one `(line, offset)` record per eviction plus
/// a single shared target buffer — rather than as nested `Vec`s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    hit: bool,
    allocated_new_entry: bool,
    insertion_attempts: u32,
    insertion_failed: bool,
    invalidated_all: bool,
    removed_entry: bool,
    invalidate: Vec<CacheId>,
    eviction_lines: Vec<(LineAddr, u32)>,
    eviction_targets: Vec<CacheId>,
}

/// A borrowed view of one forced eviction inside an [`Outcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictionView<'a> {
    /// The block that lost its directory entry.
    pub line: LineAddr,
    /// Caches that may hold a copy and must be invalidated.
    pub targets: &'a [CacheId],
}

impl Outcome {
    /// Creates an empty outcome buffer.
    #[must_use]
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Clears the outcome while keeping all buffer capacity.
    pub fn reset(&mut self) {
        self.hit = false;
        self.allocated_new_entry = false;
        self.insertion_attempts = 0;
        self.insertion_failed = false;
        self.invalidated_all = false;
        self.removed_entry = false;
        self.invalidate.clear();
        self.eviction_lines.clear();
        self.eviction_targets.clear();
    }

    // ---- consumer API -----------------------------------------------------

    /// `true` when the operation found an existing entry for its line.
    #[must_use]
    pub fn hit(&self) -> bool {
        self.hit
    }

    /// `true` when the operation allocated a new directory entry.
    #[must_use]
    pub fn allocated_new_entry(&self) -> bool {
        self.allocated_new_entry
    }

    /// Number of insertion attempts performed (0 when no entry was
    /// allocated, ≥ 1 for the Cuckoo displacement chain).
    #[must_use]
    pub fn insertion_attempts(&self) -> u32 {
        self.insertion_attempts
    }

    /// `true` when an allocation exhausted its insertion budget and had to
    /// discard a displaced entry (Cuckoo organizations only; the discarded
    /// entry appears among the forced evictions).
    #[must_use]
    pub fn insertion_failed(&self) -> bool {
        self.insertion_failed
    }

    /// `true` when an exclusive request found (and invalidated) other
    /// sharers — the "invalidate all" event of the paper's event mix.
    #[must_use]
    pub fn invalidated_all(&self) -> bool {
        self.invalidated_all
    }

    /// `true` when the operation freed the entry for its line.
    #[must_use]
    pub fn removed_entry(&self) -> bool {
        self.removed_entry
    }

    /// Caches to invalidate because of the operation's semantics (other
    /// sharers on an exclusive request, holders on an entry removal).
    #[must_use]
    pub fn invalidate(&self) -> &[CacheId] {
        &self.invalidate
    }

    /// The sharer set reported by a [`DirectoryOp::Probe`] (an alias of
    /// [`Outcome::invalidate`]; a probe's "targets" are the sharers).
    #[must_use]
    pub fn sharers(&self) -> &[CacheId] {
        &self.invalidate
    }

    /// Number of forced evictions recorded.
    #[must_use]
    pub fn forced_eviction_count(&self) -> usize {
        self.eviction_lines.len()
    }

    /// Total number of cache invalidations caused by forced evictions.
    #[must_use]
    pub fn forced_invalidation_count(&self) -> usize {
        self.eviction_targets.len()
    }

    /// Iterates over the forced evictions.
    pub fn forced_evictions(&self) -> impl Iterator<Item = EvictionView<'_>> {
        self.eviction_lines
            .iter()
            .enumerate()
            .map(|(i, &(line, start))| {
                let end = self
                    .eviction_lines
                    .get(i + 1)
                    .map_or(self.eviction_targets.len(), |&(_, s)| s as usize);
                EvictionView {
                    line,
                    targets: &self.eviction_targets[start as usize..end],
                }
            })
    }

    /// `true` when no blocks need to be invalidated anywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.invalidate.is_empty() && self.eviction_targets.is_empty()
    }

    /// Converts into the allocating legacy result type.
    #[must_use]
    pub fn to_update_result(&self) -> UpdateResult {
        UpdateResult {
            allocated_new_entry: self.allocated_new_entry,
            insertion_attempts: self.insertion_attempts,
            forced_evictions: self
                .forced_evictions()
                .map(|e| ForcedEviction {
                    line: e.line,
                    invalidate: e.targets.to_vec(),
                })
                .collect(),
            invalidate: self.invalidate.clone(),
        }
    }

    // ---- producer API (used by Directory implementations) -----------------

    /// Marks the operation as having found an existing entry.
    pub fn set_hit(&mut self, hit: bool) {
        self.hit = hit;
    }

    /// Records that a new entry was allocated after `attempts` insertion
    /// attempts.
    pub fn record_allocation(&mut self, attempts: u32) {
        self.allocated_new_entry = true;
        self.insertion_attempts = attempts;
    }

    /// Records that an allocation ran out of insertion attempts and
    /// discarded a displaced entry.
    pub fn record_insertion_failure(&mut self) {
        self.insertion_failed = true;
    }

    /// Records that an exclusive request invalidated other sharers.
    pub fn record_invalidate_all(&mut self) {
        self.invalidated_all = true;
    }

    /// Records that the operation freed its line's entry.
    pub fn record_removed_entry(&mut self) {
        self.removed_entry = true;
    }

    /// Appends one semantic invalidation target.
    pub fn push_invalidate(&mut self, cache: CacheId) {
        self.invalidate.push(cache);
    }

    /// Exposes the semantic-invalidation buffer so implementations can
    /// append via [`SharerSet::extend_targets`] without allocating.
    pub fn invalidate_buf(&mut self) -> &mut Vec<CacheId> {
        &mut self.invalidate
    }

    /// Current length of the invalidation list (pair with
    /// [`Outcome::drop_invalidate_from`] to filter freshly appended
    /// targets).
    #[must_use]
    pub fn invalidate_len(&self) -> usize {
        self.invalidate.len()
    }

    /// Removes `cache` from the invalidation targets appended at or after
    /// `start` (order within that range is not preserved).
    pub fn drop_invalidate_from(&mut self, start: usize, cache: CacheId) {
        if let Some(pos) = self.invalidate[start..].iter().position(|&c| c == cache) {
            self.invalidate.swap_remove(start + pos);
        }
    }

    /// Records a forced eviction of `line`, copying the victim's
    /// invalidation targets from `sharers`.  Returns how many targets were
    /// recorded.
    pub fn push_forced_eviction<S: SharerSet>(&mut self, line: LineAddr, sharers: &S) -> usize {
        let start = self.eviction_targets.len();
        self.eviction_lines.push((line, start as u32));
        sharers.extend_targets(&mut self.eviction_targets);
        self.eviction_targets.len() - start
    }

    /// Records a forced eviction of `line` invalidating a single cache.
    pub fn push_forced_eviction_one(&mut self, line: LineAddr, cache: CacheId) {
        self.eviction_lines
            .push((line, self.eviction_targets.len() as u32));
        self.eviction_targets.push(cache);
    }

    /// Rewrites every forced-eviction line through `f` — used by wrappers
    /// that translate slice-local lines back to global ones.
    pub fn map_eviction_lines(&mut self, mut f: impl FnMut(LineAddr) -> LineAddr) {
        for (line, _) in &mut self.eviction_lines {
            *line = f(*line);
        }
    }
}

/// A borrowed, allocation-free iterator over the sharers of one line.
///
/// Obtained from [`Directory::sharer_view`] (or
/// [`sharer_view`](fn@sharer_view) for `dyn Directory`); walks cache ids in
/// ascending order and yields those the directory reports as possible
/// holders — exactly the set the allocating [`Directory::sharers`] returns.
pub struct SharerView<'a> {
    dir: &'a dyn Directory,
    line: LineAddr,
    next: u32,
    total: u32,
}

impl std::fmt::Debug for SharerView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharerView")
            .field("line", &self.line)
            .field("next", &self.next)
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl<'a> SharerView<'a> {
    /// Creates a view over `dir`'s sharers of `line`, or `None` when the
    /// line is untracked.
    #[must_use]
    pub fn of(dir: &'a dyn Directory, line: LineAddr) -> Option<Self> {
        dir.contains(line).then(|| SharerView {
            dir,
            line,
            next: 0,
            total: dir.num_caches() as u32,
        })
    }
}

impl Iterator for SharerView<'_> {
    type Item = CacheId;

    fn next(&mut self) -> Option<CacheId> {
        while self.next < self.total {
            let cache = CacheId::new(self.next);
            self.next += 1;
            if self.dir.may_hold(self.line, cache) {
                return Some(cache);
            }
        }
        None
    }
}

/// Borrowed sharer iteration for trait objects (see
/// [`Directory::sharer_view`], which requires `Self: Sized`).
#[must_use]
pub fn sharer_view(dir: &dyn Directory, line: LineAddr) -> Option<SharerView<'_>> {
    SharerView::of(dir, line)
}

/// The interface every directory organization implements.
///
/// The trait is object-safe so the coherence simulator can swap
/// organizations at runtime (`Box<dyn Directory>`).  Implementations
/// provide the allocation-free [`Directory::apply`] entry point plus pure
/// queries; the legacy per-operation methods are default shims over
/// `apply`.
///
/// `Send` is a supertrait: every organization is plain owned data, so built
/// slices (and the simulators composed from them) can be constructed on one
/// thread and driven on another — the property the parallel sweep runner in
/// `ccd-coherence` relies on.
pub trait Directory: Send {
    /// Human-readable name of the organization (e.g. `"sparse-8x256"`).
    fn organization(&self) -> String;

    /// Number of private caches whose blocks this slice can track.
    fn num_caches(&self) -> usize;

    /// Maximum number of entries the slice can hold simultaneously.
    fn capacity(&self) -> usize;

    /// Number of currently valid entries.
    fn len(&self) -> usize;

    /// `true` when the directory holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of the capacity currently occupied (0.0 ..= 1.0).
    fn occupancy(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity() as f64
        }
    }

    /// Returns `true` when the directory currently tracks `line`.
    fn contains(&self, line: LineAddr) -> bool;

    /// Returns `true` when `cache` may hold a copy of `line` according to
    /// the directory's (possibly conservative) records.  Pure query; never
    /// under-approximates.
    fn may_hold(&self, line: LineAddr, cache: CacheId) -> bool;

    /// Applies `op`, writing all results into `out`.
    ///
    /// `out` is reset on entry, so callers reuse one buffer across calls;
    /// with warmed-up buffer capacity the lookup-hit, add-sharer-on-existing
    /// -entry, remove and exclusive-upgrade paths perform no heap
    /// allocation.
    fn apply(&mut self, op: DirectoryOp, out: &mut Outcome);

    /// Hints that `line` is about to be operated on, prefetching whatever
    /// storage a subsequent [`Directory::apply`] for that line would touch.
    /// Semantically a no-op (the default does nothing); organizations with
    /// hashed or scattered candidate locations override it so batched
    /// callers can overlap the resulting cache misses.
    fn prefetch_line(&self, _line: LineAddr) {}

    /// Applies `ops` in order through the reusable `out` buffer, invoking
    /// `sink(op, out)` after each operation while its results are still in
    /// the buffer.
    ///
    /// The default implementation works in windows of
    /// [`APPLY_BATCH_WINDOW`]: every line in the window is
    /// [prefetched](Directory::prefetch_line) before the window's operations
    /// are applied, so the candidate-slot cache misses of independent
    /// operations overlap instead of serializing.  Observable behaviour is
    /// identical to calling [`Directory::apply`] in a loop; with a warmed-up
    /// `out` buffer and an allocation-free `sink` the batch performs no heap
    /// allocation.
    fn apply_batch(
        &mut self,
        ops: &[DirectoryOp],
        out: &mut Outcome,
        sink: &mut dyn FnMut(&DirectoryOp, &Outcome),
    ) {
        let mut start = 0;
        while start < ops.len() {
            let end = (start + APPLY_BATCH_WINDOW).min(ops.len());
            for op in &ops[start..end] {
                self.prefetch_line(op.line());
            }
            for op in &ops[start..end] {
                self.apply(*op, out);
                sink(op, out);
            }
            start = end;
        }
    }

    /// Accumulated statistics.
    fn stats(&self) -> &DirectoryStats;

    /// Clears the statistics (used after warm-up).
    fn reset_stats(&mut self);

    /// Storage-geometry profile for the energy/area model.
    fn storage_profile(&self) -> StorageProfile;

    // ---- provided: live resize --------------------------------------------

    /// The resizable `(ways, sets)` geometry of this organization, when it
    /// supports [`Directory::live_resize`].  The default (`None`) marks the
    /// organization non-resizable; schedulers treat a resize request against
    /// it as a no-op.
    fn geometry(&self) -> Option<(usize, usize)> {
        None
    }

    /// Rebuilds the organization in place at the requested `(ways, sets)`
    /// geometry, migrating every resident entry — the primitive behind
    /// occupancy-adaptive online resizing.  Returns `Ok(false)` when the
    /// organization does not support resizing (the default), `Ok(true)` when
    /// the migration completed.  Entries that cannot be re-homed in the new
    /// geometry are folded into the organization's failure statistics, the
    /// same accounting a budget-exhausted insertion uses.
    ///
    /// # Errors
    ///
    /// Implementations surface their configuration validation (e.g. a
    /// non-power-of-two set count) as [`ConfigError`].
    fn live_resize(&mut self, _ways: usize, _sets: usize) -> Result<bool, ConfigError> {
        Ok(false)
    }

    // ---- provided: depth observability ------------------------------------

    /// Arms per-operation depth metrics (probe depth, displacement-chain
    /// length, BFS path depth) at `sig_bits` histogram resolution,
    /// resetting any previously gathered distributions.  Returns `false`
    /// when the organization has no depth instrumentation (the default);
    /// callers treat that as "nothing to observe", not an error.
    ///
    /// Arming must never change what the directory computes — only
    /// [`Directory::depth_metrics`] output (contract #11).
    fn arm_depth_metrics(&mut self, _sig_bits: u32) -> bool {
        false
    }

    /// The depth distributions gathered since arming, or `None` when
    /// unarmed or unsupported.
    fn depth_metrics(&self) -> Option<&DepthMetrics> {
        None
    }

    // ---- provided: borrowed sharer queries --------------------------------

    /// Borrowed, allocation-free iterator over the sharers of `line`
    /// (`None` when untracked).  For `dyn Directory` use the free function
    /// [`sharer_view`](fn@sharer_view).
    fn sharer_view(&self, line: LineAddr) -> Option<SharerView<'_>>
    where
        Self: Sized,
    {
        SharerView::of(self, line)
    }

    // ---- provided: legacy allocating shims --------------------------------

    /// Returns the (possibly conservative) set of caches holding `line`, or
    /// `None` when the line is not tracked.  Allocates; the hot path uses
    /// [`Directory::sharer_view`] or [`DirectoryOp::Probe`] instead.
    fn sharers(&self, line: LineAddr) -> Option<Vec<CacheId>> {
        if !self.contains(line) {
            return None;
        }
        Some(
            (0..self.num_caches() as u32)
                .map(CacheId::new)
                .filter(|&c| self.may_hold(line, c))
                .collect(),
        )
    }

    /// Records that `cache` now holds a copy of `line`, allocating a new
    /// entry if the line is not yet tracked.
    fn add_sharer(&mut self, line: LineAddr, cache: CacheId) -> UpdateResult {
        let mut out = Outcome::new();
        self.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
        out.to_update_result()
    }

    /// Records that `cache` obtained an exclusive (writable) copy of `line`:
    /// the entry is allocated if needed, all *other* sharers are returned in
    /// [`UpdateResult::invalidate`], and only `cache` remains recorded.
    fn set_exclusive(&mut self, line: LineAddr, cache: CacheId) -> UpdateResult {
        let mut out = Outcome::new();
        self.apply(DirectoryOp::SetExclusive { line, cache }, &mut out);
        out.to_update_result()
    }

    /// Records that `cache` evicted its copy of `line`.  The entry is freed
    /// once its last sharer leaves.
    fn remove_sharer(&mut self, line: LineAddr, cache: CacheId) {
        let mut out = Outcome::new();
        self.apply(DirectoryOp::RemoveSharer { line, cache }, &mut out);
    }

    /// Removes the entry for `line` entirely (e.g. when the home L2 bank
    /// evicts the block), returning the caches that must be invalidated.
    fn remove_entry(&mut self, line: LineAddr) -> Option<Vec<CacheId>> {
        let mut out = Outcome::new();
        self.apply(DirectoryOp::RemoveEntry { line }, &mut out);
        out.hit().then(|| out.invalidate().to_vec())
    }
}

/// Storage-geometry description used by the analytical energy/area model.
///
/// Every organization reports how many bits one lookup reads, how many bits
/// one update writes, and how many bits the slice stores in total; the
/// `ccd-energy` crate turns these into the relative energy and area curves
/// of Figures 4 and 13.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageProfile {
    /// Total bits stored by this directory slice (tags + sharers + state).
    pub total_bits: u64,
    /// Bits read by one lookup (all ways of one set, tags + sharer data).
    pub bits_read_per_lookup: u64,
    /// Bits written by one entry update (one way: tag + sharer data).
    pub bits_written_per_update: u64,
    /// Number of tag comparators exercised per lookup.
    pub comparators_per_lookup: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_result_helpers() {
        let r = UpdateResult::existing();
        assert!(!r.allocated_new_entry);
        assert!(r.is_clean());

        let r = UpdateResult {
            allocated_new_entry: true,
            insertion_attempts: 2,
            forced_evictions: vec![ForcedEviction {
                line: LineAddr::from_block_number(5),
                invalidate: vec![CacheId::new(1)],
            }],
            invalidate: Vec::new(),
        };
        assert!(!r.is_clean());
    }

    #[test]
    fn directory_trait_is_object_safe() {
        fn assert_object_safe(_d: &dyn Directory) {}
        let dir =
            SparseDirectory::<ccd_sharers::FullBitVector>::new(4, 16, 8).expect("valid geometry");
        assert_object_safe(&dir);
    }

    #[test]
    fn built_directories_are_send() {
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn Directory>();
        assert_send::<Box<dyn Directory>>();
        // A built slice really can cross a thread boundary.
        let dir: Box<dyn Directory> = Box::new(
            SparseDirectory::<ccd_sharers::FullBitVector>::new(4, 16, 8).expect("valid geometry"),
        );
        let handle = std::thread::spawn(move || dir.capacity());
        assert_eq!(handle.join().unwrap(), 64);
    }

    #[test]
    fn outcome_round_trips_forced_evictions() {
        let mut out = Outcome::new();
        let mut sharers = ccd_sharers::FullBitVector::new(8);
        sharers.add(CacheId::new(2));
        sharers.add(CacheId::new(5));
        let n = out.push_forced_eviction(LineAddr::from_block_number(7), &sharers);
        assert_eq!(n, 2);
        out.push_forced_eviction_one(LineAddr::from_block_number(9), CacheId::new(1));
        assert_eq!(out.forced_eviction_count(), 2);
        assert_eq!(out.forced_invalidation_count(), 3);

        let views: Vec<_> = out.forced_evictions().collect();
        assert_eq!(views[0].line, LineAddr::from_block_number(7));
        assert_eq!(views[0].targets, &[CacheId::new(2), CacheId::new(5)]);
        assert_eq!(views[1].targets, &[CacheId::new(1)]);

        let legacy = out.to_update_result();
        assert_eq!(legacy.forced_evictions.len(), 2);
        assert!(!out.is_clean());

        out.reset();
        assert!(out.is_clean());
        assert_eq!(out.forced_eviction_count(), 0);
    }

    #[test]
    fn outcome_drop_invalidate_filters_the_requester() {
        let mut out = Outcome::new();
        out.push_invalidate(CacheId::new(0));
        let start = out.invalidate_len();
        out.push_invalidate(CacheId::new(3));
        out.push_invalidate(CacheId::new(4));
        out.drop_invalidate_from(start, CacheId::new(3));
        // The pre-existing prefix is untouched; only the appended range is
        // filtered.
        assert!(out.invalidate().contains(&CacheId::new(0)));
        assert!(out.invalidate().contains(&CacheId::new(4)));
        assert!(!out.invalidate().contains(&CacheId::new(3)));
        // Dropping an id absent from the range is a no-op.
        out.drop_invalidate_from(start, CacheId::new(7));
        assert_eq!(out.invalidate_len(), 2);
    }

    #[test]
    fn directory_op_line_accessors() {
        let line = LineAddr::from_block_number(11);
        let other = LineAddr::from_block_number(22);
        let op = DirectoryOp::SetExclusive {
            line,
            cache: CacheId::new(1),
        };
        assert_eq!(op.line(), line);
        assert_eq!(op.with_line(other).line(), other);
        assert_eq!(
            DirectoryOp::RemoveEntry { line }.with_line(other).line(),
            other
        );
    }
}
