//! The in-cache (inclusive shared-L2) directory baseline.
//!
//! The in-cache organization (Section 3.2, "at the limit, the in-cache
//! directory organization extends an inclusive shared cache's tags with the
//! sharer information") stores a sharer vector alongside *every* tag of the
//! shared L2.  Tag storage and tag-lookup energy are free — the L2 lookup
//! happens anyway — but the sharer storage is grossly over-provisioned
//! because the L2 holds far more tags than there are privately cached
//! blocks, and every L2 eviction of a tracked block must invalidate the
//! private copies (an inclusion victim).
//!
//! It is only meaningful for the Shared-L2 configuration; "inclusion of
//! private L2s in other private L2s is not possible" (Section 5.6).
//!
//! Functionally this is a [`SparseDirectory`] with the L2's geometry; the
//! difference is entirely in the storage/energy accounting, which this
//! wrapper overrides.

use crate::{Directory, DirectoryOp, DirectoryStats, Outcome, SparseDirectory, StorageProfile};
use ccd_common::{CacheId, ConfigError, LineAddr};
use ccd_sharers::SharerSet;

/// An in-cache directory: sharer vectors embedded in the shared L2 tags.
#[derive(Clone, Debug)]
pub struct InCacheDirectory<S: SharerSet> {
    inner: SparseDirectory<S>,
    l2_ways: usize,
    l2_sets: usize,
}

impl<S: SharerSet> InCacheDirectory<S> {
    /// Creates an in-cache directory embedded in an L2 bank of
    /// `l2_ways × l2_sets` frames, tracking `num_caches` private caches.
    ///
    /// # Errors
    ///
    /// Propagates the geometry validation of [`SparseDirectory::new`].
    pub fn new(l2_ways: usize, l2_sets: usize, num_caches: usize) -> Result<Self, ConfigError> {
        Ok(InCacheDirectory {
            inner: SparseDirectory::new(l2_ways, l2_sets, num_caches)?,
            l2_ways,
            l2_sets,
        })
    }

    /// The L2 bank geometry this directory is embedded in.
    #[must_use]
    pub fn l2_geometry(&self) -> (usize, usize) {
        (self.l2_ways, self.l2_sets)
    }
}

impl<S: SharerSet> Directory for InCacheDirectory<S> {
    fn organization(&self) -> String {
        format!("in-cache-{}x{}", self.l2_ways, self.l2_sets)
    }

    fn num_caches(&self) -> usize {
        self.inner.num_caches()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.inner.contains(line)
    }

    fn may_hold(&self, line: LineAddr, cache: CacheId) -> bool {
        self.inner.may_hold(line, cache)
    }

    fn apply(&mut self, op: DirectoryOp, out: &mut Outcome) {
        self.inner.apply(op, out);
    }

    fn sharers(&self, line: LineAddr) -> Option<Vec<CacheId>> {
        self.inner.sharers(line)
    }

    fn stats(&self) -> &DirectoryStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn storage_profile(&self) -> StorageProfile {
        let probe = S::new(self.num_caches());
        let sharer_bits = probe.storage_bits();
        let frames = (self.l2_ways * self.l2_sets) as u64;
        StorageProfile {
            // Tags are shared with the L2 and therefore free; the directory
            // pays only for a sharer vector on every L2 frame.
            total_bits: sharer_bits * frames,
            // The tag comparison rides on the L2 lookup; the directory reads
            // the sharer vectors of the accessed set.
            bits_read_per_lookup: self.l2_ways as u64 * probe.access_bits(),
            bits_written_per_update: sharer_bits,
            comparators_per_lookup: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_sharers::FullBitVector;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    #[test]
    fn behaves_like_a_sparse_directory_with_l2_geometry() {
        let mut dir = InCacheDirectory::<FullBitVector>::new(16, 64, 32).unwrap();
        assert_eq!(dir.capacity(), 1024);
        assert_eq!(dir.l2_geometry(), (16, 64));
        dir.add_sharer(line(7), CacheId::new(1));
        dir.add_sharer(line(7), CacheId::new(9));
        assert_eq!(
            dir.sharers(line(7)),
            Some(vec![CacheId::new(1), CacheId::new(9)])
        );
        let r = dir.set_exclusive(line(7), CacheId::new(1));
        assert_eq!(r.invalidate, vec![CacheId::new(9)]);
        dir.remove_sharer(line(7), CacheId::new(1));
        assert!(dir.is_empty());
        assert_eq!(dir.organization(), "in-cache-16x64");
    }

    #[test]
    fn storage_charges_a_vector_per_l2_frame_and_no_tags() {
        let dir = InCacheDirectory::<FullBitVector>::new(16, 1024, 32).unwrap();
        let p = dir.storage_profile();
        assert_eq!(p.total_bits, 32 * 16 * 1024);
        assert_eq!(p.comparators_per_lookup, 0, "tag match rides on the L2");
        assert_eq!(p.bits_read_per_lookup, 16 * 32);
        assert_eq!(p.bits_written_per_update, 32);
    }

    #[test]
    fn inclusion_victims_surface_as_forced_evictions() {
        // A tiny 1-way, 2-set "L2": inserting two blocks that map to the same
        // set evicts the first, which models the inclusion-victim
        // invalidation of an in-cache directory.
        let mut dir = InCacheDirectory::<FullBitVector>::new(1, 2, 4).unwrap();
        dir.add_sharer(line(0), CacheId::new(0));
        let r = dir.add_sharer(line(2), CacheId::new(1));
        assert_eq!(r.forced_evictions.len(), 1);
        assert_eq!(r.forced_evictions[0].line, line(0));
        assert_eq!(r.forced_evictions[0].invalidate, vec![CacheId::new(0)]);
    }
}
