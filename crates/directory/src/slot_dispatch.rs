//! Shared op-dispatch for slot-table directory organizations.
//!
//! [`crate::SparseDirectory`] and [`crate::SkewedDirectory`] differ only in
//! how a line maps to candidate slots (modulo indexing vs per-way skewing
//! hashes); their entry storage (`slots` / `valid` / `stats`) and the
//! op/outcome protocol semantics are identical.  This macro expands to the
//! shared `contains` / `may_hold` / `apply` trait methods inside each
//! organization's `impl Directory` block, so the two implementations cannot
//! drift apart.
//!
//! Requirements on the host type: fields `slots: Vec<Option<Entry<S>>>`,
//! `valid: usize`, `stats: DirectoryStats`, and methods
//! `find_slot(&self, LineAddr) -> Option<usize>` plus
//! `find_or_allocate(&mut self, LineAddr, &mut Outcome) -> usize` (which
//! must leave a valid entry in the returned slot).

macro_rules! impl_slot_directory_ops {
    () => {
        fn contains(&self, line: ccd_common::LineAddr) -> bool {
            self.find_slot(line).is_some()
        }

        fn may_hold(&self, line: ccd_common::LineAddr, cache: ccd_common::CacheId) -> bool {
            self.find_slot(line).is_some_and(|slot| {
                self.slots[slot]
                    .as_ref()
                    .expect("slot is valid")
                    .sharers
                    .may_contain(cache)
            })
        }

        // Override the default (which repeats the lookup once per cache id)
        // with a single indexed lookup.
        fn sharers(&self, line: ccd_common::LineAddr) -> Option<Vec<ccd_common::CacheId>> {
            self.find_slot(line).map(|slot| {
                self.slots[slot]
                    .as_ref()
                    .expect("slot is valid")
                    .sharers
                    .invalidation_targets()
            })
        }

        fn apply(&mut self, op: crate::DirectoryOp, out: &mut crate::Outcome) {
            out.reset();
            match op {
                crate::DirectoryOp::Probe { line } => {
                    if let Some(slot) = self.find_slot(line) {
                        out.set_hit(true);
                        self.slots[slot]
                            .as_ref()
                            .expect("slot is valid")
                            .sharers
                            .extend_targets(out.invalidate_buf());
                    }
                }
                crate::DirectoryOp::AddSharer { line, cache } => {
                    let slot = self.find_or_allocate(line, out);
                    if out.hit() {
                        self.stats.sharer_adds.incr();
                    }
                    self.slots[slot]
                        .as_mut()
                        .expect("slot was just filled")
                        .sharers
                        .add(cache);
                }
                crate::DirectoryOp::SetExclusive { line, cache } => {
                    let slot = self.find_or_allocate(line, out);
                    let start = out.invalidate_len();
                    let entry = self.slots[slot].as_mut().expect("slot was just filled");
                    entry.sharers.extend_targets(out.invalidate_buf());
                    out.drop_invalidate_from(start, cache);
                    entry.sharers.clear();
                    entry.sharers.add(cache);
                    if out.invalidate_len() > start {
                        out.record_invalidate_all();
                        self.stats.invalidate_alls.incr();
                    } else if out.hit() {
                        self.stats.sharer_adds.incr();
                    }
                }
                crate::DirectoryOp::RemoveSharer { line, cache } => {
                    if let Some(slot) = self.find_slot(line) {
                        out.set_hit(true);
                        self.stats.sharer_removes.incr();
                        let entry = self.slots[slot].as_mut().expect("slot is valid");
                        entry.sharers.remove(cache);
                        if entry.sharers.is_empty() {
                            self.slots[slot] = None;
                            self.valid -= 1;
                            out.record_removed_entry();
                            self.stats.entry_removes.incr();
                        }
                    }
                }
                crate::DirectoryOp::RemoveEntry { line } => {
                    if let Some(slot) = self.find_slot(line) {
                        out.set_hit(true);
                        out.record_removed_entry();
                        let entry = self.slots[slot].take().expect("slot is valid");
                        entry.sharers.extend_targets(out.invalidate_buf());
                        self.valid -= 1;
                        self.stats.entry_removes.incr();
                    }
                }
            }
        }
    };
}

pub(crate) use impl_slot_directory_ops;
