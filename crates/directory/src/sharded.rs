//! Address-interleaved multi-slice directories.
//!
//! A real many-core system distributes its directory across tiles: each
//! slice owns the blocks whose addresses interleave onto it (Section 2 of
//! the paper).  [`ShardedDirectory`] reproduces that structure behind the
//! ordinary [`Directory`] interface: it owns `N` independent slices (of any
//! organization), routes every operation to the owning slice by
//! `block mod N`, and translates slice-local lines in the results back to
//! global ones.
//!
//! Because every slice is an independent `Box<dyn Directory>`, shards can
//! even mix organizations — useful for asymmetric/NUCA experiments — though
//! the common construction ([`crate::BuilderRegistry`] with a
//! `shardedN:` spec prefix) builds `N` identical slices whose total
//! capacity matches the unsharded spec.
//!
//! Aggregate statistics are maintained by observing each operation's
//! [`Outcome`], so a sharded directory reports the same counters a single
//! slice of the same total capacity would.

use crate::{Directory, DirectoryOp, DirectoryStats, Outcome, StorageProfile};
use ccd_common::{CacheId, ConfigError, LineAddr};

/// `N` address-interleaved directory slices behind one [`Directory`].
pub struct ShardedDirectory {
    shards: Vec<Box<dyn Directory>>,
    stats: DirectoryStats,
}

impl std::fmt::Debug for ShardedDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDirectory")
            .field("shards", &self.shards.len())
            .field("organization", &self.organization())
            .finish_non_exhaustive()
    }
}

impl ShardedDirectory {
    /// Wraps `shards` (at least one) into one interleaved directory.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] when `shards` is empty,
    /// * [`ConfigError::Inconsistent`] when the shards disagree on the
    ///   number of tracked caches.
    pub fn new(shards: Vec<Box<dyn Directory>>) -> Result<Self, ConfigError> {
        if shards.is_empty() {
            return Err(ConfigError::Zero {
                what: "shard count",
            });
        }
        let caches = shards[0].num_caches();
        if shards.iter().any(|s| s.num_caches() != caches) {
            return Err(ConfigError::Inconsistent {
                what: "all shards must track the same number of caches",
            });
        }
        Ok(ShardedDirectory {
            shards,
            stats: DirectoryStats::new(),
        })
    }

    /// Number of slices.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the individual slices.
    #[must_use]
    pub fn shards(&self) -> &[Box<dyn Directory>] {
        &self.shards
    }

    /// Which slice owns `line`, and the slice-local line it sees.
    fn home_of(&self, line: LineAddr) -> (usize, LineAddr) {
        let n = self.shards.len() as u64;
        let block = line.block_number();
        ((block % n) as usize, LineAddr::from_block_number(block / n))
    }

    /// Reconstructs the global line from a shard index and its local line.
    fn global_line(&self, shard: usize, local: LineAddr) -> LineAddr {
        LineAddr::from_block_number(local.block_number() * self.shards.len() as u64 + shard as u64)
    }

    /// Folds the operation's observable effects into the aggregate
    /// statistics, mirroring what a monolithic slice would have recorded.
    /// Probes are statistics-neutral, matching the per-organization
    /// implementations.
    fn absorb_outcome(&mut self, op: &DirectoryOp, out: &Outcome) {
        match op {
            DirectoryOp::AddSharer { .. } | DirectoryOp::SetExclusive { .. } => {
                self.stats.lookups.incr();
            }
            DirectoryOp::RemoveSharer { .. }
            | DirectoryOp::RemoveEntry { .. }
            | DirectoryOp::Probe { .. } => {}
        }
        if out.allocated_new_entry() {
            let occupancy = self.occupancy();
            self.stats.record_insertion(
                out.insertion_attempts(),
                out.forced_eviction_count() as u64,
                occupancy,
            );
            if out.insertion_failed() {
                self.stats.insertion_failures.incr();
            }
        } else if out.forced_eviction_count() > 0 {
            // Hit-path evictions (e.g. a duplicate-tag mirror overflow when
            // the tag already exists elsewhere) bypass `record_insertion`.
            self.stats
                .forced_evictions
                .add(out.forced_eviction_count() as u64);
        }
        self.stats
            .forced_block_invalidations
            .add(out.forced_invalidation_count() as u64);
        match op {
            DirectoryOp::AddSharer { .. } if out.hit() => self.stats.sharer_adds.incr(),
            DirectoryOp::SetExclusive { .. } => {
                if out.invalidated_all() {
                    self.stats.invalidate_alls.incr();
                } else if out.hit() {
                    self.stats.sharer_adds.incr();
                }
            }
            DirectoryOp::RemoveSharer { .. } if out.hit() => self.stats.sharer_removes.incr(),
            _ => {}
        }
        if out.removed_entry() {
            self.stats.entry_removes.incr();
        }
    }
}

impl Directory for ShardedDirectory {
    fn organization(&self) -> String {
        let first = self.shards[0].organization();
        if self.shards[1..].iter().all(|s| s.organization() == first) {
            format!("sharded{}x[{first}]", self.shards.len())
        } else {
            format!("sharded{}x[mixed]", self.shards.len())
        }
    }

    fn num_caches(&self) -> usize {
        self.shards[0].num_caches()
    }

    fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity()).sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn contains(&self, line: LineAddr) -> bool {
        let (shard, local) = self.home_of(line);
        self.shards[shard].contains(local)
    }

    fn may_hold(&self, line: LineAddr, cache: CacheId) -> bool {
        let (shard, local) = self.home_of(line);
        self.shards[shard].may_hold(local, cache)
    }

    fn apply(&mut self, op: DirectoryOp, out: &mut Outcome) {
        let (shard, local) = self.home_of(op.line());
        self.shards[shard].apply(op.with_line(local), out);
        out.map_eviction_lines(|victim| self.global_line(shard, victim));
        self.absorb_outcome(&op, out);
    }

    // Routes the hint to the owning slice.  Because consecutive lines
    // interleave across slices, the windowed default of
    // [`Directory::apply_batch`] naturally spreads its prefetches over
    // several independent slices' storage arrays.
    fn prefetch_line(&self, line: LineAddr) {
        let (shard, local) = self.home_of(line);
        self.shards[shard].prefetch_line(local);
    }

    fn sharers(&self, line: LineAddr) -> Option<Vec<CacheId>> {
        let (shard, local) = self.home_of(line);
        self.shards[shard].sharers(local)
    }

    fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        for shard in &mut self.shards {
            shard.reset_stats();
        }
    }

    fn storage_profile(&self) -> StorageProfile {
        // A lookup or update touches exactly one slice, so access widths are
        // per-slice; storage is the sum over slices.  For heterogeneous
        // shards the per-access widths are the element-wise maxima — a
        // conservative bound for the energy model.
        self.shards
            .iter()
            .map(|s| s.storage_profile())
            .fold(StorageProfile::default(), |acc, p| StorageProfile {
                total_bits: acc.total_bits + p.total_bits,
                bits_read_per_lookup: acc.bits_read_per_lookup.max(p.bits_read_per_lookup),
                bits_written_per_update: acc.bits_written_per_update.max(p.bits_written_per_update),
                comparators_per_lookup: acc.comparators_per_lookup.max(p.comparators_per_lookup),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseDirectory;
    use ccd_sharers::FullBitVector;

    fn slice(ways: usize, sets: usize) -> Box<dyn Directory> {
        Box::new(SparseDirectory::<FullBitVector>::new(ways, sets, 8).unwrap())
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    #[test]
    fn construction_validation() {
        assert!(ShardedDirectory::new(Vec::new()).is_err());
        let mismatched: Vec<Box<dyn Directory>> = vec![
            slice(2, 8),
            Box::new(SparseDirectory::<FullBitVector>::new(2, 8, 4).unwrap()),
        ];
        assert!(ShardedDirectory::new(mismatched).is_err());
        let ok = ShardedDirectory::new(vec![slice(2, 8), slice(2, 8)]).unwrap();
        assert_eq!(ok.shard_count(), 2);
        assert_eq!(ok.capacity(), 32);
        assert_eq!(ok.num_caches(), 8);
        assert!(ok.organization().starts_with("sharded2x["));
    }

    #[test]
    fn routes_lines_to_the_owning_shard() {
        let mut dir = ShardedDirectory::new(vec![slice(2, 8), slice(2, 8)]).unwrap();
        dir.add_sharer(line(4), CacheId::new(1)); // even -> shard 0
        dir.add_sharer(line(7), CacheId::new(2)); // odd  -> shard 1
        assert_eq!(dir.shards()[0].len(), 1);
        assert_eq!(dir.shards()[1].len(), 1);
        assert_eq!(dir.len(), 2);
        assert!(dir.contains(line(4)));
        assert!(dir.contains(line(7)));
        assert!(!dir.contains(line(5)));
        assert_eq!(dir.sharers(line(7)), Some(vec![CacheId::new(2)]));
        assert!(dir.may_hold(line(4), CacheId::new(1)));
        assert!(!dir.may_hold(line(4), CacheId::new(2)));
    }

    #[test]
    fn forced_eviction_lines_are_reported_globally() {
        // 1-way 2-set slices, 2 shards: global blocks 0 and 8 both land on
        // shard 0, local set 0 -> the second insertion evicts the first.
        let mut dir = ShardedDirectory::new(vec![slice(1, 2), slice(1, 2)]).unwrap();
        dir.add_sharer(line(0), CacheId::new(0));
        let result = dir.add_sharer(line(8), CacheId::new(1));
        assert_eq!(result.forced_evictions.len(), 1);
        assert_eq!(
            result.forced_evictions[0].line,
            line(0),
            "global line expected"
        );
        assert_eq!(dir.stats().forced_evictions.get(), 1);
    }

    #[test]
    fn hit_path_mirror_overflow_evictions_are_counted() {
        // Duplicate-tag shards: 1-way, 2-set mirrors for 2 caches.  A
        // forced eviction on the *hit* path (tag already tracked via
        // another cache, requester's mirror set full) must still reach the
        // wrapper's aggregate counters.
        let mk = || -> Box<dyn Directory> {
            Box::new(crate::DuplicateTagDirectory::new(2, 1, 2).unwrap())
        };
        let mut dir = ShardedDirectory::new(vec![mk(), mk()]).unwrap();
        dir.add_sharer(line(0), CacheId::new(1)); // shard 0, local 0
        dir.add_sharer(line(4), CacheId::new(0)); // shard 0, local 2 (same mirror set)
        let mut out = Outcome::new();
        dir.apply(
            DirectoryOp::AddSharer {
                line: line(0),
                cache: CacheId::new(0),
            },
            &mut out,
        );
        assert!(out.hit(), "tag already tracked via cache 1");
        assert!(!out.allocated_new_entry());
        assert_eq!(out.forced_eviction_count(), 1);
        let eviction = out.forced_evictions().next().unwrap();
        assert_eq!(eviction.line, line(4), "victim reported as a global line");
        let shard_sum: u64 = dir
            .shards()
            .iter()
            .map(|s| s.stats().forced_evictions.get())
            .sum();
        assert_eq!(shard_sum, 1);
        assert_eq!(
            dir.stats().forced_evictions.get(),
            shard_sum,
            "hit-path evictions must reach the aggregate counters"
        );
        assert_eq!(dir.stats().forced_block_invalidations.get(), 1);
    }

    #[test]
    fn aggregate_stats_match_observable_operations() {
        let mut dir = ShardedDirectory::new(vec![slice(4, 8), slice(4, 8)]).unwrap();
        let l = line(42);
        dir.add_sharer(l, CacheId::new(0));
        dir.add_sharer(l, CacheId::new(1));
        let r = dir.set_exclusive(l, CacheId::new(2));
        assert_eq!(r.invalidate.len(), 2);
        dir.remove_sharer(l, CacheId::new(2));
        assert_eq!(dir.stats().insertions.get(), 1);
        assert_eq!(dir.stats().sharer_adds.get(), 1);
        assert_eq!(dir.stats().invalidate_alls.get(), 1);
        assert_eq!(dir.stats().sharer_removes.get(), 1);
        assert_eq!(dir.stats().entry_removes.get(), 1);
        assert!(dir.is_empty());
        dir.reset_stats();
        assert_eq!(dir.stats().insertions.get(), 0);
        assert_eq!(dir.shards()[0].stats().insertions.get(), 0);
    }

    #[test]
    fn storage_profile_sums_capacity_but_keeps_per_slice_widths() {
        let dir = ShardedDirectory::new(vec![slice(2, 8), slice(2, 8)]).unwrap();
        let single = slice(2, 8).storage_profile();
        let profile = dir.storage_profile();
        assert_eq!(profile.total_bits, 2 * single.total_bits);
        assert_eq!(profile.bits_read_per_lookup, single.bits_read_per_lookup);
        assert_eq!(
            profile.comparators_per_lookup,
            single.comparators_per_lookup
        );
    }
}
