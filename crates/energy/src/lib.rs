//! Analytical energy and area model for coherence-directory organizations.
//!
//! Figures 4 and 13 of the paper are *analytical projections*: for each
//! directory organization they plot, per core, the directory's energy per
//! operation (relative to a 1 MB 16-way L2 tag lookup) and its storage area
//! (relative to a 1 MB L2 data array) as the core count grows from 16 to
//! 1024.  The curves' shapes are entirely determined by how each
//! organization's *bits accessed per operation* and *bits stored per slice*
//! scale with the number of caches — Duplicate-Tag and Tagless read a number
//! of bits proportional to the cache count (quadratic aggregate energy),
//! full-vector and in-cache organizations store vectors proportional to the
//! cache count (quadratic aggregate area), while compressed-vector Sparse
//! and Cuckoo organizations keep both nearly constant per core.
//!
//! This crate reproduces those projections:
//!
//! * [`sram`] — the normalization references and the bits→energy/area
//!   proportionality,
//! * [`orgs`] — per-organization closed-form storage/access-width formulas
//!   (consistent with the `storage_profile()` reported by the executable
//!   directory implementations),
//! * [`model`] — the per-core energy/area evaluation, core-count sweeps and
//!   the headline-ratio helpers (e.g. "7× more area-efficient than Sparse at
//!   1024 cores").
//!
//! # Example
//!
//! ```
//! use ccd_energy::{DirOrg, EnergyModel};
//!
//! let model = EnergyModel::shared_l2();
//! let cuckoo = model.evaluate(&DirOrg::cuckoo_coarse_shared(), 1024);
//! let dup = model.evaluate(&DirOrg::DuplicateTag, 1024);
//! assert!(cuckoo.energy_relative < dup.energy_relative);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod orgs;
pub mod sram;

pub use model::{EnergyModel, ScalingPoint};
pub use orgs::DirOrg;
