//! Closed-form storage and access-width formulas per directory organization.
//!
//! Each organization is reduced to the same [`StorageProfile`] the
//! executable implementations report: total bits stored per slice, bits read
//! per lookup, bits written per update.  The formulas here are the
//! `N`-core generalizations of those implementations' accounting, so the
//! analytical curves and the measured structures agree at the sizes where
//! both exist (see the cross-checking unit tests).

use crate::sram::tag_bits;
use ccd_directory::StorageProfile;
use ccd_sharers::SharerFormat;
use std::fmt;

/// Bloom-filter buckets per (cache, set) filter of the Tagless
/// organization: the filter is sized proportionally to the number of blocks
/// it summarizes (~8 buckets per cache way), as in the MICRO 2009 design.
#[must_use]
pub fn tagless_buckets(cache_ways: usize) -> u64 {
    ((cache_ways * 8) as u64).next_power_of_two()
}

/// A directory organization, as plotted in Figures 4 and 13.
#[derive(Clone, Debug, PartialEq)]
pub enum DirOrg {
    /// Duplicate-Tag directory (mirrors every private cache's tags).
    DuplicateTag,
    /// Tagless directory (grid of Bloom filters).
    Tagless,
    /// In-cache directory: full sharer vectors on every shared-L2 tag
    /// (Shared-L2 hierarchy only).
    InCacheFullVector,
    /// Sparse directory with full bit-vector entries.
    SparseFullVector {
        /// Associativity.
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks per slice.
        provisioning: f64,
    },
    /// Sparse directory with coarse-vector entries (the paper's
    /// "Sparse 8× Coarse").
    SparseCoarse {
        /// Associativity.
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks per slice.
        provisioning: f64,
    },
    /// Sparse directory with two-level hierarchical entries ("Sparse 8×
    /// Hierarchical").
    SparseHierarchical {
        /// Associativity.
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks per slice.
        provisioning: f64,
    },
    /// Cuckoo directory with coarse-vector entries ("Cuckoo Coarse").
    CuckooCoarse {
        /// Number of ways (`d`).
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks per slice.
        provisioning: f64,
    },
    /// Cuckoo directory with hierarchical entries ("Cuckoo Hierarchical").
    CuckooHierarchical {
        /// Number of ways (`d`).
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks per slice.
        provisioning: f64,
    },
}

impl DirOrg {
    /// The paper's Cuckoo Coarse configuration for the Shared-L2 hierarchy:
    /// 4-way, 1× provisioning.
    #[must_use]
    pub fn cuckoo_coarse_shared() -> Self {
        DirOrg::CuckooCoarse {
            ways: 4,
            provisioning: 1.0,
        }
    }

    /// The paper's Cuckoo Coarse configuration for the Private-L2
    /// hierarchy: 3-way, 1.5× provisioning.
    #[must_use]
    pub fn cuckoo_coarse_private() -> Self {
        DirOrg::CuckooCoarse {
            ways: 3,
            provisioning: 1.5,
        }
    }

    /// The organizations plotted in Figure 4 (baselines only), in the
    /// legend's order.
    #[must_use]
    pub fn figure4_set() -> Vec<DirOrg> {
        vec![
            DirOrg::DuplicateTag,
            DirOrg::Tagless,
            DirOrg::InCacheFullVector,
            DirOrg::SparseHierarchical {
                ways: 8,
                provisioning: 8.0,
            },
            DirOrg::SparseCoarse {
                ways: 8,
                provisioning: 8.0,
            },
        ]
    }

    /// The organizations plotted in Figure 13, in the legend's order, for a
    /// given hierarchy (`shared = true` for Shared-L2).
    #[must_use]
    pub fn figure13_set(shared: bool) -> Vec<DirOrg> {
        let (cuckoo_ways, cuckoo_prov) = if shared { (4, 1.0) } else { (3, 1.5) };
        let mut orgs = vec![DirOrg::DuplicateTag, DirOrg::Tagless];
        if shared {
            orgs.push(DirOrg::InCacheFullVector);
        } else {
            orgs.push(DirOrg::SparseFullVector {
                ways: 8,
                provisioning: 8.0,
            });
        }
        orgs.push(DirOrg::SparseHierarchical {
            ways: 8,
            provisioning: 8.0,
        });
        orgs.push(DirOrg::SparseCoarse {
            ways: 8,
            provisioning: 8.0,
        });
        orgs.push(DirOrg::CuckooHierarchical {
            ways: cuckoo_ways,
            provisioning: cuckoo_prov,
        });
        orgs.push(DirOrg::CuckooCoarse {
            ways: cuckoo_ways,
            provisioning: cuckoo_prov,
        });
        orgs
    }

    /// Short label matching the figure legends.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DirOrg::DuplicateTag => "Duplicate-Tag".to_string(),
            DirOrg::Tagless => "Tagless".to_string(),
            DirOrg::InCacheFullVector => "In-Cache".to_string(),
            DirOrg::SparseFullVector { provisioning, .. } => {
                format!("Sparse {provisioning}x Full")
            }
            DirOrg::SparseCoarse { provisioning, .. } => format!("Sparse {provisioning}x Coarse"),
            DirOrg::SparseHierarchical { provisioning, .. } => {
                format!("Sparse {provisioning}x Hierarchical")
            }
            DirOrg::CuckooCoarse { .. } => "Cuckoo Coarse".to_string(),
            DirOrg::CuckooHierarchical { .. } => "Cuckoo Hierarchical".to_string(),
        }
    }

    /// `true` for the two Cuckoo organizations.
    #[must_use]
    pub fn is_cuckoo(&self) -> bool {
        matches!(
            self,
            DirOrg::CuckooCoarse { .. } | DirOrg::CuckooHierarchical { .. }
        )
    }
}

impl fmt::Display for DirOrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Parameters of one directory slice's environment, independent of the
/// organization: how many caches it serves and how many blocks it must be
/// able to track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceEnvironment {
    /// Number of private caches in the system (sharer-vector width).
    pub num_caches: usize,
    /// Worst-case blocks one slice must track (cache frames mapping to it).
    pub tracked_frames: usize,
    /// Tracked-cache sets mapping to this slice (sizes Duplicate-Tag and
    /// Tagless mirrors).
    pub tracked_sets: usize,
    /// Tracked-cache associativity.
    pub cache_ways: usize,
    /// Shared-L2 frames per slice (sizes the in-cache organization); zero
    /// when there is no shared L2.
    pub l2_frames_per_slice: usize,
    /// Shared-L2 associativity.
    pub l2_ways: usize,
}

fn set_assoc_geometry(ways: usize, tracked_frames: usize, provisioning: f64) -> (usize, usize) {
    let capacity = (tracked_frames as f64 * provisioning).ceil() as usize;
    let sets = capacity.div_ceil(ways.max(1)).next_power_of_two().max(2);
    (ways, sets)
}

/// Computes the per-slice storage profile of `org` in environment `env`.
#[must_use]
pub fn storage_profile(org: &DirOrg, env: &SliceEnvironment) -> StorageProfile {
    let caches = env.num_caches as u64;
    match org {
        DirOrg::DuplicateTag => {
            let entry = tag_bits(env.tracked_sets) + 1;
            let assoc = (env.cache_ways * env.num_caches) as u64;
            StorageProfile {
                total_bits: entry * (env.tracked_sets * env.cache_ways * env.num_caches) as u64,
                bits_read_per_lookup: assoc * tag_bits(env.tracked_sets),
                bits_written_per_update: entry,
                comparators_per_lookup: assoc,
            }
        }
        DirOrg::Tagless => {
            let buckets = tagless_buckets(env.cache_ways);
            StorageProfile {
                total_bits: buckets * (env.tracked_sets * env.num_caches) as u64,
                bits_read_per_lookup: buckets * caches,
                bits_written_per_update: buckets,
                comparators_per_lookup: 0,
            }
        }
        DirOrg::InCacheFullVector => StorageProfile {
            total_bits: caches * env.l2_frames_per_slice as u64,
            bits_read_per_lookup: env.l2_ways as u64 * caches,
            bits_written_per_update: caches,
            comparators_per_lookup: 0,
        },
        DirOrg::SparseFullVector { ways, provisioning }
        | DirOrg::SparseCoarse { ways, provisioning }
        | DirOrg::SparseHierarchical { ways, provisioning }
        | DirOrg::CuckooCoarse { ways, provisioning }
        | DirOrg::CuckooHierarchical { ways, provisioning } => {
            let (ways, sets) = set_assoc_geometry(*ways, env.tracked_frames, *provisioning);
            let format = match org {
                DirOrg::SparseFullVector { .. } => SharerFormat::FullVector,
                DirOrg::SparseCoarse { .. } | DirOrg::CuckooCoarse { .. } => SharerFormat::Coarse,
                _ => SharerFormat::Hierarchical,
            };
            let sharer_bits = format.entry_bits(env.num_caches);
            let tag = tag_bits(sets);
            let entry = tag + sharer_bits + 1;
            StorageProfile {
                total_bits: entry * (ways * sets) as u64,
                bits_read_per_lookup: ways as u64 * (tag + sharer_bits),
                bits_written_per_update: entry,
                comparators_per_lookup: ways as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_env(cores: usize) -> SliceEnvironment {
        // 64 KB 2-way L1 I+D per core, 16 slices-worth divided per core count
        // is irrelevant here: per-slice quantities stay constant.
        SliceEnvironment {
            num_caches: 2 * cores,
            tracked_frames: 2048,
            tracked_sets: 512 / 16 * 2, // I+D sets mapping to one slice at 16 cores
            cache_ways: 2,
            l2_frames_per_slice: 16_384,
            l2_ways: 16,
        }
    }

    #[test]
    fn duplicate_tag_lookup_width_scales_with_cores() {
        let p16 = storage_profile(&DirOrg::DuplicateTag, &shared_env(16));
        let p1024 = storage_profile(&DirOrg::DuplicateTag, &shared_env(1024));
        assert_eq!(
            p1024.bits_read_per_lookup,
            64 * p16.bits_read_per_lookup,
            "64x the caches -> 64x the lookup width"
        );
        assert_eq!(p16.bits_written_per_update, p1024.bits_written_per_update);
    }

    #[test]
    fn tagless_is_tiny_but_reads_scale_with_cores() {
        let p16 = storage_profile(&DirOrg::Tagless, &shared_env(16));
        let p1024 = storage_profile(&DirOrg::Tagless, &shared_env(1024));
        assert_eq!(p1024.bits_read_per_lookup, 64 * p16.bits_read_per_lookup);
        // The paper calls both Duplicate-Tag and Tagless "area-efficient";
        // Tagless stores fewer bits per tracked frame than a duplicated tag.
        let dup = storage_profile(&DirOrg::DuplicateTag, &shared_env(1024));
        assert!(p1024.total_bits < dup.total_bits);
    }

    #[test]
    fn compressed_sparse_and_cuckoo_are_nearly_core_count_independent() {
        // Coarse entries grow only logarithmically with the cache count,
        // hierarchical entries with its square root; both are "nearly flat"
        // over the paper's 64x core-count range compared to the 64x growth
        // of full vectors and wide lookups.
        let cases: [(DirOrg, f64); 3] = [
            (
                DirOrg::SparseCoarse {
                    ways: 8,
                    provisioning: 8.0,
                },
                1.6,
            ),
            (
                DirOrg::CuckooCoarse {
                    ways: 4,
                    provisioning: 1.0,
                },
                1.6,
            ),
            (
                DirOrg::CuckooHierarchical {
                    ways: 4,
                    provisioning: 1.0,
                },
                4.0,
            ),
        ];
        for (org, bound) in cases {
            let p16 = storage_profile(&org, &shared_env(16));
            let p1024 = storage_profile(&org, &shared_env(1024));
            let growth = p1024.total_bits as f64 / p16.total_bits as f64;
            assert!(
                growth < bound,
                "{org}: per-slice storage grew {growth}x from 16 to 1024 cores"
            );
            let e_growth = p1024.bits_read_per_lookup as f64 / p16.bits_read_per_lookup as f64;
            assert!(e_growth < bound, "{org}: lookup width grew {e_growth}x");
        }
    }

    #[test]
    fn full_vector_storage_grows_linearly_with_cores() {
        let sparse = DirOrg::SparseFullVector {
            ways: 8,
            provisioning: 8.0,
        };
        let p16 = storage_profile(&sparse, &shared_env(16));
        let p256 = storage_profile(&sparse, &shared_env(256));
        let growth = p256.total_bits as f64 / p16.total_bits as f64;
        assert!(
            growth > 8.0,
            "full vectors must dominate storage, growth {growth}"
        );

        let in_cache = DirOrg::InCacheFullVector;
        let p16 = storage_profile(&in_cache, &shared_env(16));
        let p256 = storage_profile(&in_cache, &shared_env(256));
        assert_eq!(p256.total_bits, 16 * p16.total_bits);
    }

    #[test]
    fn cuckoo_is_much_smaller_than_sparse_8x_with_the_same_entry_format() {
        let env = shared_env(1024);
        let sparse = storage_profile(
            &DirOrg::SparseCoarse {
                ways: 8,
                provisioning: 8.0,
            },
            &env,
        );
        let cuckoo = storage_profile(&DirOrg::cuckoo_coarse_shared(), &env);
        let ratio = sparse.total_bits as f64 / cuckoo.total_bits as f64;
        assert!(
            ratio > 6.0,
            "paper claims ~7x area advantage at 1024 cores, model gives {ratio}"
        );
    }

    #[test]
    fn analytical_profile_matches_executable_cuckoo_directory() {
        // Cross-check the closed form against the real implementation's
        // accounting at the 16-core Shared-L2 size (full-vector entries).
        use ccd_cuckoo::{CuckooConfig, CuckooDirectory};
        use ccd_directory::Directory;
        use ccd_sharers::FullBitVector;

        let dir = CuckooDirectory::<FullBitVector>::new(CuckooConfig::new(4, 512, 32)).unwrap();
        let executable = dir.storage_profile();
        let analytical = storage_profile(
            &DirOrg::SparseFullVector {
                ways: 4,
                provisioning: 1.0,
            },
            &shared_env(16),
        );
        // Same ways x sets x (tag + vector + valid) accounting.
        assert_eq!(executable.total_bits, analytical.total_bits);
        assert_eq!(
            executable.bits_read_per_lookup,
            analytical.bits_read_per_lookup
        );
    }

    #[test]
    fn figure_sets_have_the_documented_membership() {
        assert_eq!(DirOrg::figure4_set().len(), 5);
        let shared = DirOrg::figure13_set(true);
        let private = DirOrg::figure13_set(false);
        assert_eq!(shared.len(), 7);
        assert_eq!(private.len(), 7);
        assert!(shared.contains(&DirOrg::InCacheFullVector));
        assert!(!private.contains(&DirOrg::InCacheFullVector));
        assert!(shared.iter().filter(|o| o.is_cuckoo()).count() == 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DirOrg::DuplicateTag.label(), "Duplicate-Tag");
        assert_eq!(
            DirOrg::SparseCoarse {
                ways: 8,
                provisioning: 8.0
            }
            .label(),
            "Sparse 8x Coarse"
        );
        assert_eq!(DirOrg::cuckoo_coarse_private().label(), "Cuckoo Coarse");
        assert_eq!(format!("{}", DirOrg::Tagless), "Tagless");
    }
}
