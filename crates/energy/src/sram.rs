//! Normalization references and the bits→energy/area proportionality.
//!
//! The paper reports directory energy "relative to the energy of a 16-way
//! set-associative L2 tag lookup" and directory area "relative to the area
//! of the L2 data array (1 MB)" (Section 5.6).  For *relative* comparisons
//! the dominant term of an SRAM access is the number of bits read or
//! written, and the dominant term of its area is the number of bits stored;
//! the constants cancel in the ratios, so the model works directly in bit
//! counts.

use ccd_common::{ceil_log2, PHYSICAL_ADDRESS_BITS};

/// Block offset bits for the 64-byte blocks used throughout the paper.
pub const BLOCK_OFFSET_BITS: u32 = 6;

/// Tag width (in bits) of a structure with `sets` sets, assuming the paper's
/// 48-bit physical address space and 64-byte blocks.
#[must_use]
pub fn tag_bits(sets: usize) -> u64 {
    u64::from(
        PHYSICAL_ADDRESS_BITS
            .saturating_sub(BLOCK_OFFSET_BITS)
            .saturating_sub(ceil_log2(sets as u64)),
    )
}

/// Bits read by the reference operation: one lookup of the tags of a 1 MB,
/// 16-way, 64-byte-block L2 cache (16 384 frames, 1 024 sets): 16 ways ×
/// (tag + valid).
#[must_use]
pub fn reference_lookup_bits() -> f64 {
    let sets = 1024;
    16.0 * (tag_bits(sets) + 1) as f64
}

/// Bits stored by the reference area: the data array of a 1 MB cache.
#[must_use]
pub fn reference_area_bits() -> f64 {
    (1024u64 * 1024 * 8) as f64
}

/// Energy of an access that touches `bits` bits, expressed relative to the
/// reference lookup (1.0 = one L2 tag lookup).
#[must_use]
pub fn relative_energy(bits: f64) -> f64 {
    bits / reference_lookup_bits()
}

/// Area of a structure storing `bits` bits, expressed relative to the
/// reference 1 MB data array (1.0 = one L2 data array).
#[must_use]
pub fn relative_area(bits: f64) -> f64 {
    bits / reference_area_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_bits_for_common_geometries() {
        // 1 MB 16-way: 1024 sets -> 48 - 6 - 10 = 32 tag bits.
        assert_eq!(tag_bits(1024), 32);
        // 64 KB 2-way L1: 512 sets -> 48 - 6 - 9 = 33.
        assert_eq!(tag_bits(512), 33);
        // Degenerate single-set structure keeps the full 42-bit block number.
        assert_eq!(tag_bits(1), 42);
    }

    #[test]
    fn reference_quantities_are_sensible() {
        // 16 * 33 = 528 bits per reference tag lookup.
        assert_eq!(reference_lookup_bits(), 528.0);
        assert_eq!(reference_area_bits(), 8.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn relative_measures_are_linear_in_bits() {
        assert!((relative_energy(528.0) - 1.0).abs() < 1e-12);
        assert!((relative_energy(1056.0) - 2.0).abs() < 1e-12);
        assert!((relative_area(8.0 * 1024.0 * 1024.0) - 1.0).abs() < 1e-12);
        assert!((relative_area(4.0 * 1024.0 * 1024.0) - 0.5).abs() < 1e-12);
    }
}
