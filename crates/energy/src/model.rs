//! The per-core energy/area evaluation and core-count sweeps.
//!
//! For every organization the model computes, per directory slice (= per
//! core):
//!
//! * **energy per directory operation**, averaged over the directory event
//!   mix the paper measured (footnote 1 of Section 5.6: insert 23.5 %, add
//!   sharer 26.9 %, remove sharer 24.9 %, remove tag 23.5 %, invalidate all
//!   1.2 %), expressed relative to one 1 MB 16-way L2 tag lookup;
//! * **storage area**, expressed relative to one 1 MB L2 data array.
//!
//! Every operation performs one lookup; operations other than
//! `invalidate all` additionally write one entry; insertions into a Cuckoo
//! directory perform `avg_attempts − 1` extra lookup+write rounds
//! (the displacement chain), using the average attempt count measured in
//! Section 5.3 (≈ 1.2–1.6 depending on occupancy).

use crate::orgs::{storage_profile, DirOrg, SliceEnvironment};
use crate::sram::{relative_area, relative_energy};
use ccd_cache::CacheConfig;
use ccd_directory::stats::EventMix;

/// The default average insertion-attempt count charged to Cuckoo
/// insertions, matching the measured averages of Figure 10.
pub const DEFAULT_CUCKOO_AVG_ATTEMPTS: f64 = 1.5;

/// One evaluated point of a scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Core count.
    pub cores: usize,
    /// Per-core directory energy per operation, relative to a 1 MB L2 tag
    /// lookup (1.0 = same energy).
    pub energy_relative: f64,
    /// Per-core directory area, relative to a 1 MB L2 data array
    /// (1.0 = same area).
    pub area_relative: f64,
}

/// The analytical model for one cache hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyModel {
    /// Caches per core tracked by the directory (2 for Shared-L2, 1 for
    /// Private-L2).
    pub caches_per_core: usize,
    /// Geometry of each tracked cache.
    pub tracked_cache: CacheConfig,
    /// Shared-L2 frames per slice (0 when there is no shared L2).
    pub l2_frames_per_slice: usize,
    /// Shared-L2 associativity.
    pub l2_ways: usize,
    /// Directory event mix used to weight per-operation energies.
    pub event_mix: EventMix,
    /// Average insertion attempts charged to Cuckoo insertions.
    pub cuckoo_avg_attempts: f64,
}

impl EnergyModel {
    /// The Shared-L2 hierarchy of Table 1: the directory tracks two 64 KB
    /// 2-way L1 caches per core; the shared L2 provides 1 MB per core.
    #[must_use]
    pub fn shared_l2() -> Self {
        EnergyModel {
            caches_per_core: 2,
            tracked_cache: CacheConfig::l1_64k(),
            l2_frames_per_slice: CacheConfig::l2_1m().frames(),
            l2_ways: CacheConfig::l2_1m().ways,
            event_mix: EventMix::paper_reference(),
            cuckoo_avg_attempts: DEFAULT_CUCKOO_AVG_ATTEMPTS,
        }
    }

    /// The Private-L2 hierarchy of Table 1: the directory tracks one 1 MB
    /// 16-way private L2 per core.
    #[must_use]
    pub fn private_l2() -> Self {
        EnergyModel {
            caches_per_core: 1,
            tracked_cache: CacheConfig::l2_1m(),
            l2_frames_per_slice: 0,
            l2_ways: 0,
            event_mix: EventMix::paper_reference(),
            cuckoo_avg_attempts: DEFAULT_CUCKOO_AVG_ATTEMPTS,
        }
    }

    /// Replaces the event mix (e.g. with one measured by the simulator).
    #[must_use]
    pub fn with_event_mix(mut self, mix: EventMix) -> Self {
        self.event_mix = mix;
        self
    }

    /// Replaces the Cuckoo insertion-attempt average (e.g. with a measured
    /// value from Figure 10).
    #[must_use]
    pub fn with_cuckoo_attempts(mut self, attempts: f64) -> Self {
        self.cuckoo_avg_attempts = attempts.max(1.0);
        self
    }

    /// The per-slice environment for a system with `cores` cores.
    ///
    /// Per-slice quantities (tracked frames, tracked sets per mirrored
    /// cache) are independent of the core count — adding a core adds a
    /// slice and each slice mirrors a `1/cores` fraction of every cache —
    /// while the number of caches every sharer vector must describe grows
    /// linearly.
    #[must_use]
    pub fn slice_environment(&self, cores: usize) -> SliceEnvironment {
        SliceEnvironment {
            num_caches: self.caches_per_core * cores,
            tracked_frames: self.tracked_cache.frames() * self.caches_per_core,
            tracked_sets: (self.tracked_cache.sets / cores.max(1)).max(1),
            cache_ways: self.tracked_cache.ways,
            l2_frames_per_slice: self.l2_frames_per_slice,
            l2_ways: self.l2_ways,
        }
    }

    /// Average bits touched per directory operation for `org` at `cores`
    /// cores.
    #[must_use]
    pub fn bits_per_operation(&self, org: &DirOrg, cores: usize) -> f64 {
        let env = self.slice_environment(cores);
        let profile = storage_profile(org, &env);
        let lookup = profile.bits_read_per_lookup as f64;
        let update = profile.bits_written_per_update as f64;
        let mix = &self.event_mix;

        // Every operation looks the directory up; all but pure
        // invalidate-all also write one entry.
        let write_fraction = mix.insert_tag + mix.add_sharer + mix.remove_sharer + mix.remove_tag;
        let mut bits = lookup + write_fraction * update;

        // Cuckoo insertions pay for their displacement chain.
        if org.is_cuckoo() {
            let extra_rounds = (self.cuckoo_avg_attempts - 1.0).max(0.0);
            bits += mix.insert_tag * extra_rounds * (lookup + update);
        }
        bits
    }

    /// Evaluates one organization at one core count.
    #[must_use]
    pub fn evaluate(&self, org: &DirOrg, cores: usize) -> ScalingPoint {
        let env = self.slice_environment(cores);
        let profile = storage_profile(org, &env);
        ScalingPoint {
            cores,
            energy_relative: relative_energy(self.bits_per_operation(org, cores)),
            area_relative: relative_area(profile.total_bits as f64),
        }
    }

    /// Sweeps an organization across core counts.
    #[must_use]
    pub fn sweep(&self, org: &DirOrg, core_counts: &[usize]) -> Vec<ScalingPoint> {
        core_counts.iter().map(|&c| self.evaluate(org, c)).collect()
    }

    /// The core counts plotted in Figures 4 and 13.
    #[must_use]
    pub fn paper_core_counts() -> Vec<usize> {
        vec![16, 32, 64, 128, 256, 512, 1024]
    }

    /// Ratio of `baseline`'s energy to `candidate`'s energy at `cores`
    /// cores (how many times more energy-efficient the candidate is).
    #[must_use]
    pub fn energy_advantage(&self, candidate: &DirOrg, baseline: &DirOrg, cores: usize) -> f64 {
        let c = self.evaluate(candidate, cores);
        let b = self.evaluate(baseline, cores);
        b.energy_relative / c.energy_relative
    }

    /// Ratio of `baseline`'s area to `candidate`'s area at `cores` cores.
    #[must_use]
    pub fn area_advantage(&self, candidate: &DirOrg, baseline: &DirOrg, cores: usize) -> f64 {
        let c = self.evaluate(candidate, cores);
        let b = self.evaluate(baseline, cores);
        b.area_relative / c.area_relative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> EnergyModel {
        EnergyModel::shared_l2()
    }

    fn private() -> EnergyModel {
        EnergyModel::private_l2()
    }

    #[test]
    fn duplicate_tag_energy_grows_linearly_per_core() {
        // Figure 4: the Duplicate-Tag (and Tagless) energy lines grow with
        // core count, giving quadratic aggregate energy.
        let model = shared();
        let e16 = model.evaluate(&DirOrg::DuplicateTag, 16).energy_relative;
        let e1024 = model.evaluate(&DirOrg::DuplicateTag, 1024).energy_relative;
        let growth = e1024 / e16;
        assert!(
            (32.0..96.0).contains(&growth),
            "expected ~64x growth from 16 to 1024 cores, got {growth}"
        );

        let t16 = model.evaluate(&DirOrg::Tagless, 16).energy_relative;
        let t1024 = model.evaluate(&DirOrg::Tagless, 1024).energy_relative;
        assert!(t1024 / t16 > 30.0);
    }

    #[test]
    fn cuckoo_energy_and_area_are_nearly_flat() {
        let model = shared();
        let org = DirOrg::cuckoo_coarse_shared();
        let p16 = model.evaluate(&org, 16);
        let p1024 = model.evaluate(&org, 1024);
        assert!(p1024.energy_relative / p16.energy_relative < 1.5);
        assert!(p1024.area_relative / p16.area_relative < 1.5);
    }

    #[test]
    fn paper_headline_ratios_hold_at_1024_cores() {
        // "At 1024 cores, the Cuckoo directory is up to 80 times more
        //  power-efficient than the area-efficient Tagless directory and ...
        //  seven times more area-efficient than the power-efficient Sparse
        //  directory." (Section 7)
        let model = shared();
        let cuckoo = DirOrg::cuckoo_coarse_shared();
        let sparse_coarse = DirOrg::SparseCoarse {
            ways: 8,
            provisioning: 8.0,
        };
        let energy_vs_tagless = model.energy_advantage(&cuckoo, &DirOrg::Tagless, 1024);
        assert!(
            energy_vs_tagless > 20.0,
            "expected a large energy advantage over Tagless, got {energy_vs_tagless}"
        );
        let area_vs_sparse = model.area_advantage(&cuckoo, &sparse_coarse, 1024);
        assert!(
            (4.0..12.0).contains(&area_vs_sparse),
            "expected ~7x area advantage over Sparse 8x, got {area_vs_sparse}"
        );
    }

    #[test]
    fn paper_16_core_ratios_hold() {
        // "Even at 16 cores, the Cuckoo directory is up to 16x more
        //  energy-efficient than the traditional Duplicate-Tag directory and
        //  up to 6x more area-efficient than the Sparse organization."
        // (Section 1)  The Duplicate-Tag comparison is most extreme in the
        // Private-L2 configuration (16-way caches -> 256-wide lookups).
        let model = private();
        let cuckoo = DirOrg::cuckoo_coarse_private();
        let energy_vs_dup = model.energy_advantage(&cuckoo, &DirOrg::DuplicateTag, 16);
        assert!(
            energy_vs_dup > 8.0,
            "expected a large energy advantage over Duplicate-Tag at 16 cores, got {energy_vs_dup}"
        );
        let sparse = DirOrg::SparseCoarse {
            ways: 8,
            provisioning: 8.0,
        };
        let area_vs_sparse = model.area_advantage(&cuckoo, &sparse, 16);
        assert!(
            area_vs_sparse > 3.0,
            "expected a multi-x area advantage over Sparse 8x at 16 cores, got {area_vs_sparse}"
        );
    }

    #[test]
    fn in_cache_becomes_vector_dominated_past_128_cores() {
        // Section 5.6: "beyond 128 cores, in-cache directories lose their
        // advantages and become dominated by bit-vector storage".  Its area
        // grows linearly with core count and overtakes the L2 data array
        // itself, while the Cuckoo directory stays at a few percent.
        let model = shared();
        let cuckoo = DirOrg::cuckoo_coarse_shared();
        let at_16 = model.evaluate(&DirOrg::InCacheFullVector, 16).area_relative;
        let at_128 = model
            .evaluate(&DirOrg::InCacheFullVector, 128)
            .area_relative;
        let at_1024 = model
            .evaluate(&DirOrg::InCacheFullVector, 1024)
            .area_relative;
        assert!(
            (at_1024 / at_16 - 64.0).abs() < 1.0,
            "linear growth in core count"
        );
        assert!(
            at_128 > 0.4,
            "already a large fraction of the L2 at 128 cores"
        );
        assert!(
            at_1024 > 1.0,
            "exceeds the L2 data array itself at 1024 cores"
        );
        let cuckoo_1024 = model.evaluate(&cuckoo, 1024).area_relative;
        assert!(at_1024 > 20.0 * cuckoo_1024);
    }

    #[test]
    fn cuckoo_area_stays_below_the_paper_bounds() {
        // Section 5.6: directory storage under 3% of the L2 area for the
        // Shared-L2 configuration at 1024 cores, and under 30% for
        // Private-L2.
        let shared_point = shared().evaluate(&DirOrg::cuckoo_coarse_shared(), 1024);
        assert!(
            shared_point.area_relative < 0.05,
            "Shared-L2 Cuckoo area {} should be a few percent of the L2",
            shared_point.area_relative
        );
        let private_point = private().evaluate(&DirOrg::cuckoo_coarse_private(), 1024);
        assert!(
            private_point.area_relative < 0.40,
            "Private-L2 Cuckoo area {} should be well under half the L2",
            private_point.area_relative
        );
    }

    #[test]
    fn sweeps_cover_requested_core_counts() {
        let model = shared();
        let counts = EnergyModel::paper_core_counts();
        let sweep = model.sweep(&DirOrg::Tagless, &counts);
        assert_eq!(sweep.len(), counts.len());
        assert_eq!(sweep[0].cores, 16);
        assert_eq!(sweep.last().unwrap().cores, 1024);
        // Energy is monotonically non-decreasing with cores for Tagless.
        for pair in sweep.windows(2) {
            assert!(pair[1].energy_relative >= pair[0].energy_relative);
        }
    }

    #[test]
    fn builder_overrides_are_applied() {
        let model = shared().with_cuckoo_attempts(3.0);
        let cheap = shared().with_cuckoo_attempts(1.0);
        let org = DirOrg::cuckoo_coarse_shared();
        assert!(
            model.evaluate(&org, 64).energy_relative > cheap.evaluate(&org, 64).energy_relative
        );
        // Attempts below 1.0 are clamped.
        let clamped = shared().with_cuckoo_attempts(0.1);
        assert!(
            (clamped.evaluate(&org, 64).energy_relative - cheap.evaluate(&org, 64).energy_relative)
                .abs()
                < 1e-9
        );
        // A custom event mix changes the weighting.
        let mut mix = EventMix::paper_reference();
        mix.insert_tag = 0.0;
        mix.add_sharer = 0.0;
        mix.remove_sharer = 0.0;
        mix.remove_tag = 0.0;
        mix.invalidate_all = 1.0;
        let lookup_only = shared().with_event_mix(mix);
        assert!(
            lookup_only.evaluate(&org, 64).energy_relative
                < shared().evaluate(&org, 64).energy_relative
        );
    }
}
