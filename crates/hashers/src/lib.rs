//! Index hash-function families for skewed and cuckoo directories.
//!
//! The Cuckoo directory indexes each of its `d` direct-mapped ways through a
//! *different* hash function (Figure 6 of the paper).  The paper evaluates
//! two families:
//!
//! * the **skewing functions** of Seznec and Bodin, cheap XOR/rotate networks
//!   that need only a few levels of logic in hardware (Section 5.5), and
//! * **strong (cryptographic-quality) hash functions**, used to characterize
//!   the intrinsic behaviour of d-ary cuckoo hashing independent of hash
//!   quality (Figure 7) and as a sensitivity study (Section 5.5).
//!
//! This crate provides both, plus a classic multiply-shift family as a
//! middle ground, all behind the [`IndexHashFamily`] trait.
//!
//! # Example
//!
//! ```
//! use ccd_common::LineAddr;
//! use ccd_hash::{HashFamily, HashKind, IndexHashFamily};
//!
//! let family = HashFamily::new(HashKind::Skewing, 4, 512)?;
//! let line = LineAddr::from_block_number(0xdead_beef);
//! for way in 0..family.ways() {
//!     assert!(family.index(way, line) < 512);
//! }
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod family;
pub mod multiply_shift;
pub mod skewing;
pub mod strong;
pub mod tag_alt;

pub use family::{HashFamily, HashKind};
pub use multiply_shift::MultiplyShiftFamily;
pub use skewing::SkewingFamily;
pub use strong::StrongFamily;
pub use tag_alt::{fingerprint, TagAltFamily};

use ccd_common::LineAddr;

/// Upper bound on the way count of *any* family in this crate (the strong
/// and multiply-shift families allow up to 64 ways; skewing allows 16).
/// Probe code can size its per-key index buffers with this constant and hold
/// them on the stack.
pub const MAX_FAMILY_WAYS: usize = 64;

/// A family of per-way index hash functions over cache-line addresses.
///
/// Implementations map a line address to a set index in `[0, sets())` for
/// each of `ways()` ways.  Different ways must use *independent* functions —
/// that independence is exactly what lets the cuckoo insertion procedure
/// break transitive conflicts (Section 4.1 of the paper).
pub trait IndexHashFamily {
    /// Number of ways (independent hash functions) in this family.
    fn ways(&self) -> usize;

    /// Number of sets each function maps into.
    fn sets(&self) -> usize;

    /// Maps `line` to a set index for `way`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `way >= self.ways()`.
    fn index(&self, way: usize, line: LineAddr) -> usize;

    /// Returns the indices for all ways of this family, in way order.
    fn all_indices(&self, line: LineAddr) -> Vec<usize> {
        let mut out = vec![0; self.ways()];
        self.index_all_into(line, &mut out);
        out
    }

    /// Writes the index of every way into `out[..ways()]` in one pass.
    ///
    /// This is the hot-path variant of [`IndexHashFamily::all_indices`]: a
    /// cuckoo probe needs all `d` candidate indices of a key at once, and
    /// computing them together lets an implementation hoist the per-key work
    /// (field decomposition, enum dispatch) out of the per-way loop and write
    /// into a caller-owned stack buffer without allocating.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than [`IndexHashFamily::ways`].
    /// Elements beyond `ways()` are left untouched.
    fn index_all_into(&self, line: LineAddr, out: &mut [usize]) {
        assert!(
            out.len() >= self.ways(),
            "index buffer of {} entries cannot hold {} ways",
            out.len(),
            self.ways()
        );
        for (way, slot) in out.iter_mut().enumerate().take(self.ways()) {
            *slot = self.index(way, line);
        }
    }

    /// Estimated number of two-input logic levels a hardware implementation
    /// of one function requires.  Used by the energy model to reason about
    /// the "trivial implementation of the skewing hash functions" versus the
    /// "complex hardware implementation" of strong functions (Section 5.5).
    fn logic_levels(&self) -> u32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64};

    /// Shared check: every family keeps indices in range and distributes
    /// reasonably uniformly across the sets.
    fn check_uniformity<F: IndexHashFamily>(family: &F, samples: usize) {
        let sets = family.sets();
        let mut rng = SplitMix64::new(0x1234);
        let mut counts = vec![vec![0usize; sets]; family.ways()];
        for _ in 0..samples {
            let line = LineAddr::from_block_number(rng.next_u64() >> 6);
            for (way, way_counts) in counts.iter_mut().enumerate() {
                let idx = family.index(way, line);
                assert!(idx < sets);
                way_counts[idx] += 1;
            }
        }
        let expected = samples as f64 / sets as f64;
        for way_counts in &counts {
            let max = *way_counts.iter().max().unwrap() as f64;
            let min = *way_counts.iter().min().unwrap() as f64;
            // With random inputs every bucket should be within a generous
            // factor of the expectation.
            assert!(max < expected * 3.0, "max {max} vs expected {expected}");
            assert!(min > expected / 3.0, "min {min} vs expected {expected}");
        }
    }

    #[test]
    fn all_families_are_uniform_on_random_input() {
        check_uniformity(&SkewingFamily::new(4, 256).unwrap(), 100_000);
        check_uniformity(&StrongFamily::new(4, 256).unwrap(), 100_000);
        check_uniformity(&MultiplyShiftFamily::new(4, 256).unwrap(), 100_000);
        check_uniformity(&TagAltFamily::new(4, 256).unwrap(), 100_000);
    }

    #[test]
    fn index_all_into_matches_per_way_index_for_every_kind() {
        let mut rng = SplitMix64::new(0xA11);
        for kind in [
            HashKind::Skewing,
            HashKind::MultiplyShift,
            HashKind::Strong,
            HashKind::TagAlt,
        ] {
            for ways in [2usize, 3, 4, 8, 16] {
                let family = HashFamily::new(kind, ways, 512).unwrap();
                let mut buf = [0usize; MAX_FAMILY_WAYS];
                for _ in 0..200 {
                    let line = LineAddr::from_block_number(rng.next_u64() >> 6);
                    family.index_all_into(line, &mut buf);
                    for (way, &idx) in buf.iter().enumerate().take(ways) {
                        assert_eq!(idx, family.index(way, line), "{kind} way {way} diverged");
                    }
                    assert_eq!(family.all_indices(line), buf[..ways].to_vec());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn index_all_into_rejects_short_buffers() {
        let family = HashFamily::new(HashKind::Skewing, 4, 256).unwrap();
        let mut buf = [0usize; 2];
        family.index_all_into(LineAddr::from_block_number(1), &mut buf);
    }

    #[test]
    fn ways_disagree_on_most_lines() {
        // Independence proxy: for most lines, different ways should map to
        // different indices.
        let family = HashFamily::new(HashKind::Skewing, 3, 1024).unwrap();
        let mut rng = SplitMix64::new(9);
        let mut collisions = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            let line = LineAddr::from_block_number(rng.next_u64() >> 6);
            let idx = family.all_indices(line);
            if idx[0] == idx[1] || idx[1] == idx[2] || idx[0] == idx[2] {
                collisions += 1;
            }
        }
        // Random chance of any pairwise collision among 3 ways with 1024
        // sets is about 3/1024 ~ 0.3%; allow a wide margin.
        assert!(
            (collisions as f64) < trials as f64 * 0.02,
            "too many cross-way collisions: {collisions}"
        );
    }
}
