//! A single concrete type covering all hash families.
//!
//! Most of the workspace wants to be parameterized over the hash family by
//! *configuration* rather than by a generic type parameter (e.g. the
//! hash-function-selection study of Section 5.5 swaps families at runtime),
//! so [`HashFamily`] wraps the three concrete families behind one enum that
//! still implements [`IndexHashFamily`].

use crate::{IndexHashFamily, MultiplyShiftFamily, SkewingFamily, StrongFamily, TagAltFamily};
use ccd_common::{ConfigError, LineAddr};
use std::fmt;

/// Which hash-function family a directory should index its ways with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum HashKind {
    /// Seznec–Bodin skewing functions — the paper's hardware choice
    /// (Section 5.5): a few levels of XOR logic.
    #[default]
    Skewing,
    /// Multiply-shift (2-universal) functions — an intermediate option.
    MultiplyShift,
    /// Strong SplitMix-style mixers — stand-in for the paper's
    /// "cryptographic" functions.
    Strong,
    /// Tag-derived alternate buckets (`base ^ g(tag)`): a strong way-0
    /// index with per-tag XOR offsets for the other ways, so displacement
    /// candidates derive from the tag array alone and all candidates of a
    /// key share one aligned block (enables the `localized` probe layout).
    TagAlt,
}

impl fmt::Display for HashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            HashKind::Skewing => "skewing",
            HashKind::MultiplyShift => "multiply-shift",
            HashKind::Strong => "strong",
            HashKind::TagAlt => "tagalt",
        };
        f.write_str(name)
    }
}

impl HashKind {
    /// The paper-study kinds, in ascending hardware-cost order.  The
    /// hash-function studies (Section 5.5 / Figure 7) sweep exactly these
    /// three; [`HashKind::TagAlt`] is an opt-in layout-coupled family and
    /// deliberately not part of the sweep.
    #[must_use]
    pub const fn all() -> [HashKind; 3] {
        [HashKind::Skewing, HashKind::MultiplyShift, HashKind::Strong]
    }
}

impl std::str::FromStr for HashKind {
    type Err = ConfigError;

    /// Parses the names used in directory-spec strings: `skew`/`skewing`,
    /// `ms`/`mshift`/`multiply-shift`, `strong`, `tagalt`.
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "skew" | "skewing" => Ok(HashKind::Skewing),
            "ms" | "mshift" | "multiply-shift" => Ok(HashKind::MultiplyShift),
            "strong" => Ok(HashKind::Strong),
            "tagalt" => Ok(HashKind::TagAlt),
            other => Err(ConfigError::Parse {
                what: format!("unknown hash kind `{other}`"),
            }),
        }
    }
}

/// A runtime-selected hash-function family.
///
/// ```
/// use ccd_hash::{HashFamily, HashKind, IndexHashFamily};
/// use ccd_common::LineAddr;
///
/// let family = HashFamily::new(HashKind::Strong, 3, 8192)?;
/// assert_eq!(family.ways(), 3);
/// assert_eq!(family.sets(), 8192);
/// let idx = family.index(2, LineAddr::from_block_number(99));
/// assert!(idx < 8192);
/// # Ok::<(), ccd_common::ConfigError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HashFamily {
    /// Seznec–Bodin skewing functions.
    Skewing(SkewingFamily),
    /// Multiply-shift functions.
    MultiplyShift(MultiplyShiftFamily),
    /// Strong mixers.
    Strong(StrongFamily),
    /// Tag-derived alternate buckets.
    TagAlt(TagAltFamily),
}

impl HashFamily {
    /// Creates a family of the requested `kind` with `ways` functions over
    /// `sets` sets.
    ///
    /// # Errors
    ///
    /// Propagates the constructor errors of the underlying family (zero or
    /// excessive way counts, non-power-of-two set counts).
    pub fn new(kind: HashKind, ways: usize, sets: usize) -> Result<Self, ConfigError> {
        Ok(match kind {
            HashKind::Skewing => HashFamily::Skewing(SkewingFamily::new(ways, sets)?),
            HashKind::MultiplyShift => {
                HashFamily::MultiplyShift(MultiplyShiftFamily::new(ways, sets)?)
            }
            HashKind::Strong => HashFamily::Strong(StrongFamily::new(ways, sets)?),
            HashKind::TagAlt => HashFamily::TagAlt(TagAltFamily::new(ways, sets)?),
        })
    }

    /// Creates a family with an explicit seed where the family supports it
    /// (skewing functions are seedless and ignore the seed).
    ///
    /// # Errors
    ///
    /// Propagates the constructor errors of the underlying family.
    pub fn with_seed(
        kind: HashKind,
        ways: usize,
        sets: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        Ok(match kind {
            HashKind::Skewing => HashFamily::Skewing(SkewingFamily::new(ways, sets)?),
            HashKind::MultiplyShift => {
                HashFamily::MultiplyShift(MultiplyShiftFamily::with_seed(ways, sets, seed)?)
            }
            HashKind::Strong => HashFamily::Strong(StrongFamily::with_seed(ways, sets, seed)?),
            HashKind::TagAlt => HashFamily::TagAlt(TagAltFamily::with_seed(ways, sets, seed)?),
        })
    }

    /// Returns which kind of family this is.
    #[must_use]
    pub fn kind(&self) -> HashKind {
        match self {
            HashFamily::Skewing(_) => HashKind::Skewing,
            HashFamily::MultiplyShift(_) => HashKind::MultiplyShift,
            HashFamily::Strong(_) => HashKind::Strong,
            HashFamily::TagAlt(_) => HashKind::TagAlt,
        }
    }

    /// The concrete tag-alt family, when this is one — probe layers use
    /// this to unlock tag-only displacement and the localized layout.
    #[must_use]
    pub fn tag_alt(&self) -> Option<&TagAltFamily> {
        match self {
            HashFamily::TagAlt(f) => Some(f),
            _ => None,
        }
    }
}

impl IndexHashFamily for HashFamily {
    fn ways(&self) -> usize {
        match self {
            HashFamily::Skewing(f) => f.ways(),
            HashFamily::MultiplyShift(f) => f.ways(),
            HashFamily::Strong(f) => f.ways(),
            HashFamily::TagAlt(f) => f.ways(),
        }
    }

    fn sets(&self) -> usize {
        match self {
            HashFamily::Skewing(f) => f.sets(),
            HashFamily::MultiplyShift(f) => f.sets(),
            HashFamily::Strong(f) => f.sets(),
            HashFamily::TagAlt(f) => f.sets(),
        }
    }

    #[inline]
    fn index(&self, way: usize, line: LineAddr) -> usize {
        match self {
            HashFamily::Skewing(f) => f.index(way, line),
            HashFamily::MultiplyShift(f) => f.index(way, line),
            HashFamily::Strong(f) => f.index(way, line),
            HashFamily::TagAlt(f) => f.index(way, line),
        }
    }

    // One enum dispatch for the whole probe instead of one per way.
    #[inline]
    fn index_all_into(&self, line: LineAddr, out: &mut [usize]) {
        match self {
            HashFamily::Skewing(f) => f.index_all_into(line, out),
            HashFamily::MultiplyShift(f) => f.index_all_into(line, out),
            HashFamily::Strong(f) => f.index_all_into(line, out),
            HashFamily::TagAlt(f) => f.index_all_into(line, out),
        }
    }

    fn logic_levels(&self) -> u32 {
        match self {
            HashFamily::Skewing(f) => f.logic_levels(),
            HashFamily::MultiplyShift(f) => f.logic_levels(),
            HashFamily::Strong(f) => f.logic_levels(),
            HashFamily::TagAlt(f) => f.logic_levels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_dispatch_matches_concrete_families() {
        let line = LineAddr::from_block_number(0x1234_5678);
        let concrete = SkewingFamily::new(4, 512).unwrap();
        let wrapped = HashFamily::new(HashKind::Skewing, 4, 512).unwrap();
        for way in 0..4 {
            assert_eq!(concrete.index(way, line), wrapped.index(way, line));
        }
        assert_eq!(wrapped.kind(), HashKind::Skewing);
        assert_eq!(wrapped.ways(), 4);
        assert_eq!(wrapped.sets(), 512);
    }

    #[test]
    fn errors_propagate_from_every_kind() {
        for kind in HashKind::all() {
            assert!(HashFamily::new(kind, 0, 64).is_err(), "{kind}");
            assert!(HashFamily::new(kind, 4, 100).is_err(), "{kind}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(HashKind::Skewing.to_string(), "skewing");
        assert_eq!(HashKind::MultiplyShift.to_string(), "multiply-shift");
        assert_eq!(HashKind::Strong.to_string(), "strong");
        assert_eq!(HashKind::TagAlt.to_string(), "tagalt");
    }

    #[test]
    fn tagalt_parses_errors_and_exposes_the_concrete_family() {
        assert_eq!("tagalt".parse::<HashKind>().unwrap(), HashKind::TagAlt);
        assert!(HashFamily::new(HashKind::TagAlt, 0, 64).is_err());
        assert!(HashFamily::new(HashKind::TagAlt, 4, 100).is_err());
        assert!(
            HashFamily::new(HashKind::TagAlt, 4, 8).is_err(),
            "sub-block set count"
        );
        let f = HashFamily::with_seed(HashKind::TagAlt, 3, 256, 7).unwrap();
        assert_eq!(f.kind(), HashKind::TagAlt);
        assert!(f.tag_alt().is_some(), "accessor must expose the family");
        assert!(f.index(1, LineAddr::from_block_number(123)) < 256);
        let skew = HashFamily::new(HashKind::Skewing, 3, 256).unwrap();
        assert!(skew.tag_alt().is_none(), "other kinds expose nothing");
    }

    #[test]
    fn seeded_construction_works_for_all_kinds() {
        for kind in HashKind::all() {
            let f = HashFamily::with_seed(kind, 3, 256, 7).unwrap();
            assert_eq!(f.ways(), 3);
            let idx = f.index(1, LineAddr::from_block_number(123));
            assert!(idx < 256);
        }
    }

    #[test]
    fn logic_level_ordering_matches_hardware_cost() {
        let skew = HashFamily::new(HashKind::Skewing, 4, 512).unwrap();
        let mult = HashFamily::new(HashKind::MultiplyShift, 4, 512).unwrap();
        let strong = HashFamily::new(HashKind::Strong, 4, 512).unwrap();
        assert!(skew.logic_levels() < mult.logic_levels());
        assert!(mult.logic_levels() < strong.logic_levels());
    }
}
